"""Declarative SLOs with multi-window burn-rate alert evaluation.

An :class:`SLO` declares an objective ("99% of requests good") plus a
*reader* that derives ``(good, total)`` cumulative counts from a
:class:`~repro.obs.registry.MetricsRegistry` — availability objectives
read failure counters (``serve.timeouts``, ``serve.degraded``),
latency objectives read a bucketed histogram's exact
:meth:`~repro.obs.registry.Histogram.count_le` at a bucket boundary.

:class:`SLOMonitor` implements the Google SRE workbook's
multi-window multi-burn-rate policy: a *burn rate* is the error rate
over a window divided by the error budget (``1 - objective``), and an
alert fires only when **both** a long and a short window exceed the
window's factor — the long window proves sustained budget burn, the
short window proves it is still happening (and clears the alert
quickly once it stops).  The defaults are the canonical pairs: fast
burn 1 h / 5 m at 14.4× (2% of a 30-day budget in an hour), slow burn
6 h / 30 m at 6×.

Everything is timed on an injected clock: :meth:`SLOMonitor.record`
snapshots the counters at ``clock.now()``, :meth:`SLOMonitor.evaluate`
computes windowed deltas between snapshots — under a
:class:`repro.serve.clock.VirtualClock` the fire/clear sequence is
bit-reproducible, which is how the tests pin both scenarios.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from .registry import Histogram, MetricsRegistry

__all__ = ["BurnWindow", "FAST_BURN", "SLOW_BURN", "SLO", "Alert",
           "SLOMonitor", "default_serve_slos", "default_resilient_slos"]


@dataclass(frozen=True)
class BurnWindow:
    """One (long, short, factor) burn-rate alerting rule."""

    name: str
    long_seconds: float
    short_seconds: float
    factor: float

    def __post_init__(self):
        if self.short_seconds <= 0 or self.long_seconds <= 0:
            raise ValueError("window lengths must be positive")
        if self.short_seconds >= self.long_seconds:
            raise ValueError(
                f"short window ({self.short_seconds}s) must be shorter "
                f"than the long window ({self.long_seconds}s)")
        if self.factor <= 0:
            raise ValueError("burn factor must be positive")


#: 2% of a 30-day error budget burned within the hour — page someone.
FAST_BURN = BurnWindow("fast_burn", long_seconds=3600.0,
                       short_seconds=300.0, factor=14.4)
#: 10% of the budget within six hours — open a ticket.
SLOW_BURN = BurnWindow("slow_burn", long_seconds=21600.0,
                       short_seconds=1800.0, factor=6.0)


def _family_metrics(registry: MetricsRegistry, name: str) -> list:
    return registry.families().get(name, [])


def _counter_sum(registry: MetricsRegistry, names) -> float:
    total = 0.0
    for name in ([names] if isinstance(names, str) else names):
        for metric in _family_metrics(registry, name):
            total += metric.value
    return total


class SLO:
    """One service-level objective: a name, a target, a reader.

    ``objective`` is the good-fraction target in (0, 1); the error
    budget is ``1 - objective``.  ``reader(registry) -> (good, total)``
    returns cumulative counts — build instances through
    :meth:`availability` or :meth:`latency` rather than writing readers
    by hand.
    """

    def __init__(self, name: str, objective: float, reader,
                 description: str = ""):
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got "
                             f"{objective}")
        self.name = name
        self.objective = objective
        self.description = description
        self._reader = reader

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.objective

    def read(self, registry: MetricsRegistry) -> tuple[float, float]:
        """Cumulative ``(good, total)`` counts right now."""
        good, total = self._reader(registry)
        return float(good), float(total)

    @classmethod
    def availability(cls, name: str, objective: float, total: str,
                     errors, description: str = "") -> "SLO":
        """Good = ``total`` minus the summed ``errors`` counters.

        ``errors`` may be one counter name or a list (e.g. timeouts
        plus degradations); labeled series are summed into the family.
        """
        error_names = [errors] if isinstance(errors, str) else list(errors)

        def reader(registry: MetricsRegistry):
            offered = _counter_sum(registry, total)
            bad = _counter_sum(registry, error_names)
            return offered - bad, offered

        return cls(name, objective, reader, description=description)

    @classmethod
    def latency(cls, name: str, objective: float, histogram: str,
                threshold: float, description: str = "") -> "SLO":
        """Good = observations at or below ``threshold`` seconds.

        ``threshold`` must be a bucket boundary of the named histogram
        (:meth:`~repro.obs.registry.Histogram.count_le` enforces it),
        so the count is exact, never interpolated.
        """

        def reader(registry: MetricsRegistry):
            good = total = 0.0
            for metric in _family_metrics(registry, histogram):
                if not isinstance(metric, Histogram):
                    raise TypeError(f"{histogram!r} is not a histogram")
                good += metric.count_le(threshold)
                total += metric.count
            return good, total

        return cls(name, objective, reader, description=description)


@dataclass
class Alert:
    """Mutable fire/clear state for one (SLO, burn window) pair."""

    slo: str
    window: str
    factor: float
    firing: bool = False
    since: float | None = None
    burn_long: float = 0.0
    burn_short: float = 0.0
    transitions: list[tuple[str, float]] = field(default_factory=list)

    def _fire(self, now: float) -> None:
        if not self.firing:
            self.firing = True
            self.since = now
            self.transitions.append(("fired", now))

    def _clear(self, now: float) -> None:
        if self.firing:
            self.firing = False
            self.since = None
            self.transitions.append(("cleared", now))


class _WallClock:
    def now(self) -> float:
        return time.time()


class SLOMonitor:
    """Snapshot counters on a clock; evaluate burn-rate alerts on demand.

    ``record()`` must be called periodically (every evaluation tick in
    tests, every scrape in production) — windowed rates are deltas
    between recorded snapshots, so resolution equals the recording
    cadence.  ``evaluate()`` updates every (SLO, window) alert and
    returns them; an alert fires when *both* windows' burn rates meet
    the factor and clears as soon as the short window recovers.
    """

    def __init__(self, slos, registry: MetricsRegistry | None = None,
                 clock=None, windows=(FAST_BURN, SLOW_BURN),
                 max_samples: int = 4096):
        from .registry import default_registry
        self.slos = list(slos)
        if not self.slos:
            raise ValueError("need at least one SLO")
        self.registry = (registry if registry is not None
                         else default_registry())
        self.clock = clock or _WallClock()
        self.windows = tuple(windows)
        self._history: deque = deque(maxlen=max_samples)
        self.alerts: dict[tuple[str, str], Alert] = {
            (slo.name, window.name): Alert(slo.name, window.name,
                                           window.factor)
            for slo in self.slos for window in self.windows}

    # -- sampling ------------------------------------------------------------

    def record(self) -> dict:
        """Snapshot every SLO's cumulative (good, total) at clock-now."""
        sample = {"ts": self.clock.now(),
                  "counts": {slo.name: slo.read(self.registry)
                             for slo in self.slos}}
        self._history.append(sample)
        return sample

    def _at_or_before(self, ts: float) -> dict:
        """The newest sample with ``ts`` at or before the given time
        (the oldest sample when history does not reach back that far)."""
        chosen = self._history[0]
        for sample in self._history:
            if sample["ts"] <= ts:
                chosen = sample
            else:
                break
        return chosen

    def _bad_fraction(self, slo_name: str, now: float,
                      window_seconds: float) -> float:
        latest = self._history[-1]
        base = self._at_or_before(now - window_seconds)
        good_now, total_now = latest["counts"][slo_name]
        good_then, total_then = base["counts"][slo_name]
        delta_total = total_now - total_then
        if delta_total <= 0:
            return 0.0
        delta_bad = (total_now - good_now) - (total_then - good_then)
        return max(delta_bad, 0.0) / delta_total

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> list[Alert]:
        """Record-free evaluation pass: update and return all alerts."""
        if not self._history:
            self.record()
        now = self.clock.now()
        for slo in self.slos:
            for window in self.windows:
                alert = self.alerts[(slo.name, window.name)]
                alert.burn_long = self._bad_fraction(
                    slo.name, now, window.long_seconds) / slo.budget
                alert.burn_short = self._bad_fraction(
                    slo.name, now, window.short_seconds) / slo.budget
                if (alert.burn_long >= window.factor
                        and alert.burn_short >= window.factor):
                    alert._fire(now)
                elif alert.burn_short < window.factor:
                    alert._clear(now)
        return list(self.alerts.values())

    def firing(self) -> list[Alert]:
        """Alerts currently in the firing state (no evaluation pass)."""
        return [a for a in self.alerts.values() if a.firing]

    def error_budget_remaining(self, slo_name: str) -> float:
        """Fraction of the budget left over all recorded history.

        1.0 = untouched, 0.0 = exhausted, negative = overdrawn; 1.0
        when nothing has been recorded or served yet.
        """
        for slo in self.slos:
            if slo.name == slo_name:
                break
        else:
            raise KeyError(f"unknown SLO {slo_name!r}")
        if not self._history:
            return 1.0
        good, total = self._history[-1]["counts"][slo_name]
        if total <= 0:
            return 1.0
        bad_fraction = (total - good) / total
        return 1.0 - bad_fraction / slo.budget


def default_serve_slos(availability_objective: float = 0.99,
                       latency_objective: float = 0.95,
                       latency_threshold: float = 0.25) -> list[SLO]:
    """The stock objectives for :class:`repro.serve.MatchService`.

    Availability counts timeouts and degraded (fallback-scored)
    requests against the budget; latency counts requests completing at
    or under ``latency_threshold`` seconds (which must stay a
    ``LATENCY_BUCKETS`` boundary) via the exact bucket counts.
    """
    return [
        SLO.availability(
            "serve-availability", availability_objective,
            total="serve.requests",
            errors=("serve.timeouts", "serve.degraded"),
            description="requests neither timed out nor degraded"),
        SLO.latency(
            "serve-latency", latency_objective,
            histogram="serve.latency_seconds",
            threshold=latency_threshold,
            description=f"requests completing within "
                        f"{latency_threshold * 1000:.0f} ms"),
    ]


def default_resilient_slos(availability_objective: float = 0.999,
                           latency_objective: float = 0.95,
                           latency_threshold: float = 0.5) -> list[SLO]:
    """The stock objectives for :class:`repro.serve.ResilientClient`.

    The tier's whole point is availability, so the objective is an
    order stricter than the per-replica serve SLO: every client-visible
    failure — error, deadline timeout, or shed request — burns budget,
    while retried/hedged attempts that eventually complete do not.
    Latency is end-to-end (submit to final completion, including
    backoff and failover), so the threshold is looser than the
    single-service one.
    """
    return [
        SLO.availability(
            "resilient-availability", availability_objective,
            total="serve.client.requests",
            errors=("serve.client.errors", "serve.client.timeouts",
                    "serve.client.shed"),
            description="client requests completing without error, "
                        "deadline timeout, or shedding"),
        SLO.latency(
            "resilient-latency", latency_objective,
            histogram="serve.client.latency_seconds",
            threshold=latency_threshold,
            description=f"client requests completing end-to-end within "
                        f"{latency_threshold * 1000:.0f} ms"),
    ]
