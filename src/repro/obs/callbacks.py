"""Training-loop callback protocol.

Replaces the ad-hoc ``log=`` print-callback the training loops grew up
with.  A :class:`Callback` receives structured dict payloads at the
training lifecycle points; :class:`CallbackList` fans out to several;
:class:`TelemetryCallback` bridges callbacks to a
:class:`~repro.obs.events.TelemetryRun` sink; :class:`LoggingCallback`
reproduces the exact human-readable lines the old ``log=`` argument
printed, which is how the backwards-compatible shim works::

    CallbackList.resolve(callbacks, log)   # legacy log -> LoggingCallback

All hooks receive a single ``info`` dict.  Common keys: ``phase``
("finetune" | "pretrain" | "deepmatcher"), then per hook: ``on_step``
gets ``step``/``loss``/``lr``/``grad_norm``/``examples_per_sec``;
``on_eval`` gets ``epoch``/``f1``/``precision``/``recall``;
``on_epoch_end`` gets ``epoch``/``train_loss``/``seconds``.
"""

from __future__ import annotations

from .events import TelemetryRun

__all__ = ["Callback", "CallbackList", "LoggingCallback",
           "TelemetryCallback"]


class Callback:
    """No-op base; override the hooks you care about."""

    def on_train_begin(self, info: dict) -> None:
        pass

    def on_step(self, info: dict) -> None:
        pass

    def on_epoch_end(self, info: dict) -> None:
        pass

    def on_eval(self, info: dict) -> None:
        pass

    def on_checkpoint(self, info: dict) -> None:
        pass

    def on_recovery(self, info: dict) -> None:
        pass

    def on_train_end(self, info: dict) -> None:
        pass


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks.

    Falsy when empty, so instrumented loops can skip building payload
    dicts entirely (``if callbacks: callbacks.on_step({...})``) — that is
    the disabled-by-default overhead guarantee.
    """

    def __init__(self, callbacks: list[Callback] | None = None):
        self.callbacks = list(callbacks or [])

    def __bool__(self) -> bool:
        return bool(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    @staticmethod
    def resolve(callbacks=None, log=None) -> "CallbackList":
        """Normalize user input plus the legacy ``log=`` argument.

        ``callbacks`` may be None, a single :class:`Callback`, or a
        sequence of them; a callable ``log`` is wrapped in a
        :class:`LoggingCallback` so pre-obs callers keep working.
        """
        if isinstance(callbacks, CallbackList):
            resolved = list(callbacks.callbacks)
        elif callbacks is None:
            resolved = []
        elif isinstance(callbacks, Callback):
            resolved = [callbacks]
        else:
            resolved = list(callbacks)
        if log is not None:
            resolved.append(LoggingCallback(log))
        return CallbackList(resolved)

    def on_train_begin(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_train_begin(info)

    def on_step(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_step(info)

    def on_epoch_end(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(info)

    def on_eval(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_eval(info)

    def on_checkpoint(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_checkpoint(info)

    def on_recovery(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_recovery(info)

    def on_train_end(self, info: dict) -> None:
        for callback in self.callbacks:
            callback.on_train_end(info)


class LoggingCallback(Callback):
    """Formats events into the same lines the old ``log=`` hook printed.

    * fine-tuning: ``epoch 0 (zero-shot) F1 41.2`` then
      ``epoch 3 loss 0.412 F1 87.1 (2.3s)`` per epoch;
    * pre-training: ``step 100/300 loss 5.123`` every ``every`` steps.
    """

    def __init__(self, log=print, every: int = 100):
        self.log = log
        self.every = every
        self._losses: list[float] = []
        self._total_steps: int | None = None

    def on_train_begin(self, info: dict) -> None:
        self._losses = []
        self._total_steps = info.get("steps")

    def on_step(self, info: dict) -> None:
        if info.get("phase") != "pretrain":
            return
        self._losses.append(info["loss"])
        step = info["step"] + 1
        if step % self.every == 0:
            total = self._total_steps or step
            mean = sum(self._losses[-self.every:]) / \
                len(self._losses[-self.every:])
            self.log(f"step {step}/{total} loss {mean:.3f}")

    def on_eval(self, info: dict) -> None:
        if info.get("phase") == "finetune" and info.get("epoch") == 0:
            self.log(f"epoch 0 (zero-shot) F1 {info['f1'] * 100:.1f}")

    def on_epoch_end(self, info: dict) -> None:
        if info.get("phase") != "finetune":
            return
        self.log(f"epoch {info['epoch']} loss {info['train_loss']:.3f} "
                 f"F1 {info['f1'] * 100:.1f} ({info['seconds']:.1f}s)")


class TelemetryCallback(Callback):
    """Forwards every hook as an event on a :class:`TelemetryRun`.

    Also maintains a few registry metrics on the run
    (``train.steps`` counter, ``train.loss`` gauge, ``train.step_seconds``
    histogram) so the closing ``metric`` events summarise the loop.
    """

    _KINDS = {"on_train_begin": "train_begin", "on_step": "step",
              "on_epoch_end": "epoch_end", "on_eval": "eval",
              "on_checkpoint": "checkpoint", "on_recovery": "recovery",
              "on_train_end": "train_end"}

    def __init__(self, run: TelemetryRun):
        self.run = run

    def on_train_begin(self, info: dict) -> None:
        self.run.emit("train_begin", **info)

    def on_step(self, info: dict) -> None:
        self.run.emit("step", **info)
        registry = self.run.registry
        registry.counter("train.steps").inc()
        registry.gauge("train.loss").set(info["loss"])
        if "seconds" in info:
            registry.histogram("train.step_seconds").observe(
                info["seconds"])

    def on_epoch_end(self, info: dict) -> None:
        self.run.emit("epoch_end", **info)

    def on_eval(self, info: dict) -> None:
        self.run.emit("eval", **info)

    def on_checkpoint(self, info: dict) -> None:
        self.run.emit("checkpoint", **info)
        self.run.registry.counter("resilience.checkpoints").inc()

    def on_recovery(self, info: dict) -> None:
        self.run.emit("recovery", **info)
        self.run.registry.counter("resilience.recoveries").inc()

    def on_train_end(self, info: dict) -> None:
        self.run.emit("train_end", **info)
