"""Render a human-readable report from a telemetry JSONL file.

Backs the ``repro telemetry <run.jsonl>`` CLI subcommand: given only the
event stream (schema in :mod:`repro.obs.events`), reconstruct the run
summary — slowest spans, op-FLOP table, per-epoch loss/F1 curves, step
throughput and registry metrics.
"""

from __future__ import annotations

from pathlib import Path

from .events import read_events_tolerant, validate_event
from .tracing import format_duration

__all__ = ["render_report", "load_report"]


def _span_section(events: list[dict]) -> list[str]:
    spans = [e["payload"] for e in events if e["kind"] == "span"]
    if not spans:
        return []
    stats: dict[str, dict[str, float]] = {}
    for span in spans:
        entry = stats.setdefault(span["name"], {
            "count": 0, "total": 0.0, "exclusive": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += span["seconds"]
        entry["exclusive"] += span.get("exclusive", span["seconds"])
        entry["max"] = max(entry["max"], span["seconds"])
    from ..utils.render import format_table
    rows = [[name, s["count"], format_duration(s["total"]),
             format_duration(s["exclusive"]), format_duration(s["max"])]
            for name, s in sorted(stats.items(),
                                  key=lambda kv: -kv[1]["total"])]
    return [format_table(["span", "count", "total", "exclusive", "max"],
                         rows, title="slowest spans"), ""]


def _ops_section(events: list[dict]) -> list[str]:
    merged: dict[str, dict[str, float]] = {}
    for event in events:
        if event["kind"] != "profile":
            continue
        for kind, stats in event["payload"]["ops"].items():
            entry = merged.setdefault(kind, {"calls": 0, "flops": 0.0,
                                             "bytes": 0.0})
            entry["calls"] += stats["calls"]
            entry["flops"] += stats["flops"]
            entry["bytes"] += stats["bytes"]
    if not merged:
        return []
    from ..utils.render import format_table
    rows = [[kind, int(s["calls"]), f"{s['flops'] / 1e6:.2f}",
             f"{s['bytes'] / 1e6:.2f}"]
            for kind, s in sorted(merged.items(),
                                  key=lambda kv: -kv[1]["flops"])]
    return [format_table(["op", "calls", "MFLOPs", "MB"], rows,
                         title="op profile (estimated)"), ""]


def _curves_section(events: list[dict]) -> list[str]:
    from ..utils.render import format_series
    lines = []
    evals = [e["payload"] for e in events if e["kind"] == "eval"]
    epochs = [e["payload"] for e in events if e["kind"] == "epoch_end"]
    if evals:
        evals.sort(key=lambda p: p["epoch"])
        lines.append(format_series(
            "F1 by epoch   ", [p["f1"] * 100.0 for p in evals]))
    if epochs:
        epochs.sort(key=lambda p: p["epoch"])
        losses = [p.get("train_loss") for p in epochs]
        if all(isinstance(l, (int, float)) for l in losses):
            lines.append(format_series("loss by epoch ", losses,
                                       precision=3))
        lines.append(format_series(
            "epoch seconds ", [p["seconds"] for p in epochs],
            precision=2))
    if lines:
        lines.append("")
    return lines


def _steps_section(events: list[dict]) -> list[str]:
    steps = [e["payload"] for e in events if e["kind"] == "step"]
    if not steps:
        return []
    lines = [f"optimizer steps: {len(steps)}"]
    rates = [p["examples_per_sec"] for p in steps
             if isinstance(p.get("examples_per_sec"), (int, float))]
    if rates:
        lines.append(f"throughput: {sum(rates) / len(rates):.1f} "
                     f"examples/s (mean over steps)")
    norms = [p["grad_norm"] for p in steps
             if isinstance(p.get("grad_norm"), (int, float))]
    if norms:
        lines.append(f"grad norm: max {max(norms):.3f}, "
                     f"final {norms[-1]:.3f}")
    lines.append("")
    return lines


def _resilience_section(events: list[dict]) -> list[str]:
    recoveries = [e["payload"] for e in events if e["kind"] == "recovery"]
    checkpoints = [e["payload"] for e in events
                   if e["kind"] == "checkpoint"]
    if not recoveries and not checkpoints:
        return []
    lines = []
    if checkpoints:
        steps = [p["step"] for p in checkpoints]
        lines.append(f"checkpoints: {len(checkpoints)} "
                     f"(last at step {max(steps)})")
    if recoveries:
        lines.append(f"recoveries: {len(recoveries)}")
        for payload in recoveries:
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(payload.items())
                if k not in ("reason", "action"))
            line = f"  {payload['reason']} -> {payload['action']}"
            if detail:
                line += f" ({detail})"
            lines.append(line)
    lines.append("")
    return lines


def _metrics_section(events: list[dict]) -> list[str]:
    metrics = [e["payload"] for e in events if e["kind"] == "metric"]
    if not metrics:
        return []
    lines = ["metrics:"]
    for payload in metrics:
        name, kind = payload["name"], payload["metric_kind"]
        if kind == "histogram" and payload.get("count"):
            lines.append(
                f"  {name}: n={payload['count']} p50={payload['p50']:.4g} "
                f"p95={payload['p95']:.4g} max={payload['max']:.4g}")
        else:
            lines.append(f"  {name}: {payload.get('value', 0)}")
    lines.append("")
    return lines


def render_report(events: list[dict], validate: bool = True) -> str:
    """Build the full text report from parsed telemetry events."""
    if validate:
        for event in events:
            validate_event(event)
    if not events:
        return "telemetry: no events"
    lines = []
    run_id = events[0].get("run_id", "?")
    begin = next((e["payload"] for e in events
                  if e["kind"] == "run_begin"), {})
    end = next((e["payload"] for e in events if e["kind"] == "run_end"),
               None)
    header = f"telemetry report — run {run_id} ({len(events)} events"
    if end is not None:
        header += f", {format_duration(end['seconds'])}"
    header += ")"
    lines.append(header)
    if begin:
        context = " ".join(f"{k}={v}" for k, v in sorted(begin.items()))
        lines.append(f"  {context}")
    trains = [e["payload"] for e in events if e["kind"] == "train_begin"]
    for info in trains:
        context = " ".join(f"{k}={v}" for k, v in sorted(info.items()))
        lines.append(f"  train: {context}")
    lines.append("")
    lines.extend(_span_section(events))
    lines.extend(_ops_section(events))
    lines.extend(_curves_section(events))
    lines.extend(_steps_section(events))
    lines.extend(_resilience_section(events))
    lines.extend(_metrics_section(events))
    return "\n".join(lines).rstrip() + "\n"


def load_report(path: str | Path) -> str:
    """Read a JSONL telemetry file and render its report.

    Corrupt or truncated lines (a crashed writer's torn final event)
    are skipped and surfaced as a warning header rather than refusing
    the readable prefix of the run.
    """
    events, skipped = read_events_tolerant(path)
    report = render_report(events)
    if skipped:
        report = (f"warning: skipped {skipped} corrupt/truncated "
                  f"line(s) in {path}\n\n{report}")
    return report
