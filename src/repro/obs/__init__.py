"""Observability layer: metrics, tracing, telemetry events, profiling.

The cross-cutting instrumentation substrate (see DESIGN.md §8):

* :mod:`repro.obs.registry` — counters / gauges / streaming histograms;
* :mod:`repro.obs.tracing` — nested wall-clock spans (absorbs the old
  ``repro.utils.timer``; ``Timer``/``format_duration`` remain here as
  backwards-compatible aliases);
* :mod:`repro.obs.events` — JSONL event sinks with a stable schema,
  bundled per run by :class:`TelemetryRun`;
* :mod:`repro.obs.callbacks` — the training-loop ``Callback`` protocol
  that replaced the ad-hoc ``log=`` argument;
* :mod:`repro.obs.profiler` — op-level FLOP/byte profiler for
  ``repro.nn``;
* :mod:`repro.obs.report` — the ``repro telemetry`` report renderer.

Disabled-by-default guarantee: with no callbacks registered and no sink
attached, instrumented code paths cost one falsy check per step.
"""

from .tracing import (Span, Timer, Tracer, aggregate_spans, default_tracer,
                      format_duration, trace)
from .registry import (Counter, Gauge, Histogram, MetricsRegistry,
                       default_registry)
from .events import (EVENT_KINDS, SCHEMA_VERSION, EventSink, JsonlSink,
                     MemorySink, NullSink, TelemetryRun, read_events,
                     validate_event)
from .callbacks import (Callback, CallbackList, LoggingCallback,
                        TelemetryCallback)
from .profiler import OpProfile, OpStats, profile
from .report import load_report, render_report

__all__ = [
    "Span", "Tracer", "trace", "default_tracer", "aggregate_spans",
    "Timer", "format_duration",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "default_registry",
    "SCHEMA_VERSION", "EVENT_KINDS", "EventSink", "NullSink", "MemorySink",
    "JsonlSink", "TelemetryRun", "read_events", "validate_event",
    "Callback", "CallbackList", "LoggingCallback", "TelemetryCallback",
    "OpProfile", "OpStats", "profile",
    "render_report", "load_report",
]
