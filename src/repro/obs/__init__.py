"""Observability layer: metrics, tracing, telemetry events, profiling.

The cross-cutting instrumentation substrate (see DESIGN.md §8):

* :mod:`repro.obs.registry` — counters / gauges / streaming histograms;
* :mod:`repro.obs.tracing` — nested wall-clock spans (absorbs the old
  ``repro.utils.timer``; ``Timer``/``format_duration`` remain here as
  backwards-compatible aliases);
* :mod:`repro.obs.events` — JSONL event sinks with a stable schema,
  bundled per run by :class:`TelemetryRun`;
* :mod:`repro.obs.callbacks` — the training-loop ``Callback`` protocol
  that replaced the ad-hoc ``log=`` argument;
* :mod:`repro.obs.profiler` — op-level FLOP/byte profiler for
  ``repro.nn``;
* :mod:`repro.obs.report` — the ``repro telemetry`` report renderer;
* :mod:`repro.obs.context` — cross-thread request tracing
  (:class:`TraceContext` / :class:`RequestTracer`) for the serving
  stack (DESIGN.md §13);
* :mod:`repro.obs.expo` — Prometheus text rendering, the
  ``/metrics`` + ``/healthz`` scrape endpoint, and the JSONL span
  exporter;
* :mod:`repro.obs.slo` — declarative SLOs with multi-window burn-rate
  alerting;
* :mod:`repro.obs.top` — the ``repro obs top`` terminal dashboard.

Disabled-by-default guarantee: with no callbacks registered and no sink
attached, instrumented code paths cost one falsy check per step.
"""

from .tracing import (Span, Timer, Tracer, aggregate_spans, default_tracer,
                      format_duration, trace)
from .registry import (LATENCY_BUCKETS, CardinalityError, Counter, Gauge,
                       Histogram, MetricsRegistry, default_registry)
from .events import (EVENT_KINDS, SCHEMA_VERSION, EventSink, JsonlSink,
                     MemorySink, NullSink, TelemetryRun, read_events,
                     read_events_tolerant, validate_event)
from .callbacks import (Callback, CallbackList, LoggingCallback,
                        TelemetryCallback)
from .profiler import OpProfile, OpStats, profile
from .report import load_report, render_report
from .context import (BatchStages, RequestTracer, StageSpan, TraceContext,
                      TraceSampler)
from .expo import (MetricsHTTPServer, SpanExporter, parse_prometheus,
                   render_prometheus)
from .slo import (FAST_BURN, SLOW_BURN, SLO, Alert, BurnWindow, SLOMonitor,
                  default_resilient_slos, default_serve_slos)

__all__ = [
    "Span", "Tracer", "trace", "default_tracer", "aggregate_spans",
    "Timer", "format_duration",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "default_registry",
    "CardinalityError", "LATENCY_BUCKETS",
    "SCHEMA_VERSION", "EVENT_KINDS", "EventSink", "NullSink", "MemorySink",
    "JsonlSink", "TelemetryRun", "read_events", "read_events_tolerant",
    "validate_event",
    "Callback", "CallbackList", "LoggingCallback", "TelemetryCallback",
    "OpProfile", "OpStats", "profile",
    "render_report", "load_report",
    "TraceContext", "StageSpan", "TraceSampler", "RequestTracer",
    "BatchStages",
    "render_prometheus", "parse_prometheus", "MetricsHTTPServer",
    "SpanExporter",
    "BurnWindow", "FAST_BURN", "SLOW_BURN", "SLO", "Alert", "SLOMonitor",
    "default_serve_slos", "default_resilient_slos",
]
