"""Request-scoped trace contexts: causal span trees across threads.

:mod:`repro.obs.tracing` gives lexically scoped spans on one thread's
stack; a served request is the opposite shape — it is *born* on a
producer thread, waits in a queue, and is *finished* on whichever
worker drained it.  This module is the cross-thread half of tracing:

* :class:`TraceContext` — the (trace_id, span_id, baggage) triple that
  travels **explicitly** with the request (no thread-locals, no
  contextvars: the queue entry carries it, so there is nothing to leak
  between requests sharing a worker);
* :class:`StageSpan` — one clock-timed stage with explicit start/end
  stamps.  All times come from the owning tracer's clock, so under a
  :class:`repro.serve.clock.VirtualClock` every span tree is exactly
  reproducible;
* :class:`RequestTracer` — allocates ids, times spans on its bound
  clock, and keeps a bounded ring of completed request traces;
* :class:`TraceSampler` — deterministic 1-in-N head sampling keyed on
  the request sequence number (same workload, same sampled set);
* :class:`BatchStages` — the per-drain stage recorder the service hands
  to its backend so tokenize/forward timings surface inside every
  member request's span tree.

The lifecycle API (``begin_request`` / ``finish``) is intentionally not
a context manager — a request span cannot be lexically scoped because
it crosses threads.  Stage spans that *are* lexically scoped must go
through ``with tracer.span(...)`` / ``with stages.stage(...)`` (lint
rule RA112 enforces this in ``repro.serve`` / ``repro.matching``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = ["TraceContext", "StageSpan", "TraceSampler", "RequestTracer",
           "BatchStages"]


class TraceContext:
    """Propagation triple: one trace, one span, request-scoped baggage.

    ``trace_id`` names the whole request journey; ``span_id`` names the
    current position in it; ``baggage`` is a small dict of key/values
    (request id, tenant, experiment arm) that downstream stages may
    read but should treat as opaque.
    """

    __slots__ = ("trace_id", "span_id", "baggage")

    def __init__(self, trace_id: str, span_id: str,
                 baggage: dict | None = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.baggage = baggage if baggage is not None else {}

    def child(self, span_id: str) -> "TraceContext":
        """The context seen by a child span: same trace, same baggage."""
        return TraceContext(self.trace_id, span_id, self.baggage)

    def __repr__(self) -> str:
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r})")


class StageSpan:
    """One clock-timed stage of a request; forms a tree via ``children``.

    Unlike :class:`repro.obs.tracing.Span`, start/end are explicit clock
    stamps supplied by the tracer (or copied from a batch stage), so a
    span can open on one thread and close on another, and virtual-clock
    runs produce bit-identical trees.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "end", "attrs", "children")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, start: float,
                 attrs: dict | None = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attrs = attrs or {}
        self.children: list["StageSpan"] = []

    @property
    def duration(self) -> float:
        """Clock seconds from start to end (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        """This span's position as a propagation context."""
        return TraceContext(self.trace_id, self.span_id)

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` depth-first, parents before children."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "StageSpan | None":
        """First span named ``name`` in this subtree (or None)."""
        for span, _ in self.walk():
            if span.name == name:
                return span
        return None

    def stage_names(self) -> list[str]:
        """Names of the direct children, in recorded order."""
        return [child.name for child in self.children]

    def as_dict(self) -> dict:
        """Flat JSON-friendly view of this span (no children)."""
        payload = {"name": self.name, "trace_id": self.trace_id,
                   "span_id": self.span_id, "start": self.start,
                   "end": self.end, "seconds": self.duration}
        if self.parent_id is not None:
            payload["parent_span_id"] = self.parent_id
        payload.update(self.attrs)
        return payload

    def __repr__(self) -> str:
        return (f"StageSpan({self.name!r}, trace={self.trace_id}, "
                f"duration={self.duration:.6f}s, "
                f"children={len(self.children)})")


class TraceSampler:
    """Deterministic head sampling: keep one request in every ``1/rate``.

    Keyed on the request's monotonically increasing sequence number, so
    the same workload samples the same requests on every run — the
    property the replay-determinism tests (and exemplar stability)
    depend on.  ``rate >= 1`` keeps everything, ``rate <= 0`` nothing.
    """

    __slots__ = ("rate", "_stride")

    def __init__(self, rate: float = 1.0):
        if rate > 1.0 or rate != rate:  # NaN guard
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self._stride = 0 if rate <= 0.0 else max(int(round(1.0 / rate)), 1)

    def sampled(self, sequence: int) -> bool:
        """Whether the request with this sequence number is traced."""
        if self._stride == 0:
            return False
        return sequence % self._stride == 0


class _PerfCounterClock:
    """Fallback clock when a tracer is used outside the serving stack."""

    def now(self) -> float:
        return time.perf_counter()


class RequestTracer:
    """Cross-thread span recorder timed on an explicit clock.

    ``clock`` is anything with ``now() -> float`` (a
    :class:`repro.serve.clock.Clock`); when None the tracer falls back
    to ``time.perf_counter`` until :meth:`bind_clock` is called —
    :class:`repro.serve.MatchService` binds its own clock on
    construction so traces and ticket latencies share a timebase.

    Completed request traces accumulate in ``completed`` (a bounded
    ring, ``max_traces`` deep); :meth:`slowest` ranks them for the
    dashboard, and :class:`repro.obs.expo.SpanExporter` drains them to
    JSONL.
    """

    def __init__(self, clock=None, max_traces: int = 512,
                 sample_rate: float = 1.0):
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self._clock = clock or _PerfCounterClock()
        self.sampler = TraceSampler(sample_rate)
        self.completed: deque[StageSpan] = deque(maxlen=max_traces)
        self._traces = itertools.count()
        self._spans = itertools.count()
        self._lock = threading.Lock()

    def bind_clock(self, clock) -> None:
        """Adopt the serving clock (no-op if one was given at init)."""
        if isinstance(self._clock, _PerfCounterClock):
            self._clock = clock

    def now(self) -> float:
        return self._clock.now()

    def sampled(self, sequence: int) -> bool:
        """Deterministic head-sampling decision for a request number."""
        return self.sampler.sampled(sequence)

    def _next_trace_id(self) -> str:
        with self._lock:
            return f"trace-{next(self._traces):08x}"

    def _next_span_id(self) -> str:
        with self._lock:
            return f"span-{next(self._spans):08x}"

    # -- lifecycle (cross-thread; not context managers by design) ------------

    def begin_request(self, name: str = "serve.request",
                      start: float | None = None, **attrs) -> StageSpan:
        """Open a new root span under a fresh trace id."""
        return StageSpan(name, self._next_trace_id(),
                         self._next_span_id(), parent_id=None,
                         start=self.now() if start is None else start,
                         attrs=attrs)

    def child(self, parent: StageSpan, name: str,
              start: float | None = None, **attrs) -> StageSpan:
        """Open a child span of ``parent`` (closed later via :meth:`end`)."""
        span = StageSpan(name, parent.trace_id, self._next_span_id(),
                         parent_id=parent.span_id,
                         start=self.now() if start is None else start,
                         attrs=attrs)
        parent.children.append(span)
        return span

    def end(self, span: StageSpan, end: float | None = None,
            **attrs) -> StageSpan:
        """Close a span at ``end`` (defaults to the clock's now)."""
        span.end = self.now() if end is None else end
        if attrs:
            span.attrs.update(attrs)
        return span

    def attach(self, parent: StageSpan, name: str, start: float,
               end: float, **attrs) -> StageSpan:
        """Add an already-timed stage (e.g. a shared batch stage) as a
        closed child of ``parent``, with its own span id."""
        span = self.child(parent, name, start=start, **attrs)
        span.end = end
        return span

    def finish(self, root: StageSpan, end: float | None = None,
               **attrs) -> StageSpan:
        """Close a root span and record it in ``completed``."""
        self.end(root, end=end, **attrs)
        with self._lock:
            self.completed.append(root)
        return root

    # -- lexically scoped spans (must be used with ``with`` — RA112) ---------

    @contextmanager
    def span(self, name: str, parent: StageSpan | None = None, **attrs):
        """A clock-timed span scoped to a block; roots land in
        ``completed`` when no ``parent`` is given."""
        node = (self.child(parent, name, **attrs) if parent is not None
                else self.begin_request(name, **attrs))
        try:
            yield node
        finally:
            if parent is not None:
                self.end(node)
            else:
                self.finish(node)

    # -- inspection ----------------------------------------------------------

    def snapshot(self) -> list[StageSpan]:
        """The completed ring as a list (oldest first)."""
        with self._lock:
            return list(self.completed)

    def slowest(self, n: int = 5) -> list[StageSpan]:
        """The ``n`` longest completed request traces, slowest first."""
        with self._lock:
            ranked = sorted(self.completed, key=lambda s: -s.duration)
        return ranked[:n]

    def reset(self) -> None:
        with self._lock:
            self.completed.clear()


class BatchStages:
    """Stage recorder for one drained batch of requests.

    The service creates one per traced batch and passes it down through
    the backend into the engine; each ``with stages.stage(name):`` block
    stamps a (name, start, end, attrs) record on the shared clock.
    After scoring, the service copies the records into every member
    request's span tree (each copy gets its own span id) — the batch
    work happened once, but causally it belongs to every request in the
    batch.
    """

    class Record:
        """One timed batch stage; ``attrs`` may be enriched post-close."""

        __slots__ = ("name", "start", "end", "attrs")

        def __init__(self, name: str, start: float, attrs: dict):
            self.name = name
            self.start = start
            self.end: float | None = None
            self.attrs = attrs

    def __init__(self, now):
        self._now = now
        self.records: list["BatchStages.Record"] = []

    @contextmanager
    def stage(self, name: str, **attrs):
        """Record one batch stage over the enclosed block."""
        record = BatchStages.Record(name, self._now(), attrs)
        self.records.append(record)
        try:
            yield record
        finally:
            record.end = self._now()
