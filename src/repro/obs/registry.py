"""Metrics registry: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` is a named bag of metrics; ``counter()`` /
``gauge()`` / ``histogram()`` get-or-create, so instrumentation sites
never need to coordinate setup.  A process-wide default registry backs
code that doesn't carry one around explicitly.

Histograms are *streaming*: they keep exact count/sum/min/max and a
bounded sample buffer that is deterministically decimated (keep every
second sample, double the stride) once full, so quantiles stay accurate
to the buffer resolution with O(max_samples) memory no matter how many
observations arrive.

Every metric (and the registry's get-or-create path) is thread-safe:
``repro.serve`` updates counters and gauges from producer threads and
batcher workers concurrently, and an unlocked ``value += amount`` is a
read-modify-write race that silently drops increments.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "default_registry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution with bounded memory.

    ``observe()`` is O(1) amortised; ``quantile()`` sorts the retained
    sample buffer (linear interpolation between order statistics).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "_seen", "_max_samples", "_lock")

    def __init__(self, name: str, max_samples: int = 2048):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._seen = 0
        self._max_samples = max_samples
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if self._seen % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self._seen += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (exact until the buffer decimates)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    def snapshot(self) -> dict:
        if not self.count:
            return {"kind": "histogram", "count": 0}
        return {"kind": "histogram", "count": self.count,
                "mean": self.mean, "min": self.min, "max": self.max,
                "p50": self.p50, "p95": self.p95}


class MetricsRegistry:
    """Named metrics with get-or-create accessors."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        return self._get(name, Histogram, max_samples=max_samples)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """``{name: metric snapshot}`` for every registered metric."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _DEFAULT_REGISTRY
