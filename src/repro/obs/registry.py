"""Metrics registry: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` is a named bag of metrics; ``counter()`` /
``gauge()`` / ``histogram()`` get-or-create, so instrumentation sites
never need to coordinate setup.  A process-wide default registry backs
code that doesn't carry one around explicitly.

Metrics may carry **labels** (``registry.counter("rpc", labels={"arch":
"bert"})``): each distinct label combination is its own series under
the family name.  Label cardinality is bounded — creating more than
``max_series_per_metric`` combinations on one family raises
:class:`CardinalityError` instead of silently growing the registry
(the classic unbounded-user-id-label accident).

Histograms are *streaming*: they keep exact count/sum/min/max and a
bounded sample buffer that is deterministically decimated (keep every
second sample, double the stride) once full, so quantiles stay accurate
to the buffer resolution with O(max_samples) memory no matter how many
observations arrive.  With ``buckets`` they additionally keep exact
cumulative bucket counts (Prometheus ``le`` semantics), which is what
the exposition endpoint renders and the latency SLOs count against;
``observe(value, exemplar=...)`` keeps a small ring of recent exemplars
linking samples back to trace ids.

Every metric (and the registry's get-or-create path) is thread-safe:
``repro.serve`` updates counters and gauges from producer threads and
batcher workers concurrently, and an unlocked ``value += amount`` is a
read-modify-write race that silently drops increments.
"""

from __future__ import annotations

import bisect
from collections import deque

from ..utils.concurrency import access, make_lock

__all__ = ["CardinalityError", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "default_registry", "series_name",
           "LATENCY_BUCKETS"]

#: Default latency bucket bounds (seconds) used by the serving metrics:
#: wide enough for 1 ms kernels through 10 s stalls, and the boundaries
#: the latency SLOs may threshold against.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0)


class CardinalityError(ValueError):
    """A metric family exceeded its label-combination budget."""


def _label_key(labels: dict | None) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: dict | None) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted)."""
    key = _label_key(labels)
    if not key:
        return name
    rendered = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{rendered}}}"


def _interpolate(ordered: list[float], q: float) -> float:
    """q-quantile of a pre-sorted sample buffer (linear between order
    statistics); 0.0 for an empty buffer."""
    if not ordered:
        return 0.0
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = make_lock("Counter._lock")
        self.value = 0.0  # guard: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            access(self, "value")
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            access(self, "value", write=False)
            return {"kind": "counter", "value": self.value}


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = make_lock("Gauge._lock")
        self.value = 0.0  # guard: _lock

    def set(self, value: float) -> None:
        with self._lock:
            access(self, "value")
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            access(self, "value")
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            access(self, "value", write=False)
            return {"kind": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution with bounded memory.

    ``observe()`` is O(1) amortised; ``quantile()`` sorts the retained
    sample buffer (linear interpolation between order statistics).
    With ``buckets`` (a strictly increasing sequence of upper bounds)
    exact cumulative counts are kept per bucket, Prometheus-style; an
    implicit ``+Inf`` bucket always exists.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_samples", "_stride", "_seen", "_max_samples",
                 "_bounds", "_bucket_counts", "_exemplars", "_lock")

    def __init__(self, name: str, max_samples: int = 2048,
                 buckets=None, labels: dict | None = None):
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._lock = make_lock("Histogram._lock")
        self.count = 0                    # guard: _lock
        self.total = 0.0                  # guard: _lock
        self.min = float("inf")           # guard: _lock
        self.max = float("-inf")          # guard: _lock
        self._samples: list[float] = []   # guard: _lock
        self._stride = 1                  # guard: _lock
        self._seen = 0                    # guard: _lock
        self._max_samples = max_samples
        if buckets is not None:
            bounds = [float(b) for b in buckets]
            if not bounds or any(low >= high for low, high
                                 in zip(bounds, bounds[1:])):
                raise ValueError(f"buckets must be strictly increasing, "
                                 f"got {buckets}")
            self._bounds = tuple(bounds)
        else:
            self._bounds = None
        self._bucket_counts = ([0] * (len(self._bounds) + 1)
                               if self._bounds is not None else None)
        self._exemplars: deque = deque(maxlen=5)  # guard: _lock

    def observe(self, value: float, exemplar: str | None = None) -> None:
        value = float(value)
        with self._lock:
            access(self, "count")
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            if self._bucket_counts is not None:
                self._bucket_counts[
                    bisect.bisect_left(self._bounds, value)] += 1
            if exemplar is not None:
                self._exemplars.append((value, exemplar))
            if self._seen % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) >= self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2
            self._seen += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (exact until the buffer decimates)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        return _interpolate(ordered, q)

    def sum_count(self) -> tuple[float, int]:
        """Consistent ``(total, count)`` pair read under the lock —
        the exposition path needs both from the same instant."""
        with self._lock:
            return self.total, self.count

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def bounds(self) -> tuple | None:
        """The configured bucket upper bounds (None when bucketless)."""
        return self._bounds

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs ending at +Inf.

        Empty when the histogram was created without ``buckets``.
        """
        if self._bucket_counts is None:
            return []
        with self._lock:
            counts = list(self._bucket_counts)
        out, running = [], 0
        for bound, count in zip(self._bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def count_le(self, bound: float) -> int:
        """Exact observations at or below ``bound``.

        ``bound`` must be one of the configured bucket boundaries —
        anything else would silently return the wrong count, so it
        raises instead (latency SLO thresholds must be boundaries).
        """
        if self._bounds is None:
            raise ValueError(f"histogram {self.name!r} has no buckets; "
                             f"create it with buckets=... to count "
                             f"against a threshold")
        bound = float(bound)
        for upper, cumulative in self.bucket_counts():
            if upper == bound:
                return cumulative
        raise ValueError(f"{bound} is not a bucket boundary of "
                         f"{self.name!r} (bounds: {self._bounds})")

    def exemplars(self) -> list[tuple[float, str]]:
        """Recent ``(value, trace_id)`` exemplars, oldest first."""
        with self._lock:
            return list(self._exemplars)

    def snapshot(self) -> dict:
        # One locked copy of the whole state: mixing locked and
        # unlocked reads (the old `self.p50` calls re-took the lock
        # per quantile) lets concurrent observes tear the summary.
        with self._lock:
            access(self, "count", write=False)
            if not self.count:
                return {"kind": "histogram", "count": 0}
            count, total = self.count, self.total
            low, high = self.min, self.max
            ordered = sorted(self._samples)
        return {"kind": "histogram", "count": count,
                "mean": total / count, "min": low, "max": high,
                "p50": _interpolate(ordered, 0.50),
                "p95": _interpolate(ordered, 0.95),
                "p99": _interpolate(ordered, 0.99)}


class MetricsRegistry:
    """Named metric families with get-or-create accessors.

    ``max_series_per_metric`` bounds label-combination growth per family
    (:class:`CardinalityError` beyond it); the unlabeled series does not
    count against the budget differently — it is simply the ``()``
    combination.
    """

    def __init__(self, max_series_per_metric: int = 128):
        if max_series_per_metric < 1:
            raise ValueError("max_series_per_metric must be >= 1")
        self.max_series_per_metric = max_series_per_metric
        self._lock = make_lock("MetricsRegistry._lock")
        self._families: dict[str, dict[tuple, object]] = {}  # guard: _lock
        self._kinds: dict[str, type] = {}                    # guard: _lock

    def _get(self, name: str, cls, labels: dict | None = None, **kwargs):
        key = _label_key(labels)
        with self._lock:
            access(self, "_families")
            kind = self._kinds.get(name)
            if kind is not None and kind is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{kind.__name__}, not {cls.__name__}")
            family = self._families.setdefault(name, {})
            metric = family.get(key)
            if metric is None:
                if len(family) >= self.max_series_per_metric:
                    raise CardinalityError(
                        f"metric {name!r} already has {len(family)} label "
                        f"combinations (limit "
                        f"{self.max_series_per_metric}); refusing to "
                        f"create {dict(labels or {})!r} — check for an "
                        f"unbounded label value, or raise "
                        f"max_series_per_metric if the cardinality is "
                        f"intentional")
                metric = cls(name, labels=labels, **kwargs)
                family[key] = metric
                self._kinds[name] = cls
            return metric

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(name, Counter, labels=labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(name, Gauge, labels=labels)

    def histogram(self, name: str, max_samples: int = 2048,
                  buckets=None, labels: dict | None = None) -> Histogram:
        return self._get(name, Histogram, labels=labels,
                         max_samples=max_samples, buckets=buckets)

    def families(self) -> dict[str, list]:
        """``{family name: [series metric, ...]}`` sorted both ways."""
        with self._lock:
            access(self, "_families", write=False)
            return {name: [family[key] for key in sorted(family)]
                    for name, family in sorted(self._families.items())}

    def names(self) -> list[str]:
        """Sorted series names (labels rendered into the key)."""
        with self._lock:
            return sorted(
                series_name(name, metric.labels)
                for name, family in self._families.items()
                for metric in family.values())

    def snapshot(self) -> dict[str, dict]:
        """``{series name: metric snapshot}`` for every registered
        series; labeled series carry their labels in the payload."""
        out = {}
        for name, metrics in self.families().items():
            for metric in metrics:
                snap = metric.snapshot()
                if metric.labels:
                    snap["labels"] = dict(metric.labels)
                out[series_name(name, metric.labels)] = snap
        return out

    def reset(self) -> None:
        with self._lock:
            access(self, "_families")
            self._families.clear()
            self._kinds.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _DEFAULT_REGISTRY
