"""Metric and span exposition: Prometheus text, HTTP scrape, JSONL spans.

Three exits from the in-process observability state:

* :func:`render_prometheus` — serialize a
  :class:`~repro.obs.registry.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4): ``# TYPE`` headers, label sets,
  cumulative ``_bucket{le=...}`` series with ``_sum``/``_count`` for
  bucketed histograms, summary-style ``{quantile=...}`` series for
  bucketless ones, and OpenMetrics-style ``# {trace_id=...}`` exemplars
  linking bucket lines back to traces.  :func:`parse_prometheus` is the
  inverse (for the dashboard's remote mode and round-trip tests).
* :class:`MetricsHTTPServer` — a stdlib ``http.server`` scrape endpoint
  serving ``/metrics`` (the rendered registry) and ``/healthz`` (a JSON
  health document from a caller-supplied probe).
* :class:`SpanExporter` — drains a
  :class:`~repro.obs.context.RequestTracer`'s completed request traces
  into OTLP-flavored ``span`` events (trace_id / span_id /
  parent_span_id / start / end) on any :class:`~repro.obs.events
  .EventSink`, validated against the telemetry schema so ``repro
  telemetry`` renders the file unchanged.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .context import RequestTracer, StageSpan
from .events import EventSink, JsonlSink, validate_event
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "parse_prometheus", "sanitize_name",
           "MetricsHTTPServer", "SpanExporter"]

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset.

    Dots (and anything else outside ``[a-zA-Z0-9_:]``) become
    underscores; a leading digit gains an underscore prefix.
    """
    out = "".join(ch if ch in _VALID_REST else "_" for ch in name)
    if not out or out[0] not in _VALID_FIRST:
        out = "_" + out
    return out


def _escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    rendered = ",".join(f'{sanitize_name(str(k))}="{_escape(v)}"'
                        for k, v in sorted(pairs.items()))
    return "{" + rendered + "}"


def _format(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:
        return "NaN"
    return repr(float(value))


def _bucket_exemplar(exemplars, low: float, high: float) -> str:
    """OpenMetrics exemplar suffix for the newest sample in (low, high]."""
    for value, trace_id in reversed(exemplars):
        if low < value <= high:
            return (f' # {{trace_id="{_escape(trace_id)}"}} '
                    f'{_format(value)}')
    return ""


def _histogram_lines(name: str, metric: Histogram) -> list[str]:
    lines = []
    base = dict(metric.labels)
    if metric.bounds is not None:
        exemplars = metric.exemplars()
        low = float("-inf")
        for bound, cumulative in metric.bucket_counts():
            labels = dict(base)
            labels["le"] = _format(bound)
            lines.append(f"{name}_bucket{_labels(labels)} {cumulative}"
                         f"{_bucket_exemplar(exemplars, low, bound)}")
            low = bound
    else:
        for q in (0.5, 0.95, 0.99):
            labels = dict(base)
            labels["quantile"] = _format(q)
            lines.append(f"{name}{_labels(labels)} "
                         f"{_format(metric.quantile(q))}")
    total, count = metric.sum_count()
    lines.append(f"{name}_sum{_labels(base)} {_format(total)}")
    lines.append(f"{name}_count{_labels(base)} {count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for family_name, series in registry.families().items():
        name = sanitize_name(family_name)
        kind = type(series[0])
        if kind is Counter:
            prom_type = "counter"
        elif kind is Gauge:
            prom_type = "gauge"
        elif series[0].bounds is not None:
            prom_type = "histogram"
        else:
            prom_type = "summary"
        lines.append(f"# HELP {name} repro metric {family_name}")
        lines.append(f"# TYPE {name} {prom_type}")
        for metric in series:
            if isinstance(metric, Histogram):
                lines.extend(_histogram_lines(name, metric))
            else:
                # snapshot() reads under the metric's lock; a bare
                # .value read races concurrent inc()/set() writers.
                lines.append(f"{name}{_labels(metric.labels)} "
                             f"{_format(metric.snapshot()['value'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Inverse of :func:`render_prometheus`: ``{series: value}``.

    Series keys keep their label block verbatim (``name{k="v"}``);
    comment lines and exemplar suffixes are dropped.  Raises
    ``ValueError`` on a line that is neither.
    """
    out: dict[str, float] = {}
    for number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body = line.split(" # ", 1)[0].rstrip()
        if "}" in body:
            cut = body.rindex("}") + 1
            series, value = body[:cut], body[cut:].strip()
        else:
            parts = body.split()
            if len(parts) != 2:
                raise ValueError(f"unparsable exposition line {number}: "
                                 f"{line!r}")
            series, value = parts
        special = {"+Inf": float("inf"), "-Inf": float("-inf"),
                   "NaN": float("nan")}
        out[series] = special.get(value, None)
        if out[series] is None:
            out[series] = float(value)
    return out


class _ScrapeHandler(BaseHTTPRequestHandler):
    """GET-only handler bound to one server's registry and health probe."""

    server_version = "repro-obs/2"

    def do_GET(self):  # noqa: N802 — http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            body = render_prometheus(self.server.registry).encode("utf-8")
            content_type = ("text/plain; version=0.0.4; "
                            "charset=utf-8")
        elif self.path.split("?", 1)[0] == "/healthz":
            payload = {"status": "ok"}
            try:
                payload.update(self.server.health() or {})
            except Exception as exc:  # noqa: BLE001 — a failing probe
                # is exactly what the endpoint must report, not raise.
                payload = {"status": "failing",
                           "error": f"{type(exc).__name__}: {exc}"}
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics, /healthz)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # scrapes are too chatty for stderr
        pass


class MetricsHTTPServer:
    """Scrape endpoint for one registry: ``/metrics`` + ``/healthz``.

    ``health`` is an optional zero-argument callable returning a dict to
    merge into the health document (e.g. queue depth and worker count
    from a :class:`~repro.serve.MatchService`); a raising probe turns
    the status to ``"failing"`` instead of breaking the endpoint.
    ``port=0`` (default) binds an ephemeral port — read it back from
    ``.port`` / ``.url``.  Usable as a context manager.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 host: str = "127.0.0.1", port: int = 0, health=None):
        from .registry import default_registry
        self.registry = (registry if registry is not None
                         else default_registry())
        self._server = ThreadingHTTPServer((host, port), _ScrapeHandler)
        self._server.registry = self.registry
        self._server.health = health or (lambda: {})
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "MetricsHTTPServer":
        """Serve on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True,
                name="repro-obs-metrics")
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


class SpanExporter:
    """Drain completed request traces into telemetry ``span`` events.

    Every span in every newly completed trace becomes one event whose
    payload carries the OTLP essentials (``trace_id`` / ``span_id`` /
    ``parent_span_id`` / ``start`` / ``end`` / ``seconds``) plus the
    span's attributes; events satisfy :func:`~repro.obs.events
    .validate_event`, so the files interleave with training telemetry
    and render through ``repro telemetry``.  Already-exported traces
    are remembered by trace id, so :meth:`drain` is safe to call on a
    schedule.
    """

    def __init__(self, sink: EventSink, run_id: str = "serve"):
        self.sink = sink
        self.run_id = run_id
        self._seq = 0
        self._seen: set[str] = set()

    @classmethod
    def to_path(cls, path, run_id: str = "serve") -> "SpanExporter":
        """An exporter appending JSONL events to ``path``."""
        return cls(JsonlSink(path), run_id=run_id)

    def export(self, root: StageSpan) -> int:
        """Emit one trace tree; returns the number of span events."""
        emitted = 0
        for span, depth in root.walk():
            payload = span.as_dict()
            payload["depth"] = depth
            event = {"run_id": self.run_id, "ts": time.time(),
                     "seq": self._seq, "kind": "span",
                     "payload": payload}
            validate_event(event)
            self.sink.emit(event)
            self._seq += 1
            emitted += 1
        self._seen.add(root.trace_id)
        return emitted

    def drain(self, tracer: RequestTracer) -> int:
        """Export every completed trace not yet exported; returns the
        number of traces written."""
        drained = 0
        for root in tracer.snapshot():
            if root.trace_id not in self._seen:
                self.export(root)
                drained += 1
        return drained

    def close(self) -> None:
        self.sink.close()
