"""Op-level profiler for the ``repro.nn`` autodiff substrate.

Hooks :meth:`Tensor._make` — the single choke point every differentiable
op flows through — to count ops, estimated FLOPs and bytes produced, per
op kind (the kind is the name of the ``Tensor`` method that called
``_make``: ``matmul``, ``softmax``, ``layer_norm``, ...).  Also hooks
:meth:`Tensor.backward`, attributing the standard 2x-forward FLOP
estimate to the ops recorded since the previous backward call (training
loops interleave forward and backward, so that delta is the graph the
backward pass walks).

Usage::

    with profile() as prof:
        loss = model(batch)
        loss.backward()
    print(prof.table())
    prof.ops["matmul"].flops      # exact 2*m*n*k accounting

FLOP numbers are *estimates* (documented per kind in
:data:`_ELEMENTWISE_FACTORS`); they exist to rank hot ops and compare
runs, not to benchmark hardware.  Profiling is process-global and may
not be nested.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from ..nn.tensor import Tensor

__all__ = ["OpStats", "OpProfile", "profile"]


@dataclass
class OpStats:
    """Aggregated statistics for one op kind."""

    calls: int = 0
    flops: float = 0.0
    bytes: float = 0.0


# Cost in FLOPs per output element for elementwise/structured ops.  A
# transcendental counts ~4 (exp/log/tanh evaluation), plain arithmetic 1.
_ELEMENTWISE_FACTORS = {
    "add": 1.0, "neg": 1.0, "sub": 1.0, "mul": 1.0, "div": 1.0,
    "pow": 2.0, "exp": 4.0, "log": 4.0, "tanh": 4.0, "sigmoid": 5.0,
    "relu": 1.0, "gelu": 9.0,
    "softmax": 6.0, "log_softmax": 6.0, "dropout": 2.0,
    "layer_norm": 8.0, "masked_fill": 1.0,
}

# Pure data movement: zero FLOPs, but bytes still count.
_MOVEMENT = {"reshape", "transpose", "getitem", "embedding", "concat",
             "stack"}

# Normalize dunder/variant caller names to one canonical op kind.
_KIND_ALIASES = {
    "__add__": "add", "__radd__": "add", "__neg__": "neg",
    "__sub__": "sub", "__rsub__": "sub",
    "__mul__": "mul", "__rmul__": "mul",
    "__truediv__": "div", "__rtruediv__": "div",
    "__pow__": "pow", "__matmul__": "matmul",
    "__getitem__": "getitem",
}


def _estimate_flops(kind: str, out_size: int, parents) -> float:
    if kind == "matmul":
        # out has shape (..., M, N); the contraction dim K comes from the
        # left operand: 2*M*N*K multiply-adds per output row/col pair.
        inner = parents[0].data.shape[-1] if parents else 1
        return 2.0 * out_size * inner
    if kind in _MOVEMENT:
        return 0.0
    if kind in ("sum", "max"):
        # Reductions touch every input element once.
        return float(parents[0].data.size) if parents else float(out_size)
    return _ELEMENTWISE_FACTORS.get(kind, 1.0) * out_size


class OpProfile:
    """Result of one :func:`profile` block."""

    def __init__(self):
        self.ops: dict[str, OpStats] = {}
        self._forward_flops = 0.0
        self._forward_bytes = 0.0
        self._flops_at_backward = 0.0
        self._bytes_at_backward = 0.0

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.ops.values())

    @property
    def total_flops(self) -> float:
        return sum(s.flops for s in self.ops.values())

    @property
    def total_bytes(self) -> float:
        return sum(s.bytes for s in self.ops.values())

    def _record(self, kind: str, data, parents) -> None:
        stats = self.ops.get(kind)
        if stats is None:
            stats = self.ops[kind] = OpStats()
        stats.calls += 1
        flops = _estimate_flops(kind, data.size, parents)
        stats.flops += flops
        stats.bytes += data.nbytes
        self._forward_flops += flops
        self._forward_bytes += data.nbytes

    def _record_backward(self) -> None:
        stats = self.ops.get("backward")
        if stats is None:
            stats = self.ops["backward"] = OpStats()
        stats.calls += 1
        stats.flops += 2.0 * (self._forward_flops - self._flops_at_backward)
        stats.bytes += 2.0 * (self._forward_bytes - self._bytes_at_backward)
        self._flops_at_backward = self._forward_flops
        self._bytes_at_backward = self._forward_bytes

    def as_dict(self) -> dict[str, dict]:
        """JSON-ready ``{kind: {calls, flops, bytes}}``, hottest first."""
        ordered = sorted(self.ops.items(), key=lambda kv: -kv[1].flops)
        return {kind: {"calls": stats.calls, "flops": stats.flops,
                       "bytes": stats.bytes}
                for kind, stats in ordered}

    def table(self) -> str:
        """Aligned op-FLOP table, hottest first."""
        from ..utils.render import format_table
        rows = [[kind, stats["calls"], f"{stats['flops'] / 1e6:.2f}",
                 f"{stats['bytes'] / 1e6:.2f}"]
                for kind, stats in self.as_dict().items()]
        return format_table(["op", "calls", "MFLOPs", "MB"], rows,
                            title="op profile (estimated)")


class profile:
    """Context manager that installs the ``Tensor`` hooks.

    ``with profile() as prof:`` yields the live :class:`OpProfile`; the
    hooks are removed (original methods restored) on exit, even on error.
    """

    _active = False

    def __enter__(self) -> OpProfile:
        if profile._active:
            raise RuntimeError("profile() blocks may not be nested")
        profile._active = True
        prof = OpProfile()
        self._profile = prof
        self._orig_make = Tensor._make
        self._orig_backward = Tensor.backward

        orig_make = self._orig_make

        def _make_profiled(tensor_self, data, parents):
            caller = sys._getframe(1).f_code.co_name
            kind = _KIND_ALIASES.get(caller, caller)
            prof._record(kind, data, parents)
            return orig_make(tensor_self, data, parents)

        orig_backward = self._orig_backward

        def _backward_profiled(tensor_self, grad=None):
            prof._record_backward()
            return orig_backward(tensor_self, grad)

        Tensor._make = _make_profiled
        Tensor.backward = _backward_profiled
        return prof

    def __exit__(self, exc_type, exc, tb) -> bool:
        Tensor._make = self._orig_make
        Tensor.backward = self._orig_backward
        profile._active = False
        return False
