"""The ``repro obs top`` terminal dashboard.

A glanceable serving cockpit rendered from the same primitives the
tests assert on: queue depth and request counters from the
:class:`~repro.obs.registry.MetricsRegistry`, latency quantiles from
the bucketed histograms, error-budget state from an
:class:`~repro.obs.slo.SLOMonitor`, and the slowest recent request
traces from a :class:`~repro.obs.context.RequestTracer`.

Two data sources:

* **local** — :func:`gather_local` reads live in-process objects
  (the demo mode wires a :class:`~repro.serve.clock.VirtualClock` load
  simulation to one);
* **remote** — :func:`gather_url` scrapes a
  :class:`~repro.obs.expo.MetricsHTTPServer` ``/metrics`` endpoint and
  reconstructs quantiles from the cumulative bucket counts (traces and
  budget detail stay local-only; the scrape has no span access).

:func:`run_top` drives the render loop: on a TTY it clears and
redraws every interval (ANSI home+clear, no curses dependency); on a
pipe it prints one snapshot and exits, so ``repro obs top --demo |
grep p95`` works in scripts and tests.
"""

from __future__ import annotations

import sys
import time

from .registry import Histogram, MetricsRegistry

__all__ = ["gather_local", "gather_url", "demo_state", "render_dashboard",
           "run_top"]


def _family_sum(registry: MetricsRegistry, name: str) -> float:
    return sum(m.value for m in registry.families().get(name, []))


def _histograms(registry: MetricsRegistry, name: str) -> list[Histogram]:
    return list(registry.families().get(name, []))


def _quantile_from_buckets(buckets: list[tuple[float, float]],
                           q: float) -> float:
    """Estimate a quantile from cumulative ``(le, count)`` pairs by
    linear interpolation within the containing bucket."""
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    low_bound, low_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank:
            if bound == float("inf"):
                return low_bound
            span = count - low_count
            if span <= 0:
                return bound
            return low_bound + (bound - low_bound) \
                * (rank - low_count) / span
        low_bound, low_count = bound, count
    return low_bound


def _latency_quantiles(registry: MetricsRegistry,
                       name: str = "serve.latency_seconds") -> dict:
    metrics = _histograms(registry, name)
    if not metrics:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    if len(metrics) == 1:
        h = metrics[0]
        return {"count": h.count, "p50": h.p50, "p95": h.p95,
                "p99": h.p99}
    merged: dict[float, float] = {}
    for h in metrics:
        for bound, count in h.bucket_counts():
            merged[bound] = merged.get(bound, 0.0) + count
    buckets = sorted(merged.items())
    return {"count": sum(h.count for h in metrics),
            "p50": _quantile_from_buckets(buckets, 0.50),
            "p95": _quantile_from_buckets(buckets, 0.95),
            "p99": _quantile_from_buckets(buckets, 0.99)}


def _trace_line(root) -> dict:
    stages = ", ".join(
        f"{child.name} {child.duration * 1000:.1f}ms"
        for child in root.children if child.duration > 0) or "instant"
    return {"trace_id": root.trace_id,
            "ms": root.duration * 1000.0,
            "outcome": root.attrs.get("outcome", "?"),
            "stages": stages}


def gather_local(registry: MetricsRegistry, monitor=None, tracer=None,
                 source: str = "local") -> dict:
    """One dashboard state dict from in-process observability objects."""
    batch = _histograms(registry, "serve.batch.size")
    state = {
        "source": source,
        "queue_depth": _family_sum(registry, "serve.queue.depth"),
        "counters": {
            key: _family_sum(registry, f"serve.{key}")
            for key in ("requests", "completed", "rejected", "timeouts",
                        "degraded")},
        "latency": _latency_quantiles(registry),
        "batch": {
            "count": sum(h.count for h in batch),
            "mean": (sum(h.total for h in batch)
                     / max(sum(h.count for h in batch), 1)),
            "max": max((h.max for h in batch if h.count), default=0.0)},
        "slo": [],
        "slowest": [],
    }
    if monitor is not None:
        monitor.record()
        monitor.evaluate()
        firing = {(a.slo, a.window) for a in monitor.firing()}
        for slo in monitor.slos:
            state["slo"].append({
                "name": slo.name,
                "objective": slo.objective,
                "budget_remaining":
                    monitor.error_budget_remaining(slo.name),
                "firing": sorted(w for s, w in firing if s == slo.name)})
    if tracer is not None:
        state["slowest"] = [_trace_line(root)
                            for root in tracer.slowest(5)]
    return state


def gather_url(url: str, timeout: float = 5.0) -> dict:
    """Dashboard state scraped from a ``/metrics`` endpoint."""
    import urllib.request

    from .expo import parse_prometheus
    with urllib.request.urlopen(f"{url.rstrip('/')}/metrics",
                                timeout=timeout) as response:
        series = parse_prometheus(response.read().decode("utf-8"))

    def counter(name: str) -> float:
        return sum(v for k, v in series.items()
                   if k == name or k.startswith(name + "{"))

    prefix = "serve_latency_seconds_bucket{le="
    bounds = {k: k[len(prefix):-1].strip('"')
              for k in series if k.startswith(prefix)}
    buckets = sorted(
        (float("inf") if bound == "+Inf" else float(bound), series[k])
        for k, bound in bounds.items())
    batch_count = counter("serve_batch_size_count")
    return {
        "source": url,
        "queue_depth": counter("serve_queue_depth"),
        "counters": {key: counter(f"serve_{key}")
                     for key in ("requests", "completed", "rejected",
                                 "timeouts", "degraded")},
        "latency": {
            "count": counter("serve_latency_seconds_count"),
            "p50": _quantile_from_buckets(buckets, 0.50),
            "p95": _quantile_from_buckets(buckets, 0.95),
            "p99": _quantile_from_buckets(buckets, 0.99)},
        "batch": {
            "count": batch_count,
            "mean": counter("serve_batch_size_sum")
            / max(batch_count, 1),
            "max": 0.0},
        "slo": [],
        "slowest": [],
    }


def demo_state() -> dict:
    """A deterministic dashboard state from a virtual-clock load sim.

    Runs the seeded demo workload through a
    :class:`~repro.serve.MatchService` on a
    :class:`~repro.serve.clock.VirtualClock` (instant scoring, one
    deliberately slow-queued burst, one poisoned request), then
    gathers the resulting registry/monitor/tracer — zero real sleeps,
    same numbers every run.
    """
    from ..resilience import ChaosMonkey
    from ..serve import MatchService, ServeConfig
    from ..serve.backends import CallableBackend
    from ..serve.clock import VirtualClock
    from ..serve.sim import generate_workload, run_simulation
    from .slo import SLOMonitor, default_serve_slos

    clock = VirtualClock()
    registry = MetricsRegistry()
    pairs = [({"name": f"rec a{i}", "city": "x" * (i % 5 + 1)},
              {"name": f"rec b{i}", "city": "x" * (i % 5 + 1)})
             for i in range(16)]
    workload = generate_workload(pairs, num_requests=120, rate=150.0,
                                 pattern="poisson", seed=11)
    chaos = ChaosMonkey(seed=3, poison_forward_rows=frozenset({5, 41}))
    service = MatchService(
        CallableBackend(lambda a, b: 0.25 + 0.5 * (len(dict(a)) % 2)),
        ServeConfig(max_batch_size=8, max_wait_ms=4.0, max_queue=32,
                    default_timeout_ms=250.0),
        clock=clock, registry=registry, chaos=chaos)
    monitor = SLOMonitor(default_serve_slos(), registry=registry,
                         clock=clock)
    monitor.record()
    run_simulation(service, workload)
    return gather_local(registry, monitor=monitor,
                        tracer=service.tracer, source="demo (virtual)")


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:7.1f}"


def render_dashboard(state: dict) -> str:
    """The dashboard state as fixed-width terminal text."""
    counters = state["counters"]
    latency = state["latency"]
    batch = state["batch"]
    lines = [
        f"repro obs top — source: {state['source']}",
        "",
        f"queue depth {int(state['queue_depth']):>6}    "
        f"requests {int(counters['requests']):>7}    "
        f"completed {int(counters['completed']):>7}",
        f"rejected  {int(counters['rejected']):>8}    "
        f"timeouts {int(counters['timeouts']):>7}    "
        f"degraded  {int(counters['degraded']):>7}",
        "",
        f"latency ms   p50 {_fmt_ms(latency['p50'])}   "
        f"p95 {_fmt_ms(latency['p95'])}   "
        f"p99 {_fmt_ms(latency['p99'])}   "
        f"(n={int(latency['count'])})",
        f"batch size   mean {batch['mean']:7.2f}   "
        f"max {batch['max']:7.1f}   "
        f"(n={int(batch['count'])})",
    ]
    if state["slo"]:
        lines.append("")
        lines.append("error budget:")
        for entry in state["slo"]:
            status = (f"FIRING: {', '.join(entry['firing'])}"
                      if entry["firing"] else "ok")
            lines.append(
                f"  {entry['name']:<20} objective "
                f"{entry['objective'] * 100:5.1f}%   "
                f"budget {entry['budget_remaining'] * 100:6.1f}%   "
                f"{status}")
    if state["slowest"]:
        lines.append("")
        lines.append("slowest recent traces:")
        for trace in state["slowest"]:
            lines.append(
                f"  {trace['trace_id']}  {trace['ms']:7.1f} ms  "
                f"[{trace['outcome']}]  {trace['stages']}")
    return "\n".join(lines) + "\n"


def run_top(gather, stream=None, interval: float = 2.0,
            iterations: int | None = None, live: bool | None = None,
            sleep=time.sleep) -> int:
    """Drive the dashboard: live redraw on a TTY, one-shot otherwise.

    ``gather`` is a zero-argument callable returning a state dict;
    ``iterations=None`` means run until interrupted (live mode) or
    print once (snapshot mode).  Returns a process exit code.
    """
    stream = stream if stream is not None else sys.stdout
    if live is None:
        live = bool(getattr(stream, "isatty", lambda: False)())
    rounds = iterations if iterations is not None else (None if live
                                                       else 1)
    done = 0
    try:
        while rounds is None or done < rounds:
            frame = render_dashboard(gather())
            if live:
                stream.write("\x1b[2J\x1b[H")
            stream.write(frame)
            stream.flush()
            done += 1
            if rounds is not None and done >= rounds:
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
