"""Span-based tracing: nested wall-clock spans with exclusive time.

Subsumes the old ``repro.utils.timer`` module: :class:`Timer` and
:func:`format_duration` now live here (and remain re-exported from
``repro.utils`` for backwards compatibility).  New code should prefer
spans::

    with trace("epoch", epoch=3) as span:
        ...
    span.wall       # seconds inside the block
    span.exclusive  # wall minus time spent in child spans

Spans nest: a ``trace()`` opened while another is active becomes a child
of the active span, so a finished root span is a tree of where the time
went.  Completed root spans accumulate on the tracer
(:meth:`Tracer.mark` / :meth:`Tracer.since` let a caller collect just the
spans recorded during one run).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Span", "Tracer", "trace", "default_tracer", "aggregate_spans",
           "Timer", "format_duration"]


class Span:
    """One timed region; forms a tree through ``children``."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = attrs or {}
        self.start = time.perf_counter()
        self.end: float | None = None
        self.children: list["Span"] = []

    @property
    def wall(self) -> float:
        """Elapsed wall-clock seconds (0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def exclusive(self) -> float:
        """Wall time not attributed to any child span."""
        return max(self.wall - sum(c.wall for c in self.children), 0.0)

    def walk(self, depth: int = 0, path: str = ""):
        """Yield ``(span, depth, path)`` depth-first, parents before
        children; ``path`` is slash-joined ancestor names."""
        here = f"{path}/{self.name}" if path else self.name
        yield self, depth, here
        for child in self.children:
            yield from child.walk(depth + 1, here)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, wall={self.wall:.4f}s, " \
               f"children={len(self.children)})"


class Tracer:
    """Records a stack of open spans and a list of completed root spans."""

    def __init__(self):
        self.completed: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs):
        node = Span(name, attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            self._stack.pop()
            if parent is None:
                self.completed.append(node)

    def mark(self) -> int:
        """Bookmark the completed-span list; pass to :meth:`since`."""
        return len(self.completed)

    def since(self, mark: int) -> list[Span]:
        """Root spans completed after ``mark`` was taken."""
        return self.completed[mark:]

    def reset(self) -> None:
        self.completed.clear()

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def active_path(self) -> str:
        """Slash-joined names of the currently open spans ('' if none)."""
        return "/".join(span.name for span in self._stack)


def aggregate_spans(roots: list[Span]) -> dict[str, dict[str, float]]:
    """Fold span trees into per-name totals.

    Returns ``{name: {count, total, exclusive, max}}`` with seconds as
    values, sorted by total descending.
    """
    stats: dict[str, dict[str, float]] = {}
    for root in roots:
        for span, _, _ in root.walk():
            entry = stats.setdefault(span.name, {
                "count": 0, "total": 0.0, "exclusive": 0.0, "max": 0.0})
            entry["count"] += 1
            entry["total"] += span.wall
            entry["exclusive"] += span.exclusive
            entry["max"] = max(entry["max"], span.wall)
    return dict(sorted(stats.items(), key=lambda kv: -kv[1]["total"]))


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer that :func:`trace` records into."""
    return _DEFAULT_TRACER


def trace(name: str, **attrs):
    """Open a span on the default tracer (context manager)."""
    return _DEFAULT_TRACER.span(name, **attrs)


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    .. deprecated:: prefer :func:`trace` spans; kept for backwards
       compatibility with pre-obs callers.
    """

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        return False


def format_duration(seconds: float) -> str:
    """Render seconds the way the paper's Table 6 does (e.g. '2m 42s')."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m {rem:.0f}s"
