"""Telemetry events: stable JSONL schema, sinks, and run bundling.

Every event is one JSON object per line::

    {"run_id": "...", "ts": 1712345678.9, "seq": 4,
     "kind": "step", "payload": {"step": 4, "loss": 0.61, ...}}

``kind`` is drawn from :data:`EVENT_KINDS`; :func:`validate_event`
checks the envelope and the per-kind required payload fields, and the
``repro telemetry`` report only needs this schema (not the code that
produced the file).

Sinks are deliberately tiny: :class:`JsonlSink` appends lines to a file,
:class:`MemorySink` collects dicts (tests), and :class:`NullSink` drops
everything — the no-op path instrumented code pays when telemetry is
disabled.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .registry import MetricsRegistry
from .tracing import Span, Tracer, default_tracer

__all__ = ["SCHEMA_VERSION", "EVENT_KINDS", "EventSink", "NullSink",
           "MemorySink", "JsonlSink", "TelemetryRun", "read_events",
           "read_events_tolerant", "validate_event"]

SCHEMA_VERSION = 1

EVENT_KINDS = frozenset({
    "run_begin",    # run-level metadata (command, config)
    "run_end",      # run finished; wall seconds
    "train_begin",  # a training loop starts (phase, sizes)
    "train_end",    # a training loop finished (summary numbers)
    "step",         # one optimizer step (loss, lr, grad_norm, ...)
    "epoch_end",    # one epoch finished (train_loss, seconds, eval)
    "eval",         # an evaluation pass (f1/precision/recall)
    "span",         # one completed tracing span (flattened tree node)
    "metric",       # one registry metric snapshot
    "profile",      # op-level profiler result (per-op-kind stats)
    "checkpoint",   # a training snapshot was written (step, path)
    "recovery",     # a fault was detected and survived (reason, action)
})

# Payload keys that must be present for each kind (beyond these, payloads
# are open — producers may attach whatever context they have).
_REQUIRED_PAYLOAD: dict[str, tuple[str, ...]] = {
    "run_begin": (),
    "run_end": ("seconds",),
    "train_begin": ("phase",),
    "train_end": ("phase",),
    "step": ("step", "loss"),
    "epoch_end": ("epoch", "seconds"),
    "eval": ("epoch", "f1"),
    "span": ("name", "seconds"),
    "metric": ("name", "metric_kind"),
    "profile": ("ops",),
    "checkpoint": ("step",),
    "recovery": ("reason", "action"),
}


def validate_event(event: dict) -> None:
    """Raise ``ValueError`` if ``event`` does not satisfy the schema."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    for field, types in (("run_id", str), ("ts", (int, float)),
                         ("seq", int), ("kind", str), ("payload", dict)):
        if field not in event:
            raise ValueError(f"event missing field {field!r}: {event}")
        if not isinstance(event[field], types):
            raise ValueError(f"event field {field!r} has wrong type: "
                             f"{type(event[field]).__name__}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    payload = event["payload"]
    for key in _REQUIRED_PAYLOAD[kind]:
        if key not in payload:
            raise ValueError(
                f"{kind!r} payload missing required key {key!r}: {payload}")


class EventSink:
    """Destination for telemetry events."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Drops every event; the disabled-telemetry fast path."""

    __slots__ = ()

    def emit(self, event: dict) -> None:
        pass


class MemorySink(EventSink):
    """Keeps events in a list (used by tests and in-process consumers)."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)


class JsonlSink(EventSink):
    """Appends one JSON object per line to ``path`` (truncates on open)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=float))
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL telemetry file back into event dicts (strict)."""
    events, skipped = read_events_tolerant(path)
    if skipped:
        raise json.JSONDecodeError(
            f"{skipped} corrupt line(s) in {path} (use "
            f"read_events_tolerant to skip them)", doc="", pos=0)
    return events


def read_events_tolerant(path: str | Path) -> tuple[list[dict], int]:
    """Parse a JSONL telemetry file, skipping unparseable lines.

    Returns ``(events, skipped)``.  A crash mid-``emit`` leaves a
    truncated final line (and a killed writer can corrupt earlier
    ones); the readable events are still a valid prefix of the run, so
    the report tooling reads through this and surfaces the count
    instead of refusing the whole file.
    """
    events: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                skipped += 1
    return events, skipped


def _span_events(roots: list[Span]):
    for root in roots:
        for span, depth, path in root.walk():
            payload = {"name": span.name, "seconds": span.wall,
                       "exclusive": span.exclusive, "depth": depth,
                       "path": path}
            payload.update(span.attrs)
            yield payload


class TelemetryRun:
    """One run's telemetry: a sink plus the registry/tracer feeding it.

    Stamps every event with ``run_id``/``ts``/``seq``.  On :meth:`close`
    it drains the spans completed during the run (``span`` events), the
    registry snapshot (``metric`` events) and a final ``run_end``, then
    closes the sink.  Usable as a context manager.
    """

    def __init__(self, sink: EventSink | None = None,
                 run_id: str = "run",
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 span_mark: int | None = None):
        self.sink = sink or NullSink()
        self.run_id = run_id
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or default_tracer()
        self._seq = 0
        self._mark = self.tracer.mark() if span_mark is None else span_mark
        self._t0 = time.perf_counter()
        self._closed = False

    def emit(self, kind: str, **payload) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = {"run_id": self.run_id, "ts": time.time(),
                 "seq": self._seq, "kind": kind, "payload": payload}
        self._seq += 1
        self.sink.emit(event)

    def span(self, name: str, **attrs):
        """Open a span on this run's tracer (context manager)."""
        return self.tracer.span(name, **attrs)

    def close(self) -> None:
        if self._closed:
            return
        for payload in _span_events(self.tracer.since(self._mark)):
            self.emit("span", **payload)
        for name, snap in self.registry.snapshot().items():
            snap = dict(snap)
            self.emit("metric", name=name, metric_kind=snap.pop("kind"),
                      **snap)
        self.emit("run_end", seconds=time.perf_counter() - self._t0)
        self._closed = True
        self.sink.close()

    def __enter__(self) -> "TelemetryRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
