"""Bounded LRU caching for tokenization work.

Entity-matching workloads re-serialize the same records over and over:
each record participates in many candidate pairs, and every
``match_many`` / ``encode_dataset`` call used to re-run the subword
tokenizer from scratch.  :class:`TokenizationCache` memoizes the
text -> token-id mapping behind a bounded LRU keyed on a content hash
of the text, and exports hit/miss/eviction counters through the
:mod:`repro.obs` metrics registry.

The cache is attached *per tokenizer instance* (see
``SubwordTokenizer.cache``): token ids are only meaningful relative to
one vocabulary, so sharing entries across tokenizers would corrupt
encodings.  :func:`ensure_token_cache` is the idempotent attach helper
the matching layer uses.

Both cache classes are thread-safe: ``repro.serve`` encodes requests
from batcher workers while producers may be warming the same tokenizer,
and an unlocked ``OrderedDict.move_to_end`` during a concurrent ``put``
corrupts the recency list.
"""

from __future__ import annotations

from collections import OrderedDict
from hashlib import blake2b

from ..utils.concurrency import access, make_rlock

__all__ = ["LRUCache", "TokenizationCache", "ensure_token_cache"]


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = make_rlock("LRUCache._lock")
        self._entries: OrderedDict = OrderedDict()  # guard: _lock
        self.hits = 0        # guard: _lock
        self.misses = 0      # guard: _lock
        self.evictions = 0   # guard: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key, default=None):
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            access(self, "_entries")
            try:
                value = self._entries[key]
            except KeyError:
                access(self, "misses")
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            access(self, "hits")
            self.hits += 1
            return value

    def put(self, key, value) -> bool:
        """Insert/refresh ``key``; True if an older entry was evicted."""
        with self._lock:
            access(self, "_entries")
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                access(self, "evictions")
                self.evictions += 1
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            access(self, "_entries")
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        # Under the (reentrant) lock: hits and misses move together,
        # and an unlocked pair read can see a torn ratio mid-update.
        with self._lock:
            access(self, "hits", write=False)
            access(self, "misses", write=False)
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


def _content_key(text: str) -> bytes:
    """Stable content hash — fixed-width keys regardless of text size."""
    return blake2b(text.encode("utf-8"), digest_size=16).digest()


class TokenizationCache:
    """Memoize text -> token ids for one tokenizer.

    Values are stored as immutable tuples and handed out as fresh lists,
    so callers (pair truncation mutates its id lists) can never corrupt
    a cached entry.  Counter updates go to ``repro.obs``'s default
    registry under ``perf.token_cache.*`` unless another registry is
    passed.
    """

    def __init__(self, maxsize: int = 4096, registry=None):
        if registry is None:
            from ..obs import default_registry
            registry = default_registry()
        self._lru = LRUCache(maxsize)
        self._hits = registry.counter("perf.token_cache.hits")
        self._misses = registry.counter("perf.token_cache.misses")
        self._evictions = registry.counter("perf.token_cache.evictions")

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def lookup(self, text: str, compute) -> list[int]:
        """Return cached ids for ``text``, calling ``compute(text)`` on miss."""
        key = _content_key(text)
        cached = self._lru.get(key)
        if cached is not None:
            self._hits.inc()
            return list(cached)
        self._misses.inc()
        ids = compute(text)
        if self._lru.put(key, tuple(ids)):
            self._evictions.inc()
        return list(ids)

    def lookup_pair(self, text_a: str, text_b: str, max_length: int,
                    pad_to_max: bool, compute):
        """Memoize a finished pair :class:`Encoding`, not just the ids.

        EM workloads re-match identical pairs constantly (dedup sweeps,
        repeated serving requests); per-side id caching still rebuilds
        truncation, special-token assembly and the numpy arrays on every
        call.  Cached encodings have their arrays frozen read-only so
        the shared object can never be corrupted by a caller — consumers
        stack or fancy-index them into batches, which copies.
        """
        key = (_content_key(text_a), _content_key(text_b),
               max_length, pad_to_max)
        cached = self._lru.get(key)
        if cached is not None:
            self._hits.inc()
            return cached
        self._misses.inc()
        encoding = compute()
        for array in (encoding.input_ids, encoding.segment_ids,
                      encoding.pad_mask):
            array.setflags(write=False)
        if self._lru.put(key, encoding):
            self._evictions.inc()
        return encoding

    def clear(self) -> None:
        self._lru.clear()


def ensure_token_cache(tokenizer, maxsize: int = 4096,
                       registry=None) -> TokenizationCache:
    """Attach a :class:`TokenizationCache` to ``tokenizer`` if it has
    none yet, and return the attached cache (idempotent)."""
    cache = getattr(tokenizer, "cache", None)
    if cache is None:
        cache = TokenizationCache(maxsize=maxsize, registry=registry)
        tokenizer.cache = cache
    return cache
