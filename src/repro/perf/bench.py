"""The performance benchmark behind ``repro bench perf``.

Measures ``match_many`` throughput (pairs/sec) for every architecture
under the pre-optimization path (serial per-pair matching, fused kernels
off, no tokenization cache) and the fast path (length-bucketed batches,
fused no-tape kernels, tokenization cache), plus per-phase latency and
cache effectiveness, and writes the machine-readable scorecard to
``BENCH_perf.json`` at the repo root.

Imports from ``repro.matching`` stay inside the functions: the matching
layer imports ``repro.perf`` for its scheduling/caching primitives, so a
module-level import here would be circular.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["run_perf_benchmark", "write_report", "validate_report",
           "DEFAULT_ARCHS", "SPEEDUP_THRESHOLD"]

DEFAULT_ARCHS = ("bert", "roberta", "distilbert", "xlnet")
#: Acceptance floor: fast-path pairs/sec over the baseline on BERT.
SPEEDUP_THRESHOLD = 2.0

_REPORT_KEYS = ("benchmark", "smoke", "config", "architectures",
                "acceptance")
_ARCH_KEYS = ("pairs", "baseline_seconds", "baseline_pairs_per_sec",
              "fast_seconds", "fast_pairs_per_sec", "speedup", "phases",
              "cache", "decisions_consistent")


def _tiny_settings():
    from ..pretraining import ZooSettings
    return ZooSettings(base_steps=25, base_examples=150,
                       tokenizer_sentences=150, vocab_size=220,
                       d_model=32, num_layers=2, num_heads=2,
                       max_position=64, seq_len=32)


def _build_pairs(num_pairs: int, seed: int):
    """Record pairs from the dblp-acm benchmark, cycled up to the
    requested count (records repeating across candidate pairs is exactly
    the workload shape the tokenization cache exists for)."""
    from ..data import load_benchmark
    data = load_benchmark("dblp-acm", seed=seed, scale=0.05)
    base = [(p.record_a, p.record_b) for p in data.pairs]
    if not base:
        raise RuntimeError("dblp-acm produced no candidate pairs")
    # Keep the unique-pair pool at half the workload so every record
    # really is re-matched at least once — the cacheable shape.
    base = base[:max(1, num_pairs // 2)]
    pairs = [base[i % len(base)] for i in range(num_pairs)]
    return data, pairs


def _fit_matcher(arch: str, data, seed: int, zoo_dir):
    from ..matching import EntityMatcher, FineTuneConfig
    matcher = EntityMatcher(
        arch, seed=seed, zoo_settings=_tiny_settings(), zoo_dir=zoo_dir,
        finetune_config=FineTuneConfig(epochs=1, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(data)
    return matcher


def _bench_arch(arch: str, data, pairs, seed: int, zoo_dir,
                batch_size: int) -> dict:
    from ..nn import fused_kernels
    from ..obs import default_registry
    matcher = _fit_matcher(arch, data, seed, zoo_dir)
    tokenizer = matcher.pretrained.tokenizer

    # Baseline: the pre-optimization path — per-pair serial matching,
    # op-by-op kernels, no tokenization cache.
    tokenizer.cache = None
    with fused_kernels(False):
        start = time.perf_counter()
        baseline = matcher.match_many(pairs, fast=False)
        baseline_seconds = time.perf_counter() - start

    # Fast path: bucketed batches + fused no-tape kernels + cache.
    cache = matcher.ensure_token_cache()
    cache.clear()
    registry = default_registry()
    start = time.perf_counter()
    fast = matcher.match_many(pairs, fast=True, batch_size=batch_size)
    fast_seconds = time.perf_counter() - start

    n = len(pairs)
    decisions_consistent = all(
        a.matched == b.matched for a, b in zip(baseline, fast))
    return {
        "pairs": n,
        "baseline_seconds": baseline_seconds,
        "baseline_pairs_per_sec": n / max(baseline_seconds, 1e-9),
        "fast_seconds": fast_seconds,
        "fast_pairs_per_sec": n / max(fast_seconds, 1e-9),
        "speedup": baseline_seconds / max(fast_seconds, 1e-9),
        "phases": {
            "encode_seconds":
                registry.gauge("perf.match.encode_seconds").value,
            "forward_seconds":
                registry.gauge("perf.match.forward_seconds").value,
        },
        "cache": {"hits": int(cache.hits), "misses": int(cache.misses),
                  "hit_rate": cache.hit_rate},
        "decisions_consistent": decisions_consistent,
    }


def run_perf_benchmark(archs=DEFAULT_ARCHS, num_pairs: int = 200,
                       seed: int = 0, zoo_dir=None, batch_size: int = 32,
                       smoke: bool = False) -> dict:
    """Run the benchmark and return the report dict (see module doc)."""
    if smoke:
        num_pairs = min(num_pairs, 24)
    data, pairs = _build_pairs(num_pairs, seed)
    architectures = {}
    for arch in archs:
        architectures[arch] = _bench_arch(arch, data, pairs, seed,
                                          zoo_dir, batch_size)
    bert_speedup = architectures.get("bert", {}).get("speedup", 0.0)
    report = {
        "benchmark": "perf",
        "smoke": bool(smoke),
        "config": {"archs": list(archs), "pairs": num_pairs,
                   "seed": seed, "batch_size": batch_size},
        "architectures": architectures,
        "acceptance": {
            "bert_speedup": bert_speedup,
            "threshold": SPEEDUP_THRESHOLD,
            # Smoke runs are too small for stable timing; the threshold
            # is only enforced on full runs.
            "enforced": not smoke,
            "passed": bool(smoke or bert_speedup >= SPEEDUP_THRESHOLD),
        },
    }
    return report


def validate_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in _REPORT_KEYS:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("benchmark") != "perf":
        problems.append("benchmark field must be 'perf'")
    for arch, entry in report.get("architectures", {}).items():
        for key in _ARCH_KEYS:
            if key not in entry:
                problems.append(f"architectures[{arch!r}] missing {key!r}")
    acceptance = report.get("acceptance", {})
    for key in ("bert_speedup", "threshold", "enforced", "passed"):
        if key not in acceptance:
            problems.append(f"acceptance missing {key!r}")
    return problems


def write_report(report: dict, path: str | Path) -> Path:
    """Atomically write the report JSON to ``path``."""
    from ..utils import atomic_write_text
    path = Path(path)
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True)
                      + "\n")
    return path
