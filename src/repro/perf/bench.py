"""The performance benchmark behind ``repro bench perf`` (schema v2).

Measures ``match_many`` throughput (pairs/sec) for every architecture
under the pre-optimization path (serial per-pair matching, fused kernels
off, no tokenization cache), the fast path (length-bucketed batches,
fused no-tape kernels, tokenization cache), and — new in schema 2 — the
**int8 quantized** fast path (calibrated per-channel kernels, see
DESIGN.md §16) plus the **DistilBERT→RoBERTa confidence cascade**.  The
cascade section carries the headline aggregate number: cascade pairs/sec
over the RoBERTa pre-optimization baseline on the same workload, gated
at ≥4× with cascade F1 within tolerance of RoBERTa-only.

Every acceptance floor lives in :class:`PerfGates` (per-architecture
speedups, the cascade aggregate, the quantization decision-consistency
floor, the F1 tolerance) instead of scattered hard-coded constants;
:class:`PerfConfig` bundles the gates with the quantization/cascade
knobs.  The report is written to ``BENCH_perf.json`` with ``"schema": 2``
so downstream consumers can detect the field change instead of silently
misreading v1 files.

Imports from ``repro.matching`` stay inside the functions: the matching
layer imports ``repro.perf`` for its scheduling/caching primitives, so a
module-level import here would be circular.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = ["run_perf_benchmark", "write_report", "validate_report",
           "DEFAULT_ARCHS", "SPEEDUP_THRESHOLD", "SCHEMA_VERSION",
           "PerfGates", "PerfConfig"]

DEFAULT_ARCHS = ("bert", "roberta", "distilbert", "xlnet")

#: Report schema version stamped into BENCH_perf.json.
SCHEMA_VERSION = 2

#: Legacy alias (schema-1 name) for the BERT fast-path floor; kept so
#: existing consumers of the constant keep reading the same gate.
SPEEDUP_THRESHOLD = 2.0

# Per-architecture fast-path speedup floors.  BERT keeps the historical
# 2.0 gate; XLNet's two-stream attention leaves less fusable work so its
# floor is lower.
_ARCH_SPEEDUP_FLOORS = (("bert", 2.0), ("roberta", 1.8),
                        ("distilbert", 1.8), ("xlnet", 1.5))

_REPORT_KEYS = ("benchmark", "schema", "smoke", "config",
                "architectures", "cascade", "acceptance")
_ARCH_KEYS = ("pairs", "baseline_seconds", "baseline_pairs_per_sec",
              "fast_seconds", "fast_pairs_per_sec", "speedup", "phases",
              "cache", "decisions_consistent", "quantized")
_ACCEPTANCE_KEYS = ("enforced", "passed", "architectures",
                    "quantization", "cascade", "f1", "bert_speedup",
                    "threshold")


@dataclass(frozen=True)
class PerfGates:
    """Every acceptance floor of the perf benchmark in one place.

    ``arch_speedups`` maps architecture -> fast-path speedup floor (as a
    name/floor tuple so the config stays hashable);
    ``cascade_speedup`` is the aggregate cascade-over-RoBERTa-baseline
    floor; ``consistency_floor`` the minimum decision-agreement fraction
    for the int8 path; ``f1_tolerance`` how far cascade F1 may trail
    RoBERTa-only F1.
    """

    arch_speedups: tuple[tuple[str, float], ...] = _ARCH_SPEEDUP_FLOORS
    cascade_speedup: float = 4.0
    consistency_floor: float = 1.0
    f1_tolerance: float = 0.005

    def arch_floor(self, arch: str) -> float:
        """The fast-path speedup floor for ``arch`` (1.0 if unlisted)."""
        return dict(self.arch_speedups).get(arch, 1.0)

    def as_dict(self) -> dict:
        """JSON-ready view for the report's config section."""
        return {"arch_speedups": dict(self.arch_speedups),
                "cascade_speedup": self.cascade_speedup,
                "consistency_floor": self.consistency_floor,
                "f1_tolerance": self.f1_tolerance}


@dataclass(frozen=True)
class PerfConfig:
    """Benchmark configuration: gates plus quantization/cascade knobs.

    ``quantize`` toggles the int8 calibration + timing per
    architecture; ``cascade`` the two-model cascade section;
    ``calibration_pairs`` how many training pairs feed the calibration
    sweep (an equal held-out slice gates decision consistency);
    ``primary``/``secondary`` name the cascade's cheap and strong
    models; ``repeats`` is the best-of-N count for every timed path
    (scheduler interference only ever adds time, so the minimum is the
    noise-robust estimator — single-shot timings of these tiny models
    swing 2x run to run on a busy host).
    """

    gates: PerfGates = field(default_factory=PerfGates)
    quantize: bool = True
    cascade: bool = True
    calibration_pairs: int = 64
    primary: str = "distilbert"
    secondary: str = "roberta"
    repeats: int = 3


def _tiny_settings():
    from ..pretraining import ZooSettings
    return ZooSettings(base_steps=25, base_examples=150,
                       tokenizer_sentences=150, vocab_size=220,
                       d_model=32, num_layers=2, num_heads=2,
                       max_position=64, seq_len=32)


def _best_seconds(fn, repeats: int, setup=None):
    """Best-of-N wall time for ``fn`` plus its last result.

    ``setup`` runs before each repeat *outside* the timed region (cache
    clears, so every repeat measures the same cold-cache shape).  The
    minimum is the right estimator here: the forward passes are
    deterministic, so repeats differ only by scheduler interference,
    which strictly adds time.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        if setup is not None:
            setup()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _build_workload(num_pairs: int, seed: int):
    """dblp-acm splits plus a cycled test-pair workload.

    The workload cycles the test split's pairs up to the requested
    count with the unique pool capped at half the workload, so every
    record really is re-matched at least once — the cacheable shape.
    Train/validation stay held out for fitting, quantization
    calibration, and cascade band selection.
    """
    from ..data import load_benchmark, split_dataset
    from ..utils import child_rng
    data = load_benchmark("dblp-acm", seed=seed, scale=0.05)
    splits = split_dataset(data, child_rng(seed, "split", "bench-perf"))
    base = [(p.record_a, p.record_b) for p in splits.test.pairs]
    if not base:
        raise RuntimeError("dblp-acm produced no test pairs")
    base = base[:max(1, num_pairs // 2)]
    pairs = [base[i % len(base)] for i in range(num_pairs)]
    return splits, pairs


def _calibration_split(train, count: int):
    """Disjoint (calibration, holdout) pair lists from the train split."""
    pairs = [(p.record_a, p.record_b) for p in train.pairs]
    count = max(1, min(count, len(pairs) // 2 or 1))
    calibration = pairs[:count]
    holdout = pairs[count:2 * count] or calibration
    return calibration, holdout


def _fit_matcher(arch: str, splits, seed: int, zoo_dir):
    from ..matching import EntityMatcher, FineTuneConfig
    matcher = EntityMatcher(
        arch, seed=seed, zoo_settings=_tiny_settings(), zoo_dir=zoo_dir,
        # 3 epochs is the knee: 1 epoch leaves both models all-negative
        # (F1 0.0 — the cascade and F1 gates would pass vacuously),
        # 3 gives DistilBERT ~0.86 / RoBERTa ~1.0 on the test split so
        # band calibration has a real gap to close.
        finetune_config=FineTuneConfig(epochs=3, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(splits.train, splits.validation)
    return matcher


def _bench_arch(matcher, pairs, batch_size: int, config: PerfConfig,
                calibration, holdout) -> dict:
    from ..nn import fused_kernels
    from ..obs import default_registry
    tokenizer = matcher.pretrained.tokenizer

    # Baseline: the pre-optimization path — per-pair serial matching,
    # op-by-op kernels, no tokenization cache.
    tokenizer.cache = None
    with fused_kernels(False):
        baseline_seconds, baseline = _best_seconds(
            lambda: matcher.match_many(pairs, fast=False),
            config.repeats)

    # Fast path: bucketed batches + fused no-tape kernels + cache.
    cache = matcher.ensure_token_cache()
    registry = default_registry()
    fast_seconds, fast = _best_seconds(
        lambda: matcher.match_many(pairs, fast=True,
                                   batch_size=batch_size),
        config.repeats, setup=cache.clear)

    n = len(pairs)
    entry = {
        "pairs": n,
        "baseline_seconds": baseline_seconds,
        "baseline_pairs_per_sec": n / max(baseline_seconds, 1e-9),
        "fast_seconds": fast_seconds,
        "fast_pairs_per_sec": n / max(fast_seconds, 1e-9),
        "speedup": baseline_seconds / max(fast_seconds, 1e-9),
        "phases": {
            "encode_seconds":
                registry.gauge("perf.match.encode_seconds").value,
            "forward_seconds":
                registry.gauge("perf.match.forward_seconds").value,
        },
        "cache": {"hits": int(cache.hits), "misses": int(cache.misses),
                  "hit_rate": cache.hit_rate},
        "decisions_consistent": all(
            a.matched == b.matched for a, b in zip(baseline, fast)),
        "quantized": None,
    }
    if config.quantize:
        entry["quantized"] = _bench_quantized(
            matcher, pairs, batch_size, config, calibration, holdout)
    return entry


def _bench_quantized(matcher, pairs, batch_size: int, config: PerfConfig,
                     calibration, holdout) -> dict:
    """Calibrate int8 weights, gate decision consistency, time the path."""
    matcher.quantize(calibration, batch_size=batch_size)
    report = matcher.quantization_consistency(holdout,
                                              batch_size=batch_size)
    cache = matcher.ensure_token_cache()
    seconds, _ = _best_seconds(
        lambda: matcher.match_many(pairs, fast=True,
                                   batch_size=batch_size, quantized=True),
        config.repeats, setup=cache.clear)
    floor = config.gates.consistency_floor
    return {
        "calibration_pairs": len(calibration),
        "holdout_pairs": report.pairs,
        "seconds": seconds,
        "pairs_per_sec": len(pairs) / max(seconds, 1e-9),
        "consistency": report.consistency,
        "max_probability_delta": report.max_probability_delta,
        "decisions_consistent": report.passed(floor),
        "artifact_bytes": matcher.quantized_weights.nbytes,
    }


def _bench_cascade(primary, secondary, splits, pairs, batch_size: int,
                   config: PerfConfig, architectures: dict) -> dict:
    """Calibrate the ambiguity band and time the two-model cascade."""
    from ..matching import build_cascade, evaluate_predictions
    quantized_primary = (config.quantize
                         and primary.quantized_weights is not None)
    cascade = build_cascade(primary, secondary, splits.validation,
                            tolerance=config.gates.f1_tolerance,
                            batch_size=batch_size,
                            quantized=quantized_primary)
    band = cascade.calibration

    test_pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    labels = splits.test.labels()
    outcomes = cascade.score_pairs(test_pairs, fallback=False,
                                   batch_size=batch_size)
    f1_cascade = evaluate_predictions(
        labels, [o.matched for o in outcomes]).f1
    reference = secondary.engine().score_pairs(test_pairs, fallback=False,
                                               batch_size=batch_size)
    f1_secondary = evaluate_predictions(
        labels, [o.matched for o in reference]).f1

    def _clear_caches():
        primary.ensure_token_cache().clear()
        secondary.ensure_token_cache().clear()

    seconds, _ = _best_seconds(
        lambda: cascade.score_pairs(pairs, fallback=False,
                                    batch_size=batch_size),
        config.repeats, setup=_clear_caches)

    n = len(pairs)
    baseline_seconds = architectures.get(
        config.secondary, {}).get("baseline_seconds")
    aggregate = (baseline_seconds / max(seconds, 1e-9)
                 if baseline_seconds else 0.0)
    return {
        "primary": config.primary,
        "secondary": config.secondary,
        "quantized_primary": quantized_primary,
        "band": {"lo": band.lo, "hi": band.hi,
                 "validation_escalation_rate": band.escalation_rate},
        "pairs": n,
        "seconds": seconds,
        "pairs_per_sec": n / max(seconds, 1e-9),
        "baseline_seconds": baseline_seconds,
        "baseline_pairs_per_sec": (
            n / max(baseline_seconds, 1e-9) if baseline_seconds else 0.0),
        "aggregate_speedup": aggregate,
        "escalation_rate": cascade.last_escalation_rate(),
        "f1": {"cascade": f1_cascade, "secondary": f1_secondary,
               "delta": f1_cascade - f1_secondary},
    }


def _acceptance(architectures: dict, cascade: dict | None,
                gates: PerfGates, smoke: bool) -> dict:
    """Evaluate every gate; smoke runs report but never enforce."""
    arch_results = {}
    for arch, entry in architectures.items():
        floor = gates.arch_floor(arch)
        arch_results[arch] = {
            "speedup": entry["speedup"], "floor": floor,
            "passed": bool(entry["speedup"] >= floor
                           and entry["decisions_consistent"])}
    quant_results = {}
    for arch, entry in architectures.items():
        quantized = entry.get("quantized")
        if quantized is not None:
            quant_results[arch] = {
                "consistency": quantized["consistency"],
                "floor": gates.consistency_floor,
                "passed": bool(quantized["decisions_consistent"])}
    cascade_result = None
    f1_result = None
    if cascade is not None:
        cascade_result = {
            "aggregate_speedup": cascade["aggregate_speedup"],
            "floor": gates.cascade_speedup,
            "passed": bool(cascade["aggregate_speedup"]
                           >= gates.cascade_speedup)}
        delta = cascade["f1"]["delta"]
        f1_result = {
            "delta": delta, "tolerance": gates.f1_tolerance,
            # Matching or beating the secondary is a pass; only a drop
            # beyond tolerance fails.
            "passed": bool(delta >= -gates.f1_tolerance)}
    checks = [result["passed"] for result in arch_results.values()]
    checks += [result["passed"] for result in quant_results.values()]
    if cascade_result is not None:
        checks.append(cascade_result["passed"])
    if f1_result is not None:
        checks.append(f1_result["passed"])
    bert_speedup = architectures.get("bert", {}).get("speedup", 0.0)
    return {
        # Smoke runs are too small for stable timing; gates are only
        # enforced on full runs.
        "enforced": not smoke,
        "passed": bool(smoke or all(checks)),
        "architectures": arch_results,
        "quantization": quant_results,
        "cascade": cascade_result,
        "f1": f1_result,
        # Legacy schema-1 fields, kept for continuity of the historical
        # headline number.
        "bert_speedup": bert_speedup,
        "threshold": gates.arch_floor("bert"),
    }


def run_perf_benchmark(archs=DEFAULT_ARCHS, num_pairs: int = 200,
                       seed: int = 0, zoo_dir=None, batch_size: int = 64,
                       smoke: bool = False,
                       config: PerfConfig | None = None) -> dict:
    """Run the benchmark and return the report dict (see module doc)."""
    if config is None:
        config = PerfConfig()
    if smoke:
        num_pairs = min(num_pairs, 24)
        # Smoke validates plumbing/schema, never timing — one repeat.
        config = replace(config, repeats=1)
    splits, pairs = _build_workload(num_pairs, seed)
    calibration, holdout = _calibration_split(
        splits.train, 8 if smoke else config.calibration_pairs)
    architectures = {}
    matchers = {}
    for arch in archs:
        matcher = _fit_matcher(arch, splits, seed, zoo_dir)
        matchers[arch] = matcher
        architectures[arch] = _bench_arch(matcher, pairs, batch_size,
                                          config, calibration, holdout)
    cascade = None
    if (config.cascade and config.primary in matchers
            and config.secondary in matchers):
        cascade = _bench_cascade(matchers[config.primary],
                                 matchers[config.secondary], splits,
                                 pairs, batch_size, config,
                                 architectures)
    report = {
        "benchmark": "perf",
        "schema": SCHEMA_VERSION,
        "smoke": bool(smoke),
        "config": {"archs": list(archs), "pairs": num_pairs,
                   "seed": seed, "batch_size": batch_size,
                   "quantize": config.quantize,
                   "cascade": config.cascade,
                   "calibration_pairs": config.calibration_pairs,
                   "repeats": config.repeats,
                   "gates": config.gates.as_dict()},
        "architectures": architectures,
        "cascade": cascade,
        "acceptance": _acceptance(architectures, cascade, config.gates,
                                  smoke),
    }
    return report


def validate_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in _REPORT_KEYS:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("benchmark") != "perf":
        problems.append("benchmark field must be 'perf'")
    if report.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema field must be {SCHEMA_VERSION}, "
            f"got {report.get('schema')!r}")
    for arch, entry in report.get("architectures", {}).items():
        for key in _ARCH_KEYS:
            if key not in entry:
                problems.append(f"architectures[{arch!r}] missing {key!r}")
    cascade = report.get("cascade")
    if cascade is not None:
        for key in ("primary", "secondary", "band", "pairs_per_sec",
                    "aggregate_speedup", "escalation_rate", "f1"):
            if key not in cascade:
                problems.append(f"cascade missing {key!r}")
    acceptance = report.get("acceptance", {})
    for key in _ACCEPTANCE_KEYS:
        if key not in acceptance:
            problems.append(f"acceptance missing {key!r}")
    return problems


def write_report(report: dict, path: str | Path) -> Path:
    """Atomically write the report JSON to ``path``."""
    from ..utils import atomic_write_text
    path = Path(path)
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True)
                      + "\n")
    return path
