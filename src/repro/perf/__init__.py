"""Performance subsystem: no-tape inference, bucketing, caching, bench.

Four layers, one goal — make the matching hot path as fast as the
hardware allows without changing a single logit:

* **Fused no-tape kernels** live in :mod:`repro.nn` (``inference_mode``,
  ``fused_kernels``, ``repro.nn.fused``): with the tape off, the hot op
  chains run as single numpy kernels, bit-identical to the op-by-op
  path.
* **Length-bucketed batching** (:mod:`repro.perf.bucketing`): sort
  sequences by real token count, batch neighbors, trim right-padded
  batches to their own max length.
* **Tokenization caching** (:mod:`repro.perf.cache`): a bounded LRU over
  text -> token ids with hit/miss counters in :mod:`repro.obs`.
* **Benchmarking** (:mod:`repro.perf.bench`): the ``repro bench perf``
  engine emitting ``BENCH_perf.json``.
"""

from .bench import (DEFAULT_ARCHS, SCHEMA_VERSION, SPEEDUP_THRESHOLD,
                    PerfConfig, PerfGates, run_perf_benchmark,
                    validate_report, write_report)
from .bucketing import is_left_padded, plan_buckets, real_lengths, trim_length
from .cache import LRUCache, TokenizationCache, ensure_token_cache

__all__ = [
    "LRUCache", "TokenizationCache", "ensure_token_cache",
    "plan_buckets", "real_lengths", "is_left_padded", "trim_length",
    "run_perf_benchmark", "validate_report", "write_report",
    "DEFAULT_ARCHS", "SPEEDUP_THRESHOLD", "SCHEMA_VERSION",
    "PerfConfig", "PerfGates",
]
