"""Length-bucketed batch planning for inference over padded sequences.

Fixed-length padding makes every forward pass cost O(max_length) no
matter how short a pair is.  The scheduler here sorts sequences by their
real (unpadded) token count, chunks the sorted order into batches, and
trims each batch to its own longest member — so a batch of short pairs
runs a short forward pass.  Output order is restored by indexing results
back through the returned index arrays.

Trimming is only applied to right-padded batches (BERT-style, CLS at
position 0): dropping trailing pad columns leaves every real position's
ids, absolute positions and masks untouched, so outputs match the
untrimmed forward up to float summation order.  Left-padded batches
(XLNet, CLS at the sequence end) are *not* trimmed — XLNet's relative-
position score table is a function of the padded length, so shortening
the sequence would change the logits, not just their rounding.  Those
batches still benefit from length-sorted batching and the fused no-tape
path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["real_lengths", "plan_buckets", "is_left_padded", "trim_length"]


def real_lengths(pad_masks: np.ndarray) -> np.ndarray:
    """Per-sequence count of real (non-padding) tokens, shape (B,)."""
    return (~np.asarray(pad_masks, dtype=bool)).sum(axis=-1)


def plan_buckets(lengths: np.ndarray, batch_size: int) -> list[np.ndarray]:
    """Chunk indices into batches of length-sorted sequences.

    The sort is stable, so equal-length sequences keep their input order
    and the plan is deterministic.  Every index appears in exactly one
    bucket; concatenating the buckets is a permutation of ``range(n)``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    lengths = np.asarray(lengths)
    order = np.argsort(lengths, kind="stable")
    return [order[start: start + batch_size]
            for start in range(0, len(order), batch_size)]


def is_left_padded(pad_masks: np.ndarray) -> bool:
    """Whether any sequence carries padding at position 0 (XLNet-style)."""
    pad_masks = np.asarray(pad_masks, dtype=bool)
    if pad_masks.size == 0:
        return False
    return bool(pad_masks[:, 0].any())


def trim_length(pad_masks: np.ndarray) -> int:
    """The shortest length this right-padded batch can be trimmed to."""
    lengths = real_lengths(pad_masks)
    return max(int(lengths.max(initial=0)), 1)
