"""Active learning for entity matching.

The paper's authors' companion work (Brunner & Stockinger, SDS 2019,
reference [2]) labels EM pairs with an active-learning loop instead of a
fixed training set.  This module implements that workflow on top of any
matcher with ``fit``/``predict_proba``-style behaviour: start from a
small seed, repeatedly pick the most *uncertain* unlabeled pairs, reveal
their labels, retrain, and track test F1 per round.

It works with the transformer matcher and with the Magellan baseline,
which makes for a nice extension experiment: pre-trained representations
need far fewer labels to reach a given F1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import EMDataset
from ..utils import child_rng
from .metrics import MatchingMetrics

__all__ = ["ActiveLearningConfig", "ActiveLearningRound",
           "ActiveLearningResult", "active_learning_loop",
           "uncertainty_sampling"]


@dataclass
class ActiveLearningConfig:
    """Loop parameters."""

    seed_size: int = 24
    batch_per_round: int = 16
    rounds: int = 4
    seed: int = 0


@dataclass
class ActiveLearningRound:
    round_index: int
    labeled_count: int
    test_metrics: MatchingMetrics


@dataclass
class ActiveLearningResult:
    rounds: list[ActiveLearningRound] = field(default_factory=list)

    def f1_curve(self) -> list[float]:
        return [r.test_metrics.f1 for r in self.rounds]

    @property
    def final_f1(self) -> float:
        return self.rounds[-1].test_metrics.f1

    def labels_used(self) -> list[int]:
        return [r.labeled_count for r in self.rounds]


def uncertainty_sampling(probabilities: np.ndarray, count: int,
                         exclude: set[int]) -> list[int]:
    """Indices of the ``count`` most uncertain (p closest to 0.5)
    examples not yet labeled."""
    order = np.argsort(np.abs(np.asarray(probabilities) - 0.5))
    picked: list[int] = []
    for index in order:
        if int(index) not in exclude:
            picked.append(int(index))
            if len(picked) == count:
                break
    return picked


def active_learning_loop(matcher_factory, pool: EMDataset,
                         test: EMDataset,
                         config: ActiveLearningConfig | None = None
                         ) -> ActiveLearningResult:
    """Run uncertainty-sampling active learning.

    Parameters
    ----------
    matcher_factory:
        Zero-argument callable returning a *fresh* matcher exposing
        ``fit(train_dataset)``, ``predict(dataset) -> labels`` and
        ``evaluate(dataset) -> MatchingMetrics``; for probability-based
        sampling the matcher may expose ``predict_proba(dataset)``,
        otherwise predictions are used as 0/1 pseudo-probabilities.
    pool:
        Labeled dataset treated as the unlabeled pool (labels are only
        revealed when a pair is selected).
    test:
        Held-out evaluation split.
    """
    config = config or ActiveLearningConfig()
    rng = child_rng(config.seed, "active")
    if config.seed_size >= len(pool):
        raise ValueError("seed_size must be smaller than the pool")

    # Stratified seed so both classes are present from round zero.
    labels = np.asarray(pool.labels())
    positives = np.flatnonzero(labels == 1)
    negatives = np.flatnonzero(labels == 0)
    rng.shuffle(positives)
    rng.shuffle(negatives)
    n_pos = max(min(config.seed_size // 4, len(positives)), 1)
    labeled: set[int] = set(positives[:n_pos].tolist())
    labeled |= set(negatives[: config.seed_size - len(labeled)].tolist())

    result = ActiveLearningResult()
    for round_index in range(config.rounds):
        train = pool.subset(sorted(labeled), "-active")
        matcher = matcher_factory()
        matcher.fit(train)
        metrics = matcher.evaluate(test)
        result.rounds.append(ActiveLearningRound(
            round_index=round_index,
            labeled_count=len(labeled),
            test_metrics=metrics,
        ))
        if round_index == config.rounds - 1:
            break
        if hasattr(matcher, "predict_proba"):
            probabilities = np.asarray(matcher.predict_proba(pool))
        else:
            probabilities = np.asarray(matcher.predict(pool), dtype=float)
        picked = uncertainty_sampling(probabilities,
                                      config.batch_per_round, labeled)
        if not picked:
            break
        labeled.update(picked)
    return result
