"""Evaluation metrics for entity matching.

F1 as the paper defines it (§5.3): recall is true matches predicted over
all true matches, precision is true matches over predicted matches, F1 is
their harmonic mean.  Reported on the positive (match) class, the
convention of the whole EM literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MatchingMetrics", "evaluate_predictions", "f1_score",
           "confusion_matrix"]


@dataclass
class MatchingMetrics:
    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def accuracy(self) -> float:
        total = (self.true_positives + self.false_positives
                 + self.false_negatives + self.true_negatives)
        if total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / total

    def as_percent(self) -> "MatchingMetrics":
        """Same metrics with precision/recall/F1 scaled to 0-100."""
        return MatchingMetrics(
            precision=self.precision * 100.0,
            recall=self.recall * 100.0,
            f1=self.f1 * 100.0,
            true_positives=self.true_positives,
            false_positives=self.false_positives,
            false_negatives=self.false_negatives,
            true_negatives=self.true_negatives,
        )


def confusion_matrix(y_true: np.ndarray,
                     y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) for binary labels."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    return tp, fp, fn, tn


def evaluate_predictions(y_true: np.ndarray,
                         y_pred: np.ndarray) -> MatchingMetrics:
    """Precision/recall/F1 and the confusion counts of predictions."""
    tp, fp, fn, tn = confusion_matrix(y_true, y_pred)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return MatchingMetrics(precision=precision, recall=recall, f1=f1,
                           true_positives=tp, false_positives=fp,
                           false_negatives=fn, true_negatives=tn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Positive-class F1, the EM literature's headline metric."""
    return evaluate_predictions(y_true, y_pred).f1
