"""DistilBERT→RoBERTa confidence cascade over two match engines.

The paper's own speed/accuracy ordering — DistilBERT fastest but
weakest, RoBERTa slowest but best (Table 5) — makes a cascade a free
win: every pair is scored by the cheap *primary* first, and only pairs
whose probability lands inside a calibrated **ambiguity band**
``(lo, hi)`` escalate to the expensive *secondary*.  Outside the band
the primary's decision is already confident and is returned untouched —
bit-identical to primary-only matching (pinned by property tests in
``tests/test_quant.py``).

Band selection (:func:`calibrate_band`) is empirical, on validation
data: both models score the validation pairs once, then the smallest
symmetric band around the decision threshold whose cascade F1 stays
within ``tolerance`` of secondary-only F1 wins.  The degenerate band
``[0.5, 0.5]`` escalates nothing (strict inequalities), and ``lo=0,
hi=1`` escalates everything — the cascade interpolates between the two
models' cost/quality points.

:class:`CascadeEngine` mirrors :meth:`MatchEngine.score_pairs`
signature-for-signature, so it drops into everything built on the
engine protocol: ``match_many``-style bulk calls, and — through
:class:`repro.serve.CascadeBackend` — the whole serving, resilience and
tracing stack.  Escalation telemetry lands in the metrics registry as
``cascade.*`` counters and an ``escalate`` trace stage.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from ..obs import default_registry
from .metrics import evaluate_predictions

__all__ = ["CascadeBand", "CascadeEngine", "calibrate_band",
           "build_cascade"]


@dataclass(frozen=True)
class CascadeBand:
    """A calibrated ambiguity band plus its validation-set evidence.

    Pairs with primary probability strictly inside ``(lo, hi)``
    escalate.  ``escalation_rate``, ``f1`` (cascade) and
    ``secondary_f1`` describe the band's behavior on the validation
    data it was selected on.
    """

    lo: float
    hi: float
    escalation_rate: float
    f1: float
    secondary_f1: float

    @property
    def width(self) -> float:
        """Half-width of the band around the decision threshold."""
        return (self.hi - self.lo) / 2.0


def calibrate_band(primary_probs, secondary_probs, labels,
                   threshold: float = 0.5, tolerance: float = 0.005,
                   steps: int = 51) -> CascadeBand:
    """Pick the smallest ambiguity band that preserves secondary F1.

    ``primary_probs`` / ``secondary_probs`` are both models' match
    probabilities on the *same* validation pairs, ``labels`` the gold
    labels.  Symmetric candidate bands ``(threshold - w, threshold + w)``
    are swept from ``w = 0`` up; for each, the cascade decision is the
    secondary's inside the band and the primary's outside, and the first
    (narrowest → cheapest) band whose F1 is within ``tolerance`` of
    secondary-only F1 is returned.  Falls back to the widest candidate
    (escalate everything ambiguous) when none qualifies — the cascade
    then simply matches the secondary on every contested pair.
    """
    primary = np.asarray(primary_probs, dtype=float)
    secondary = np.asarray(secondary_probs, dtype=float)
    gold = np.asarray(labels, dtype=int)
    if not (primary.shape == secondary.shape == gold.shape):
        raise ValueError(
            f"probability/label arrays differ in shape: {primary.shape} "
            f"vs {secondary.shape} vs {gold.shape}")
    secondary_decisions = secondary >= threshold
    secondary_f1 = evaluate_predictions(gold, secondary_decisions).f1
    primary_decisions = primary >= threshold
    widths = np.linspace(0.0, max(threshold, 1.0 - threshold), steps)
    chosen = None
    for width in widths:
        lo, hi = threshold - width, threshold + width
        escalated = (primary > lo) & (primary < hi)
        decisions = np.where(escalated, secondary_decisions,
                             primary_decisions)
        f1 = evaluate_predictions(gold, decisions).f1
        chosen = CascadeBand(
            lo=float(lo), hi=float(hi),
            escalation_rate=float(escalated.mean()),
            f1=f1, secondary_f1=secondary_f1)
        if f1 >= secondary_f1 - tolerance:
            break
    return chosen


class CascadeEngine:
    """Two-stage engine: cheap primary for all, secondary for the band.

    ``primary`` and ``secondary`` follow the
    :meth:`repro.matching.MatchEngine.score_pairs` protocol (a
    :class:`MatchEngine` or another :class:`CascadeEngine`);
    ``band`` is a :class:`CascadeBand` or a plain ``(lo, hi)`` tuple.
    ``score_pairs`` keeps the engine protocol exactly, so the cascade
    drops into :class:`repro.serve.MatchService` unchanged.

    Telemetry: ``cascade.pairs`` / ``cascade.primary.pairs`` /
    ``cascade.escalated.pairs`` counters, a ``cascade.escalation_rate``
    gauge (per call), and an ``escalate`` trace stage around the
    secondary forward when a stages recorder is passed.
    """

    def __init__(self, primary, secondary, band, registry=None):
        lo, hi = ((band.lo, band.hi) if isinstance(band, CascadeBand)
                  else band)
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"invalid ambiguity band [{lo}, {hi}]")
        self.primary = primary
        self.secondary = secondary
        self.band = (float(lo), float(hi))
        self.calibration = band if isinstance(band, CascadeBand) else None
        self._last_rate = 0.0
        self._registry = registry if registry is not None \
            else default_registry()

    def score_pairs(self, pairs, threshold: float = 0.5,
                    fallback: bool = True, cb=None, batch_size: int = 64,
                    keys=None, forward_hook=None, stages=None) -> list:
        """Score pairs through the cascade; same contract as the engine.

        Every pair runs the primary; non-degraded outcomes whose
        probability falls strictly inside the band are re-scored by the
        secondary (under an ``escalate`` trace stage) and replaced
        in-place, keys preserved.  Degraded outcomes never escalate —
        the pair already failed the transformer path once.
        """
        pairs = list(pairs)
        keys = list(keys) if keys is not None else list(range(len(pairs)))
        outcomes = self.primary.score_pairs(
            pairs, threshold=threshold, fallback=fallback, cb=cb,
            batch_size=batch_size, keys=keys, forward_hook=forward_hook,
            stages=stages)
        lo, hi = self.band
        positions = [position for position, outcome in enumerate(outcomes)
                     if not outcome.degraded
                     and lo < outcome.probability < hi]
        registry = self._registry
        registry.counter("cascade.pairs").inc(len(pairs))
        registry.counter("cascade.primary.pairs").inc(len(pairs))
        registry.counter("cascade.escalated.pairs").inc(len(positions))
        rate = len(positions) / len(pairs) if pairs else 0.0
        registry.gauge("cascade.escalation_rate").set(rate)
        self._last_rate = rate
        if positions:
            with ExitStack() as scope:
                if stages is not None:
                    scope.enter_context(
                        stages.stage("escalate", pairs=len(positions)))
                escalated = self.secondary.score_pairs(
                    [pairs[position] for position in positions],
                    threshold=threshold, fallback=fallback, cb=cb,
                    batch_size=batch_size,
                    keys=[keys[position] for position in positions],
                    forward_hook=forward_hook)
            for position, outcome in zip(positions, escalated):
                outcomes[position] = outcome
        return outcomes

    def last_escalation_rate(self) -> float:
        """Escalation rate of the most recent ``score_pairs`` call."""
        return self._last_rate


def build_cascade(primary, secondary, validation,
                  threshold: float = 0.5, tolerance: float = 0.005,
                  batch_size: int = 64, quantized: bool = False,
                  registry=None) -> CascadeEngine:
    """Calibrate and assemble a cascade from two fitted matchers.

    ``primary`` / ``secondary`` are fitted
    :class:`~repro.matching.EntityMatcher` instances (typically
    DistilBERT and RoBERTa); ``validation`` an :class:`EMDataset` held
    out from fine-tuning.  Both models score the validation pairs once,
    :func:`calibrate_band` picks the narrowest F1-preserving band, and
    the returned :class:`CascadeEngine` wraps both engines —
    ``quantized=True`` additionally routes the primary through its
    calibrated int8 kernels (requires ``primary.quantize(...)`` first).
    """
    pairs = [(pair.record_a, pair.record_b) for pair in validation.pairs]
    labels = validation.labels()
    primary_engine = primary.engine(quantized=quantized)
    secondary_engine = secondary.engine()
    primary_probs = [outcome.probability for outcome in
                     primary_engine.score_pairs(pairs, fallback=False,
                                                batch_size=batch_size)]
    secondary_probs = [outcome.probability for outcome in
                       secondary_engine.score_pairs(
                           pairs, fallback=False, batch_size=batch_size)]
    band = calibrate_band(primary_probs, secondary_probs, labels,
                          threshold=threshold, tolerance=tolerance)
    return CascadeEngine(primary_engine, secondary_engine, band,
                         registry=registry)
