"""High-level entity-matching API.

The one-stop interface a downstream user adopts::

    from repro.matching import EntityMatcher

    matcher = EntityMatcher("roberta")
    matcher.fit(train_dataset)
    metrics = matcher.evaluate(test_dataset)
    label = matcher.match({"title": "apexon phone x1"},
                          {"title": "apexon smartphone x-1"})
"""

from __future__ import annotations

import numpy as np

from ..data import EMDataset, EntityPair, Record
from ..models import ARCHITECTURES
from ..nn import no_grad
from ..pretraining import PretrainedModel, ZooSettings, get_pretrained
from .finetune import FineTuneConfig, FineTuneResult, fine_tune
from .metrics import MatchingMetrics
from .serializer import encode_dataset, pair_texts

__all__ = ["EntityMatcher"]


class EntityMatcher:
    """Fine-tunable transformer entity matcher.

    Parameters
    ----------
    arch:
        One of ``bert``, ``roberta``, ``distilbert``, ``xlnet``.
    pretrained:
        An already-loaded :class:`PretrainedModel`; if omitted, the model
        zoo provides (and caches) one.
    seed:
        Controls pre-training lookup and fine-tuning shuffling/dropout.
    """

    def __init__(self, arch: str = "roberta",
                 pretrained: PretrainedModel | None = None,
                 seed: int = 0,
                 zoo_settings: ZooSettings | None = None,
                 zoo_dir=None,
                 finetune_config: FineTuneConfig | None = None):
        if arch not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {arch!r}; "
                             f"expected one of {ARCHITECTURES}")
        self.arch = arch
        self.seed = seed
        self.finetune_config = finetune_config or FineTuneConfig()
        self._pretrained = pretrained
        self._zoo_settings = zoo_settings
        self._zoo_dir = zoo_dir
        self._result: FineTuneResult | None = None
        self._schema: list[str] | None = None
        self._text_attributes: list[str] | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def pretrained(self) -> PretrainedModel:
        if self._pretrained is None:
            self._pretrained = get_pretrained(
                self.arch, seed=self.seed, settings=self._zoo_settings,
                zoo_dir=self._zoo_dir)
        return self._pretrained

    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    def fit(self, train: EMDataset, test: EMDataset | None = None,
            log=None, callbacks=None) -> FineTuneResult:
        """Fine-tune on ``train``; track per-epoch F1 on ``test`` if given
        (otherwise on a slice of the training data).

        ``callbacks`` takes :class:`repro.obs.Callback` instances; ``log``
        is the legacy print hook (still supported).
        """
        eval_set = test if test is not None else train[: max(len(train) // 5, 1)]
        self._schema = list(train.schema)
        self._text_attributes = train.text_attributes
        self._result = fine_tune(self.pretrained, train, eval_set,
                                 config=self.finetune_config,
                                 seed=self.seed, log=log,
                                 callbacks=callbacks)
        return self._result

    # -- inference --------------------------------------------------------------

    def _require_fitted(self) -> FineTuneResult:
        if self._result is None:
            raise RuntimeError("call fit() before predicting")
        return self._result

    def predict(self, dataset: EMDataset,
                batch_size: int = 64) -> np.ndarray:
        """Binary match predictions for every pair of ``dataset``."""
        result = self._require_fitted()
        encoded = encode_dataset(dataset, self.pretrained.tokenizer,
                                 result.max_length)
        result.classifier.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(encoded), batch_size):
                batch = encoded.batch(np.arange(
                    start, min(start + batch_size, len(encoded))))
                logits = result.classifier(
                    batch.input_ids, segment_ids=batch.segment_ids,
                    pad_mask=batch.pad_masks,
                    cls_index=int(batch.cls_indices[0]))
                outputs.append(logits.numpy().argmax(axis=-1))
        return np.concatenate(outputs) if outputs else np.array([])

    def evaluate(self, dataset: EMDataset) -> MatchingMetrics:
        """Precision/recall/F1 on a labeled dataset."""
        from .metrics import evaluate_predictions
        predictions = self.predict(dataset)
        return evaluate_predictions(np.asarray(dataset.labels()),
                                    predictions)

    def match_probability(self, entity_a: dict | Record,
                          entity_b: dict | Record) -> float:
        """Probability that two records refer to the same entity."""
        result = self._require_fitted()
        record_a = entity_a if isinstance(entity_a, Record) else Record(dict(entity_a))
        record_b = entity_b if isinstance(entity_b, Record) else Record(dict(entity_b))
        schema = self._schema or record_a.attributes()
        attributes = self._text_attributes or schema
        pair = EntityPair(record_a, record_b, 0)
        text_a, text_b = pair_texts(pair, attributes)
        enc = self.pretrained.tokenizer.encode_pair(
            text_a, text_b, max_length=result.max_length)
        result.classifier.eval()
        with no_grad():
            probs = result.classifier.predict_proba(
                enc.input_ids[None, :], segment_ids=enc.segment_ids[None, :],
                pad_mask=enc.pad_mask[None, :], cls_index=enc.cls_index)
        return float(probs[0, 1])

    def match(self, entity_a: dict | Record, entity_b: dict | Record,
              threshold: float = 0.5) -> bool:
        """Binary match decision for a single record pair."""
        return self.match_probability(entity_a, entity_b) >= threshold
