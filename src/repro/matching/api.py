"""High-level entity-matching API.

The one-stop interface a downstream user adopts::

    from repro.matching import EntityMatcher

    matcher = EntityMatcher("roberta")
    matcher.fit(train_dataset)
    metrics = matcher.evaluate(test_dataset)
    label = matcher.match({"title": "apexon phone x1"},
                          {"title": "apexon smartphone x-1"})
"""

from __future__ import annotations

import numpy as np

from ..data import EMDataset, EntityPair, Record
from ..models import ARCHITECTURES
from ..nn import (ConsistencyReport, QuantizedWeights,
                  calibrate_quantization, decision_consistency, no_grad)
from ..obs import CallbackList
from ..perf import TokenizationCache, ensure_token_cache
from ..pretraining import PretrainedModel, ZooSettings, get_pretrained
from ..resilience import MatchOutcome, ResilienceConfig
from .engine import MatchEngine
from .finetune import FineTuneConfig, FineTuneResult, fine_tune
from .metrics import MatchingMetrics
from .serializer import (encode_dataset, iter_bucketed, pair_texts,
                         uniform_cls_index)

__all__ = ["EntityMatcher"]


class EntityMatcher:
    """Fine-tunable transformer entity matcher.

    Parameters
    ----------
    arch:
        One of ``bert``, ``roberta``, ``distilbert``, ``xlnet``.
    pretrained:
        An already-loaded :class:`PretrainedModel`; if omitted, the model
        zoo provides (and caches) one.
    seed:
        Controls pre-training lookup and fine-tuning shuffling/dropout.
    """

    def __init__(self, arch: str = "roberta",
                 pretrained: PretrainedModel | None = None,
                 seed: int = 0,
                 zoo_settings: ZooSettings | None = None,
                 zoo_dir=None,
                 finetune_config: FineTuneConfig | None = None):
        if arch not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {arch!r}; "
                             f"expected one of {ARCHITECTURES}")
        self.arch = arch
        self.seed = seed
        self.finetune_config = finetune_config or FineTuneConfig()
        self._pretrained = pretrained
        self._zoo_settings = zoo_settings
        self._zoo_dir = zoo_dir
        self._result: FineTuneResult | None = None
        self._schema: list[str] | None = None
        self._text_attributes: list[str] | None = None
        self._quantized: QuantizedWeights | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def pretrained(self) -> PretrainedModel:
        if self._pretrained is None:
            self._pretrained = get_pretrained(
                self.arch, seed=self.seed, settings=self._zoo_settings,
                zoo_dir=self._zoo_dir)
        return self._pretrained

    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    def fit(self, train: EMDataset, test: EMDataset | None = None,
            log=None, callbacks=None,
            resilience: ResilienceConfig | None = None) -> FineTuneResult:
        """Fine-tune on ``train``; track per-epoch F1 on ``test`` if given
        (otherwise on a slice of the training data).

        ``callbacks`` takes :class:`repro.obs.Callback` instances; ``log``
        is the legacy print hook (still supported).  ``resilience`` opts
        into checkpoint/resume and divergence rollback (see
        :class:`repro.resilience.ResilienceConfig`).
        """
        eval_set = test if test is not None else train[: max(len(train) // 5, 1)]
        self._schema = list(train.schema)
        self._text_attributes = train.text_attributes
        self._result = fine_tune(self.pretrained, train, eval_set,
                                 config=self.finetune_config,
                                 seed=self.seed, log=log,
                                 callbacks=callbacks,
                                 resilience=resilience)
        return self._result

    # -- inference --------------------------------------------------------------

    def _require_fitted(self) -> FineTuneResult:
        if self._result is None:
            raise RuntimeError("call fit() before predicting")
        return self._result

    def ensure_token_cache(self, maxsize: int = 4096) -> TokenizationCache:
        """Attach (once) and return this matcher's tokenization cache.

        The cache lives on the tokenizer instance, so repeated records
        across ``predict``/``match_many`` calls — the dominant shape of
        EM candidate sets — hit instead of re-tokenizing.  Hit/miss
        counters land in ``repro.obs`` under ``perf.token_cache.*``.
        """
        return ensure_token_cache(self.pretrained.tokenizer,
                                  maxsize=maxsize)

    def predict(self, dataset: EMDataset,
                batch_size: int = 64) -> np.ndarray:
        """Binary match predictions for every pair of ``dataset``.

        Batches are length-bucketed (see
        :func:`repro.matching.serializer.iter_bucketed`): sequences run
        sorted by real token count and right-padded batches are trimmed
        to their own longest member, so the cost of a batch tracks its
        content, not the global ``max_length``.
        """
        result = self._require_fitted()
        self.ensure_token_cache()
        encoded = encode_dataset(dataset, self.pretrained.tokenizer,
                                 result.max_length)
        result.classifier.eval()
        predictions = np.zeros(len(encoded), dtype=np.int64)
        with no_grad():
            for indices, batch in iter_bucketed(encoded, batch_size):
                logits = result.classifier(
                    batch.input_ids, segment_ids=batch.segment_ids,
                    pad_mask=batch.pad_masks,
                    cls_index=uniform_cls_index(batch.cls_indices))
                predictions[indices] = logits.numpy().argmax(axis=-1)
        return predictions

    def evaluate(self, dataset: EMDataset) -> MatchingMetrics:
        """Precision/recall/F1 on a labeled dataset."""
        from .metrics import evaluate_predictions
        predictions = self.predict(dataset)
        return evaluate_predictions(np.asarray(dataset.labels()),
                                    predictions)

    def match_probability(self, entity_a: dict | Record,
                          entity_b: dict | Record) -> float:
        """Probability that two records refer to the same entity."""
        result = self._require_fitted()
        record_a = entity_a if isinstance(entity_a, Record) else Record(dict(entity_a))
        record_b = entity_b if isinstance(entity_b, Record) else Record(dict(entity_b))
        schema = self._schema or record_a.attributes()
        attributes = self._text_attributes or schema
        pair = EntityPair(record_a, record_b, 0)
        text_a, text_b = pair_texts(pair, attributes)
        enc = self.pretrained.tokenizer.encode_pair(
            text_a, text_b, max_length=result.max_length)
        result.classifier.eval()
        with no_grad():
            probs = result.classifier.predict_proba(
                enc.input_ids[None, :], segment_ids=enc.segment_ids[None, :],
                pad_mask=enc.pad_mask[None, :], cls_index=enc.cls_index)
        return float(probs[0, 1])

    def match(self, entity_a: dict | Record, entity_b: dict | Record,
              threshold: float = 0.5) -> bool:
        """Binary match decision for a single record pair."""
        return self.match_probability(entity_a, entity_b) >= threshold

    def _pair_texts(self, entity_a: dict | Record,
                    entity_b: dict | Record) -> tuple[str, str]:
        record_a = entity_a if isinstance(entity_a, Record) \
            else Record(dict(entity_a))
        record_b = entity_b if isinstance(entity_b, Record) \
            else Record(dict(entity_b))
        schema = self._schema or record_a.attributes()
        attributes = self._text_attributes or schema
        return pair_texts(EntityPair(record_a, record_b, 0), attributes)

    def match_many(self, pairs, threshold: float = 0.5,
                   fallback: bool = True,
                   callbacks=None, fast: bool | None = None,
                   batch_size: int = 64,
                   quantized: bool = False) -> list[MatchOutcome]:
        """Match a batch of ``(entity_a, entity_b)`` pairs, isolating
        per-pair failures.

        A pair whose transformer path raises does not abort the batch:
        with ``fallback=True`` (the default) it is answered by the
        classical-similarity scorer and returned with ``degraded=True``
        and the failure message in ``error``; with ``fallback=False`` it
        comes back as a non-match with ``probability=0.0``.  Degraded
        pairs surface as ``recovery`` telemetry events through
        ``callbacks``.

        ``fast`` selects the length-bucketed batched engine (tokenize
        once through the LRU cache, forward in per-bucket-padded batches
        of ``batch_size``); ``fast=False`` forces the serial per-pair
        path.  The default (None) uses the fast engine unless
        ``match_probability`` has been overridden on this *instance*
        (the scoring hook the serial path honors).  Isolation semantics
        are identical on both paths: an encode failure degrades that
        pair immediately; a batch forward failure retries each member
        individually before degrading the ones that still fail.

        ``quantized=True`` routes the fast engine through the calibrated
        int8 kernels (requires a prior :meth:`quantize` /
        :meth:`load_quantized`; incompatible with ``fast=False``).
        """
        self._require_fitted()
        if fast is None:
            fast = "match_probability" not in self.__dict__
        if quantized and not fast:
            raise ValueError("quantized matching requires the fast "
                             "engine (fast=False was forced)")
        cb = CallbackList.resolve(callbacks, None)
        pairs = list(pairs)
        if not fast:
            return self._match_many_serial(pairs, threshold, fallback, cb)
        return self._match_many_fast(pairs, threshold, fallback, cb,
                                     batch_size, quantized=quantized)

    def _match_many_serial(self, pairs, threshold: float, fallback: bool,
                           cb) -> list[MatchOutcome]:
        engine = self.engine()
        outcomes: list[MatchOutcome] = []
        for index, (entity_a, entity_b) in enumerate(pairs):
            try:
                probability = self.match_probability(entity_a, entity_b)
                outcomes.append(MatchOutcome(
                    index=index, probability=probability,
                    matched=probability >= threshold))
                continue
            except Exception as exc:  # noqa: BLE001 — isolation point
                error = f"{type(exc).__name__}: {exc}"
            outcomes.append(engine.degraded_outcome(
                index, entity_a, entity_b, error, threshold, fallback, cb))
        return outcomes

    def engine(self, quantized: bool = False) -> MatchEngine:
        """The bucketed batch-scoring engine for this fitted matcher.

        This is the exact implementation behind ``match_many``'s fast
        path; :class:`repro.serve.MatchService` drives the same engine
        so served probabilities are bit-identical to ``match_many``.
        ``quantized=True`` binds the calibrated int8 artifact (see
        :meth:`quantize`) so forwards take the int8 kernels.
        """
        result = self._require_fitted()
        self.ensure_token_cache()
        overlay = None
        if quantized:
            if self._quantized is None:
                raise RuntimeError(
                    "no quantized weights: call quantize() or "
                    "load_quantized() first")
            overlay = self._quantized.overlay_for(result.classifier)
        return MatchEngine(self._pair_texts, self.pretrained.tokenizer,
                           result.classifier, result.max_length,
                           quantized=overlay)

    def _match_many_fast(self, pairs, threshold: float, fallback: bool,
                         cb, batch_size: int,
                         quantized: bool = False) -> list[MatchOutcome]:
        """Bucketed batch engine behind :meth:`match_many`."""
        return self.engine(quantized=quantized).score_pairs(
            pairs, threshold=threshold, fallback=fallback, cb=cb,
            batch_size=batch_size)

    # -- quantization --------------------------------------------------------

    @property
    def quantized_weights(self) -> QuantizedWeights | None:
        """The calibrated int8 artifact, once built or loaded."""
        return self._quantized

    def quantize(self, calibration_pairs,
                 batch_size: int = 64) -> QuantizedWeights:
        """Calibrate int8 per-channel quantization on representative pairs.

        Sweeps ``calibration_pairs`` through the fused path under the
        activation recorder, quantizes every weight the sweep touched
        (:func:`repro.nn.calibrate_quantization`), stores the artifact
        on this matcher, and returns it.  Engage it with
        ``engine(quantized=True)`` / ``match_many(quantized=True)``;
        gate acceptance with :meth:`quantization_consistency` on pairs
        held out from calibration.
        """
        result = self._require_fitted()
        calibration_pairs = list(calibration_pairs)
        if not calibration_pairs:
            raise ValueError("quantize() needs calibration pairs")
        engine = self.engine()

        def sweep() -> None:
            engine.score_pairs(calibration_pairs, fallback=False,
                               batch_size=batch_size)

        self._quantized = calibrate_quantization(
            result.classifier, sweep,
            metadata={"arch": self.arch,
                      "calibration_pairs": len(calibration_pairs),
                      "max_length": result.max_length})
        return self._quantized

    def load_quantized(self, path) -> QuantizedWeights:
        """Load a saved :class:`repro.nn.QuantizedWeights` artifact."""
        self._require_fitted()
        self._quantized = QuantizedWeights.load(path)
        return self._quantized

    def quantization_consistency(self, holdout_pairs,
                                 threshold: float = 0.5,
                                 batch_size: int = 64) -> ConsistencyReport:
        """Decision-consistency acceptance gate on held-out pairs.

        Scores ``holdout_pairs`` (pairs *not* used for calibration)
        through the float and int8 engines and compares decisions; the
        artifact should only ship when the returned report
        :meth:`~repro.nn.ConsistencyReport.passed` at the configured
        floor.
        """
        holdout_pairs = list(holdout_pairs)
        reference = self.engine().score_pairs(
            holdout_pairs, threshold=threshold, fallback=False,
            batch_size=batch_size)
        quantized = self.engine(quantized=True).score_pairs(
            holdout_pairs, threshold=threshold, fallback=False,
            batch_size=batch_size)
        return decision_consistency(reference, quantized)
