"""Transformer-based entity matching: the paper's core contribution."""

from .active import (ActiveLearningConfig, ActiveLearningResult,
                     active_learning_loop, uncertainty_sampling)
from .api import EntityMatcher
from .cascade import (CascadeBand, CascadeEngine, build_cascade,
                      calibrate_band)
from .engine import MatchEngine
from .finetune import (EpochRecord, FineTuneConfig, FineTuneResult,
                       evaluate_classifier, fine_tune)
from .metrics import (MatchingMetrics, confusion_matrix,
                      evaluate_predictions, f1_score)
from .serializer import (EncodedPairs, choose_max_length, encode_dataset,
                         iter_bucketed, pair_texts, uniform_cls_index)

__all__ = [
    "EntityMatcher", "MatchEngine",
    "CascadeEngine", "CascadeBand", "calibrate_band", "build_cascade",
    "active_learning_loop", "ActiveLearningConfig",
    "ActiveLearningResult", "uncertainty_sampling",
    "fine_tune", "FineTuneConfig", "FineTuneResult", "EpochRecord",
    "evaluate_classifier",
    "MatchingMetrics", "evaluate_predictions", "f1_score",
    "confusion_matrix",
    "pair_texts", "choose_max_length", "encode_dataset", "EncodedPairs",
    "uniform_cls_index", "iter_bucketed",
]
