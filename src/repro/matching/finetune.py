"""Fine-tuning a pre-trained transformer for entity matching.

Implements the paper's protocol (§5.2.2): Adam with a linear learning-rate
schedule, the CLS hidden state into a fresh classification head, and
per-epoch evaluation on the test split — including the *zero-shot*
(epoch 0, no fine-tuning) point used in the convergence analysis.

Instrumentation: the loop reports through the :mod:`repro.obs` callback
protocol — ``train_begin``, per-step ``step`` (loss / lr / grad-norm /
examples-per-sec), per-epoch ``eval`` + ``epoch_end``, and ``train_end``
— and wraps epochs/evals in tracing spans.  The legacy ``log=`` print
hook still works (it is shimmed onto a ``LoggingCallback``); with no
callbacks and no log, the loop skips all payload construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data import EMDataset
from ..models import SequenceClassifier
from ..nn import (Adam, LinearSchedule, Module, clip_grad_norm,
                  cross_entropy, no_grad)
from ..obs import CallbackList, trace
from ..pretraining import PretrainedModel
from ..utils import child_rng
from .metrics import MatchingMetrics, evaluate_predictions
from .serializer import EncodedPairs, choose_max_length, encode_dataset

__all__ = ["FineTuneConfig", "EpochRecord", "FineTuneResult", "fine_tune",
           "evaluate_classifier"]


@dataclass
class FineTuneConfig:
    """Knobs of one fine-tuning run."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 5e-4
    warmup_fraction: float = 0.1
    max_length_cap: int = 64
    grad_clip: float = 1.0
    eval_batch_size: int = 64
    # EM candidate sets are heavily imbalanced (10-25 % matches); weighting
    # the loss by inverse class frequency removes the all-negative
    # attractor that otherwise dominates early fine-tuning at small scale.
    balance_classes: bool = True


@dataclass
class EpochRecord:
    """Metrics after one epoch (epoch 0 = zero-shot, before training)."""

    epoch: int
    train_loss: float
    test_metrics: MatchingMetrics
    seconds: float

    @property
    def f1(self) -> float:
        return self.test_metrics.f1


@dataclass
class FineTuneResult:
    classifier: SequenceClassifier
    history: list[EpochRecord] = field(default_factory=list)
    max_length: int = 0

    def _require_history(self) -> list[EpochRecord]:
        if not self.history:
            raise ValueError(
                "FineTuneResult.history is empty — the run recorded no "
                "epochs, so best_f1/final_f1 are undefined")
        return self.history

    @property
    def best_f1(self) -> float:
        return max(r.f1 for r in self._require_history())

    @property
    def final_f1(self) -> float:
        return self._require_history()[-1].f1

    def f1_curve(self) -> list[float]:
        """F1 per epoch, starting with the zero-shot point."""
        return [r.f1 for r in self.history]

    def epoch_seconds(self) -> list[float]:
        return [r.seconds for r in self.history if r.epoch > 0]


def _predict(classifier: SequenceClassifier, encoded: EncodedPairs,
             batch_size: int) -> np.ndarray:
    predictions = []
    with no_grad():
        for start in range(0, len(encoded), batch_size):
            batch = encoded.batch(np.arange(
                start, min(start + batch_size, len(encoded))))
            logits = classifier(
                batch.input_ids, segment_ids=batch.segment_ids,
                pad_mask=batch.pad_masks,
                cls_index=int(batch.cls_indices[0]))
            predictions.append(logits.numpy().argmax(axis=-1))
    return np.concatenate(predictions) if predictions else np.array([])


def evaluate_classifier(classifier: SequenceClassifier,
                        encoded: EncodedPairs,
                        batch_size: int = 64) -> MatchingMetrics:
    """Precision/recall/F1 of a classifier on encoded pairs."""
    classifier.eval()
    predictions = _predict(classifier, encoded, batch_size)
    return evaluate_predictions(encoded.labels, predictions)


def _eval_info(epoch: int, metrics: MatchingMetrics, **extra) -> dict:
    info = {"phase": "finetune", "epoch": epoch, "f1": metrics.f1,
            "precision": metrics.precision, "recall": metrics.recall}
    info.update(extra)
    return info


def fine_tune(pretrained: PretrainedModel, train: EMDataset,
              test: EMDataset, config: FineTuneConfig | None = None,
              seed: int = 0, log=None, callbacks=None) -> FineTuneResult:
    """Fine-tune ``pretrained`` on ``train``; evaluate on ``test`` after
    every epoch (and once before training = zero-shot).

    ``callbacks`` takes :class:`repro.obs.Callback` instances (or a
    sequence of them); ``log`` is the legacy print hook, kept as a shim.
    """
    config = config or FineTuneConfig()
    cb = CallbackList.resolve(callbacks, log)
    rng = child_rng(seed, "finetune", pretrained.arch, train.name)
    # Fine-tune a *copy* of the pre-trained weights so the cached zoo
    # checkpoint can be reused by other runs.
    from ..models import build_backbone
    with trace("setup", arch=pretrained.arch, dataset=train.name):
        backbone = build_backbone(pretrained.config, rng)
        backbone.special_token_ids = pretrained.tokenizer.vocab.special_ids()
        backbone.load_state_dict(pretrained.backbone.state_dict())
        classifier = SequenceClassifier(backbone, pretrained.config, rng)
        max_length = choose_max_length(train, pretrained.tokenizer,
                                       cap=min(config.max_length_cap,
                                               pretrained.config.max_position))
        encoded_train = encode_dataset(train, pretrained.tokenizer,
                                       max_length)
        encoded_test = encode_dataset(test, pretrained.tokenizer,
                                      max_length)

    class_weights = None
    if config.balance_classes:
        positives = max(int(encoded_train.labels.sum()), 1)
        negatives = max(len(encoded_train) - positives, 1)
        class_weights = np.array([1.0, negatives / positives])

    parameters = classifier.parameters()
    optimizer = Adam(parameters, lr=config.learning_rate)
    steps_per_epoch = max(len(encoded_train) // config.batch_size, 1)
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearSchedule(
        optimizer, config.learning_rate, total_steps=total_steps,
        warmup_steps=max(int(total_steps * config.warmup_fraction), 1))

    if cb:
        cb.on_train_begin({
            "phase": "finetune", "arch": pretrained.arch,
            "dataset": train.name, "epochs": config.epochs,
            "batch_size": config.batch_size,
            "steps_per_epoch": steps_per_epoch,
            "train_size": len(encoded_train),
            "test_size": len(encoded_test), "max_length": max_length,
            "learning_rate": config.learning_rate})

    history: list[EpochRecord] = []
    with trace("eval", epoch=0):
        zero_shot = evaluate_classifier(classifier, encoded_test,
                                        config.eval_batch_size)
    history.append(EpochRecord(epoch=0, train_loss=float("nan"),
                               test_metrics=zero_shot, seconds=0.0))
    if cb:
        cb.on_eval(_eval_info(0, zero_shot, zero_shot=True))

    n = len(encoded_train)
    global_step = 0
    for epoch in range(1, config.epochs + 1):
        classifier.train()
        losses = []
        with trace("epoch", epoch=epoch) as epoch_span:
            order = rng.permutation(n)
            starts = list(range(0, n - config.batch_size + 1,
                                config.batch_size)) or [0]
            for start in starts:
                step_t0 = time.perf_counter() if cb else 0.0
                idx = order[start:start + config.batch_size]
                batch = encoded_train.batch(idx)
                optimizer.zero_grad()
                logits = classifier(
                    batch.input_ids, segment_ids=batch.segment_ids,
                    pad_mask=batch.pad_masks,
                    cls_index=int(batch.cls_indices[0]))
                loss = cross_entropy(logits, batch.labels,
                                     class_weights=class_weights)
                loss.backward()
                grad_norm = clip_grad_norm(parameters, config.grad_clip)
                lr = optimizer.lr
                optimizer.step()
                schedule.step()
                losses.append(float(loss.data))
                if cb:
                    seconds = time.perf_counter() - step_t0
                    cb.on_step({
                        "phase": "finetune", "step": global_step,
                        "epoch": epoch, "loss": losses[-1], "lr": lr,
                        "grad_norm": grad_norm, "seconds": seconds,
                        "examples_per_sec": len(idx) / max(seconds, 1e-9)})
                global_step += 1
        with trace("eval", epoch=epoch):
            metrics = evaluate_classifier(classifier, encoded_test,
                                          config.eval_batch_size)
        record = EpochRecord(epoch=epoch,
                             train_loss=float(np.mean(losses)),
                             test_metrics=metrics,
                             seconds=epoch_span.wall)
        history.append(record)
        if cb:
            cb.on_eval(_eval_info(epoch, metrics))
            cb.on_epoch_end({
                "phase": "finetune", "epoch": epoch,
                "train_loss": record.train_loss,
                "seconds": record.seconds, "f1": metrics.f1})

    result = FineTuneResult(classifier=classifier, history=history,
                            max_length=max_length)
    if cb:
        cb.on_train_end({"phase": "finetune", "epochs": config.epochs,
                         "best_f1": result.best_f1,
                         "final_f1": result.final_f1})
    return result
