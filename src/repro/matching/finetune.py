"""Fine-tuning a pre-trained transformer for entity matching.

Implements the paper's protocol (§5.2.2): Adam with a linear learning-rate
schedule, the CLS hidden state into a fresh classification head, and
per-epoch evaluation on the test split — including the *zero-shot*
(epoch 0, no fine-tuning) point used in the convergence analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data import EMDataset
from ..models import SequenceClassifier
from ..nn import (Adam, LinearSchedule, Module, clip_grad_norm,
                  cross_entropy, no_grad)
from ..pretraining import PretrainedModel
from ..utils import Timer, child_rng
from .metrics import MatchingMetrics, evaluate_predictions
from .serializer import EncodedPairs, choose_max_length, encode_dataset

__all__ = ["FineTuneConfig", "EpochRecord", "FineTuneResult", "fine_tune",
           "evaluate_classifier"]


@dataclass
class FineTuneConfig:
    """Knobs of one fine-tuning run."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 5e-4
    warmup_fraction: float = 0.1
    max_length_cap: int = 64
    grad_clip: float = 1.0
    eval_batch_size: int = 64
    # EM candidate sets are heavily imbalanced (10-25 % matches); weighting
    # the loss by inverse class frequency removes the all-negative
    # attractor that otherwise dominates early fine-tuning at small scale.
    balance_classes: bool = True


@dataclass
class EpochRecord:
    """Metrics after one epoch (epoch 0 = zero-shot, before training)."""

    epoch: int
    train_loss: float
    test_metrics: MatchingMetrics
    seconds: float

    @property
    def f1(self) -> float:
        return self.test_metrics.f1


@dataclass
class FineTuneResult:
    classifier: SequenceClassifier
    history: list[EpochRecord] = field(default_factory=list)
    max_length: int = 0

    @property
    def best_f1(self) -> float:
        return max(r.f1 for r in self.history)

    @property
    def final_f1(self) -> float:
        return self.history[-1].f1

    def f1_curve(self) -> list[float]:
        """F1 per epoch, starting with the zero-shot point."""
        return [r.f1 for r in self.history]

    def epoch_seconds(self) -> list[float]:
        return [r.seconds for r in self.history if r.epoch > 0]


def _predict(classifier: SequenceClassifier, encoded: EncodedPairs,
             batch_size: int) -> np.ndarray:
    predictions = []
    with no_grad():
        for start in range(0, len(encoded), batch_size):
            batch = encoded.batch(np.arange(
                start, min(start + batch_size, len(encoded))))
            logits = classifier(
                batch.input_ids, segment_ids=batch.segment_ids,
                pad_mask=batch.pad_masks,
                cls_index=int(batch.cls_indices[0]))
            predictions.append(logits.numpy().argmax(axis=-1))
    return np.concatenate(predictions) if predictions else np.array([])


def evaluate_classifier(classifier: SequenceClassifier,
                        encoded: EncodedPairs,
                        batch_size: int = 64) -> MatchingMetrics:
    """Precision/recall/F1 of a classifier on encoded pairs."""
    classifier.eval()
    predictions = _predict(classifier, encoded, batch_size)
    return evaluate_predictions(encoded.labels, predictions)


def fine_tune(pretrained: PretrainedModel, train: EMDataset,
              test: EMDataset, config: FineTuneConfig | None = None,
              seed: int = 0, log=None) -> FineTuneResult:
    """Fine-tune ``pretrained`` on ``train``; evaluate on ``test`` after
    every epoch (and once before training = zero-shot)."""
    config = config or FineTuneConfig()
    rng = child_rng(seed, "finetune", pretrained.arch, train.name)
    # Fine-tune a *copy* of the pre-trained weights so the cached zoo
    # checkpoint can be reused by other runs.
    from ..models import build_backbone
    backbone = build_backbone(pretrained.config, rng)
    backbone.special_token_ids = pretrained.tokenizer.vocab.special_ids()
    backbone.load_state_dict(pretrained.backbone.state_dict())
    classifier = SequenceClassifier(backbone, pretrained.config, rng)
    max_length = choose_max_length(train, pretrained.tokenizer,
                                   cap=min(config.max_length_cap,
                                           pretrained.config.max_position))
    encoded_train = encode_dataset(train, pretrained.tokenizer, max_length)
    encoded_test = encode_dataset(test, pretrained.tokenizer, max_length)

    class_weights = None
    if config.balance_classes:
        positives = max(int(encoded_train.labels.sum()), 1)
        negatives = max(len(encoded_train) - positives, 1)
        class_weights = np.array([1.0, negatives / positives])

    parameters = classifier.parameters()
    optimizer = Adam(parameters, lr=config.learning_rate)
    steps_per_epoch = max(len(encoded_train) // config.batch_size, 1)
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearSchedule(
        optimizer, config.learning_rate, total_steps=total_steps,
        warmup_steps=max(int(total_steps * config.warmup_fraction), 1))

    history: list[EpochRecord] = []
    zero_shot = evaluate_classifier(classifier, encoded_test,
                                    config.eval_batch_size)
    history.append(EpochRecord(epoch=0, train_loss=float("nan"),
                               test_metrics=zero_shot, seconds=0.0))
    if log is not None:
        log(f"epoch 0 (zero-shot) F1 {zero_shot.f1 * 100:.1f}")

    n = len(encoded_train)
    for epoch in range(1, config.epochs + 1):
        classifier.train()
        losses = []
        with Timer() as timer:
            order = rng.permutation(n)
            starts = list(range(0, n - config.batch_size + 1,
                                config.batch_size)) or [0]
            for start in starts:
                idx = order[start:start + config.batch_size]
                batch = encoded_train.batch(idx)
                optimizer.zero_grad()
                logits = classifier(
                    batch.input_ids, segment_ids=batch.segment_ids,
                    pad_mask=batch.pad_masks,
                    cls_index=int(batch.cls_indices[0]))
                loss = cross_entropy(logits, batch.labels,
                                     class_weights=class_weights)
                loss.backward()
                clip_grad_norm(parameters, config.grad_clip)
                optimizer.step()
                schedule.step()
                losses.append(float(loss.data))
        metrics = evaluate_classifier(classifier, encoded_test,
                                      config.eval_batch_size)
        record = EpochRecord(epoch=epoch,
                             train_loss=float(np.mean(losses)),
                             test_metrics=metrics, seconds=timer.elapsed)
        history.append(record)
        if log is not None:
            log(f"epoch {epoch} loss {record.train_loss:.3f} "
                f"F1 {metrics.f1 * 100:.1f} ({timer.elapsed:.1f}s)")

    return FineTuneResult(classifier=classifier, history=history,
                          max_length=max_length)
