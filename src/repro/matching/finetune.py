"""Fine-tuning a pre-trained transformer for entity matching.

Implements the paper's protocol (§5.2.2): Adam with a linear learning-rate
schedule, the CLS hidden state into a fresh classification head, and
per-epoch evaluation on the test split — including the *zero-shot*
(epoch 0, no fine-tuning) point used in the convergence analysis.

Instrumentation: the loop reports through the :mod:`repro.obs` callback
protocol — ``train_begin``, per-step ``step`` (loss / lr / grad-norm /
examples-per-sec), per-epoch ``eval`` + ``epoch_end``, and ``train_end``
— and wraps epochs/evals in tracing spans.  The legacy ``log=`` print
hook still works (it is shimmed onto a ``LoggingCallback``); with no
callbacks and no log, the loop skips all payload construction.

Resilience: pass ``resilience=ResilienceConfig(...)`` to snapshot the
*complete* training state — model, optimizer, LR schedule, RNG stream,
shuffle order, loop counters, epoch history — periodically and at every
epoch boundary, to resume an interrupted run **bit-identically** to the
uninterrupted one, and to guard each step against divergence (NaN/Inf
or loss spikes) with rollback to the last good snapshot plus LR backoff.
Checkpoint and recovery activity is reported through ``on_checkpoint``/
``on_recovery`` callbacks (``checkpoint``/``recovery`` telemetry events).
With ``resilience=None`` (the default) none of this machinery is touched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data import EMDataset
from ..models import SequenceClassifier
from ..nn import (Adam, CheckpointError, LinearSchedule, Module,
                  apply_state_dict, clip_grad_norm, cross_entropy, no_grad)
from ..obs import CallbackList, trace
from ..pretraining import PretrainedModel
from ..resilience import (ResilienceConfig, DivergenceGuard,
                          TrainingDiverged, pack_state, unpack_state)
from ..utils import child_rng, get_rng_state, set_rng_state
from .metrics import MatchingMetrics, evaluate_predictions
from ..perf import ensure_token_cache
from .serializer import (EncodedPairs, choose_max_length, encode_dataset,
                         iter_bucketed, uniform_cls_index)

__all__ = ["FineTuneConfig", "EpochRecord", "FineTuneResult", "fine_tune",
           "evaluate_classifier"]


@dataclass
class FineTuneConfig:
    """Knobs of one fine-tuning run."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 5e-4
    warmup_fraction: float = 0.1
    max_length_cap: int = 64
    grad_clip: float = 1.0
    eval_batch_size: int = 64
    # EM candidate sets are heavily imbalanced (10-25 % matches); weighting
    # the loss by inverse class frequency removes the all-negative
    # attractor that otherwise dominates early fine-tuning at small scale.
    balance_classes: bool = True


@dataclass
class EpochRecord:
    """Metrics after one epoch (epoch 0 = zero-shot, before training)."""

    epoch: int
    train_loss: float
    test_metrics: MatchingMetrics
    seconds: float

    @property
    def f1(self) -> float:
        return self.test_metrics.f1


@dataclass
class FineTuneResult:
    classifier: SequenceClassifier
    history: list[EpochRecord] = field(default_factory=list)
    max_length: int = 0

    def _require_history(self) -> list[EpochRecord]:
        if not self.history:
            raise ValueError(
                "FineTuneResult.history is empty — the run recorded no "
                "epochs, so best_f1/final_f1 are undefined")
        return self.history

    @property
    def best_f1(self) -> float:
        return max(r.f1 for r in self._require_history())

    @property
    def final_f1(self) -> float:
        return self._require_history()[-1].f1

    def f1_curve(self) -> list[float]:
        """F1 per epoch, starting with the zero-shot point."""
        return [r.f1 for r in self.history]

    def epoch_seconds(self) -> list[float]:
        return [r.seconds for r in self.history if r.epoch > 0]


def _predict(classifier: SequenceClassifier, encoded: EncodedPairs,
             batch_size: int) -> np.ndarray:
    # Length-bucketed evaluation: batches run sorted by real token count
    # with right-padded batches trimmed to their own max (iter_bucketed);
    # results are scattered back into input order.
    predictions = np.zeros(len(encoded), dtype=np.int64)
    with no_grad():
        for indices, batch in iter_bucketed(encoded, batch_size):
            logits = classifier(
                batch.input_ids, segment_ids=batch.segment_ids,
                pad_mask=batch.pad_masks,
                cls_index=uniform_cls_index(batch.cls_indices))
            predictions[indices] = logits.numpy().argmax(axis=-1)
    return predictions


def evaluate_classifier(classifier: SequenceClassifier,
                        encoded: EncodedPairs,
                        batch_size: int = 64) -> MatchingMetrics:
    """Precision/recall/F1 of a classifier on encoded pairs."""
    classifier.eval()
    predictions = _predict(classifier, encoded, batch_size)
    return evaluate_predictions(encoded.labels, predictions)


def _eval_info(epoch: int, metrics: MatchingMetrics, **extra) -> dict:
    info = {"phase": "finetune", "epoch": epoch, "f1": metrics.f1,
            "precision": metrics.precision, "recall": metrics.recall}
    info.update(extra)
    return info


def _record_to_dict(record: EpochRecord) -> dict:
    m = record.test_metrics
    return {"epoch": record.epoch, "train_loss": record.train_loss,
            "seconds": record.seconds,
            "metrics": [m.precision, m.recall, m.f1, m.true_positives,
                        m.false_positives, m.false_negatives,
                        m.true_negatives]}


def _record_from_dict(payload: dict) -> EpochRecord:
    p, r, f1, tp, fp, fn, tn = payload["metrics"]
    metrics = MatchingMetrics(
        precision=float(p), recall=float(r), f1=float(f1),
        true_positives=int(tp), false_positives=int(fp),
        false_negatives=int(fn), true_negatives=int(tn))
    return EpochRecord(epoch=int(payload["epoch"]),
                       train_loss=float(payload["train_loss"]),
                       test_metrics=metrics,
                       seconds=float(payload["seconds"]))


class _ResumeMismatch(CheckpointError):
    """A snapshot was produced by an incompatible run configuration."""


def _check_resume_compatible(meta: dict, expected: dict, path) -> None:
    if meta.get("kind") != "finetune":
        raise _ResumeMismatch(
            f"snapshot {path} is a {meta.get('kind')!r} checkpoint, not a "
            f"fine-tune one", path=path)
    diffs = [f"{key}: snapshot={meta.get(key)!r} run={value!r}"
             for key, value in expected.items() if meta.get(key) != value]
    if diffs:
        raise _ResumeMismatch(
            f"snapshot {path} belongs to a different run — "
            + "; ".join(diffs), path=path, keys=sorted(expected))


def fine_tune(pretrained: PretrainedModel, train: EMDataset,
              test: EMDataset, config: FineTuneConfig | None = None,
              seed: int = 0, log=None, callbacks=None,
              resilience: ResilienceConfig | None = None) -> FineTuneResult:
    """Fine-tune ``pretrained`` on ``train``; evaluate on ``test`` after
    every epoch (and once before training = zero-shot).

    ``callbacks`` takes :class:`repro.obs.Callback` instances (or a
    sequence of them); ``log`` is the legacy print hook, kept as a shim.
    ``resilience`` opts into checkpoint/resume and divergence rollback
    (see :class:`repro.resilience.ResilienceConfig`).
    """
    config = config or FineTuneConfig()
    cb = CallbackList.resolve(callbacks, log)
    rng = child_rng(seed, "finetune", pretrained.arch, train.name)
    # Fine-tune a *copy* of the pre-trained weights so the cached zoo
    # checkpoint can be reused by other runs.
    from ..models import build_backbone
    with trace("setup", arch=pretrained.arch, dataset=train.name):
        backbone = build_backbone(pretrained.config, rng)
        backbone.special_token_ids = pretrained.tokenizer.vocab.special_ids()
        backbone.load_state_dict(pretrained.backbone.state_dict())
        classifier = SequenceClassifier(backbone, pretrained.config, rng)
        # Memoize text -> ids across choose_max_length + both encodes
        # (every record is tokenized several times otherwise).
        ensure_token_cache(pretrained.tokenizer)
        max_length = choose_max_length(train, pretrained.tokenizer,
                                       cap=min(config.max_length_cap,
                                               pretrained.config.max_position))
        encoded_train = encode_dataset(train, pretrained.tokenizer,
                                       max_length)
        encoded_test = encode_dataset(test, pretrained.tokenizer,
                                      max_length)

    class_weights = None
    if config.balance_classes:
        positives = max(int(encoded_train.labels.sum()), 1)
        negatives = max(len(encoded_train) - positives, 1)
        class_weights = np.array([1.0, negatives / positives])

    parameters = classifier.parameters()
    optimizer = Adam(parameters, lr=config.learning_rate)
    n = len(encoded_train)
    # Ceiling division: the final partial batch trains too (a plain
    # floor used to silently drop up to batch_size - 1 examples/epoch).
    steps_per_epoch = max(-(-n // config.batch_size), 1)
    total_steps = steps_per_epoch * config.epochs
    schedule = LinearSchedule(
        optimizer, config.learning_rate, total_steps=total_steps,
        warmup_steps=max(int(total_steps * config.warmup_fraction), 1))

    manager = guard = chaos = None
    checkpoint_every = 0
    if resilience is not None:
        manager = resilience.manager()
        checkpoint_every = max(int(resilience.checkpoint_every), 0)
        if resilience.guard:
            guard = DivergenceGuard(resilience.guard_config)
        chaos = resilience.chaos

    # -- loop state (everything a snapshot captures) -------------------------
    epoch = 1               # 1-based; config.epochs + 1 == run complete
    pos = 0                 # next step index within the epoch
    order: np.ndarray | None = None   # this epoch's shuffle (None = pending)
    losses: list[float] = []          # this epoch's per-step losses
    seconds_accum = 0.0               # this epoch's wall time so far
    history: list[EpochRecord] = []
    rollbacks_since_save = 0

    def _snapshot() -> tuple[dict, dict]:
        arrays: dict[str, np.ndarray] = {}
        pack_state(arrays, "model", classifier.state_dict())
        pack_state(arrays, "optim", optimizer.state_dict())
        pack_state(arrays, "sched", schedule.state_dict())
        if order is not None:
            arrays["loop/order"] = np.asarray(order)
        arrays["loop/losses"] = np.asarray(losses)
        meta = {"kind": "finetune", "epoch": epoch, "pos": pos,
                "has_order": order is not None,
                "global_step": (epoch - 1) * steps_per_epoch + pos,
                "epoch_seconds": seconds_accum,
                "rng": get_rng_state(rng),
                "history": [_record_to_dict(r) for r in history],
                "max_length": max_length,
                "arch": pretrained.arch, "dataset": train.name,
                "seed": seed, "epochs": config.epochs,
                "batch_size": config.batch_size,
                "run": (resilience.run_context or {}) if resilience else {}}
        return arrays, meta

    def _save_snapshot(best_metric: float | None = None) -> None:
        nonlocal rollbacks_since_save
        arrays, meta = _snapshot()
        path = manager.save(meta["global_step"], arrays, meta,
                            best_metric=best_metric)
        rollbacks_since_save = 0
        if cb:
            cb.on_checkpoint({"phase": "finetune",
                              "step": meta["global_step"],
                              "epoch": epoch, "path": str(path)})

    def _restore(arrays: dict, meta: dict) -> None:
        nonlocal epoch, pos, order, losses, seconds_accum, history
        apply_state_dict(classifier, unpack_state(arrays, "model"),
                         source="snapshot model state")
        optimizer.load_state_dict(unpack_state(arrays, "optim"))
        schedule.load_state_dict(unpack_state(arrays, "sched"))
        set_rng_state(rng, meta["rng"])
        epoch = int(meta["epoch"])
        pos = int(meta["pos"])
        order = np.asarray(arrays["loop/order"]) if meta["has_order"] \
            else None
        losses = [float(x) for x in np.asarray(arrays["loop/losses"])]
        seconds_accum = float(meta.get("epoch_seconds", 0.0))
        history = [_record_from_dict(p) for p in meta.get("history", [])]

    # -- resume (or fresh start + zero-shot eval) ----------------------------
    resumed = False
    if manager is not None and resilience.resume and manager.has_snapshot():
        arrays, meta, path = manager.load_latest()
        _check_resume_compatible(meta, {
            "arch": pretrained.arch, "dataset": train.name, "seed": seed,
            "epochs": config.epochs, "batch_size": config.batch_size,
        }, path)
        _restore(arrays, meta)
        resumed = True
        if cb:
            if manager.last_skipped:
                cb.on_recovery({
                    "phase": "finetune", "reason": "corrupt_checkpoint",
                    "action": "fell_back_to_earlier_snapshot",
                    "step": int(meta["global_step"]),
                    "skipped": list(manager.last_skipped)})
            cb.on_recovery({
                "phase": "finetune", "reason": "interrupted_run",
                "action": "resume", "step": int(meta["global_step"]),
                "epoch": epoch, "path": str(path)})

    if cb:
        cb.on_train_begin({
            "phase": "finetune", "arch": pretrained.arch,
            "dataset": train.name, "epochs": config.epochs,
            "batch_size": config.batch_size,
            "steps_per_epoch": steps_per_epoch,
            "train_size": len(encoded_train),
            "test_size": len(encoded_test), "max_length": max_length,
            "learning_rate": config.learning_rate, "resumed": resumed})

    if not resumed:
        with trace("eval", epoch=0):
            zero_shot = evaluate_classifier(classifier, encoded_test,
                                            config.eval_batch_size)
        history.append(EpochRecord(epoch=0, train_loss=float("nan"),
                                   test_metrics=zero_shot, seconds=0.0))
        if cb:
            cb.on_eval(_eval_info(0, zero_shot, zero_shot=True))
        if manager is not None:
            _save_snapshot()

    def _rollback(reason: str, at_step: int) -> None:
        nonlocal rollbacks_since_save
        if manager is None or not manager.has_snapshot():
            raise TrainingDiverged(
                f"training diverged at step {at_step} ({reason}) with no "
                f"checkpoint to roll back to — pass a "
                f"ResilienceConfig(checkpoint_dir=...) to enable recovery",
                attempts=guard.attempts)
        guard.record_rollback(at_step, reason, optimizer.lr)
        rollbacks_since_save += 1
        arrays, meta, path = manager.load_latest()
        _restore(arrays, meta)
        # Compound the backoff across rollbacks that share one snapshot:
        # the restored base_lr predates them all.
        backoff = resilience.guard_config.lr_backoff
        schedule.base_lr *= backoff ** rollbacks_since_save
        optimizer.lr = schedule.current_lr()
        if cb:
            cb.on_recovery({
                "phase": "finetune", "reason": reason,
                "action": "rollback", "step": at_step,
                "restored_step": int(meta["global_step"]),
                "rollbacks": guard.rollbacks, "lr": optimizer.lr})

    # -- training ------------------------------------------------------------
    while epoch <= config.epochs:
        classifier.train()
        if order is None:
            order = rng.permutation(n)
            losses = []
            seconds_accum = 0.0
        rolled_back = False
        segment_t0 = time.perf_counter()
        with trace("epoch", epoch=epoch):
            while pos < steps_per_epoch:
                global_step = (epoch - 1) * steps_per_epoch + pos
                step_t0 = time.perf_counter() if cb else 0.0
                idx = order[pos * config.batch_size:
                            (pos + 1) * config.batch_size]
                batch = encoded_train.batch(idx)
                optimizer.zero_grad()
                logits = classifier(
                    batch.input_ids, segment_ids=batch.segment_ids,
                    pad_mask=batch.pad_masks,
                    cls_index=uniform_cls_index(batch.cls_indices))
                loss = cross_entropy(logits, batch.labels,
                                     class_weights=class_weights)
                loss.backward()
                if chaos is not None:
                    chaos.poison_gradients(global_step, parameters)
                grad_norm = clip_grad_norm(parameters, config.grad_clip)
                loss_value = float(loss.data)
                if guard is not None:
                    reason = guard.check(loss_value, grad_norm)
                    if reason is not None:
                        seconds_accum += time.perf_counter() - segment_t0
                        _rollback(reason, global_step)
                        rolled_back = True
                        break
                if chaos is not None:
                    chaos.maybe_crash(global_step)
                lr = optimizer.lr
                optimizer.step()
                schedule.step()
                losses.append(loss_value)
                pos += 1
                if cb:
                    seconds = time.perf_counter() - step_t0
                    cb.on_step({
                        "phase": "finetune", "step": global_step,
                        "epoch": epoch, "loss": loss_value, "lr": lr,
                        "grad_norm": grad_norm, "seconds": seconds,
                        "examples_per_sec": len(idx) / max(seconds, 1e-9)})
                if manager is not None and checkpoint_every \
                        and (global_step + 1) % checkpoint_every == 0 \
                        and pos < steps_per_epoch:
                    seconds_accum += time.perf_counter() - segment_t0
                    segment_t0 = time.perf_counter()
                    _save_snapshot()
        if rolled_back:
            continue
        seconds_accum += time.perf_counter() - segment_t0
        with trace("eval", epoch=epoch):
            metrics = evaluate_classifier(classifier, encoded_test,
                                          config.eval_batch_size)
        record = EpochRecord(epoch=epoch,
                             train_loss=float(np.mean(losses)),
                             test_metrics=metrics,
                             seconds=seconds_accum)
        history.append(record)
        if cb:
            cb.on_eval(_eval_info(epoch, metrics))
            cb.on_epoch_end({
                "phase": "finetune", "epoch": epoch,
                "train_loss": record.train_loss,
                "seconds": record.seconds, "f1": metrics.f1})
        epoch += 1
        pos = 0
        order = None
        losses = []
        seconds_accum = 0.0
        if manager is not None:
            _save_snapshot(best_metric=metrics.f1)

    result = FineTuneResult(classifier=classifier, history=history,
                            max_length=max_length)
    if cb:
        cb.on_train_end({"phase": "finetune", "epochs": config.epochs,
                         "best_f1": result.best_f1,
                         "final_f1": result.final_f1})
    return result
