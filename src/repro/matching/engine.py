"""The bucketed batch-scoring engine shared by ``match_many`` and serving.

:class:`MatchEngine` is the single implementation of the fast matching
path: tokenize each pair once through the LRU cache, forward in
length-bucketed batches under ``no_grad`` (which also activates the
fused no-tape kernels), and isolate per-pair failures — an encode
failure degrades that pair immediately, a batch forward failure retries
each member individually before degrading the ones that still fail.

It exists as its own class (rather than private methods on
:class:`~repro.matching.api.EntityMatcher`) because two callers need
exactly these semantics on exactly the same floats:

* ``EntityMatcher.match_many(fast=True)`` — the single-caller bulk API;
* :class:`repro.serve.MatchService` — the concurrent micro-batching
  service, which must return **bit-identical** probabilities to
  ``match_many`` for the same set of pairs (the serving layer's core
  correctness contract, tested in ``tests/test_serve.py``).

``score_pairs`` accepts two hooks the service relies on:

* ``keys`` — one identifier per pair; outcomes carry it as their
  ``index`` so results can be routed back to the right request even
  when the engine scores an arbitrary drained chunk of a queue;
* ``forward_hook`` — called with the keys of every batch (and every
  single-row retry) before the model forward, so fault injection
  (:meth:`repro.resilience.ChaosMonkey.maybe_fail_forward`) can poison
  specific requests and the tests can prove degradation stays scoped to
  exactly the poisoned ones.
"""

from __future__ import annotations

import time
from contextlib import ExitStack

import numpy as np

from ..nn import no_grad, quantized_inference
from ..nn.fused import count_kernels
from ..obs import default_registry
from ..resilience import MatchOutcome, fallback_probability
from .serializer import EncodedPairs, iter_bucketed, uniform_cls_index

__all__ = ["MatchEngine"]


class MatchEngine:
    """Length-bucketed, failure-isolating batch scorer for record pairs.

    Parameters
    ----------
    pair_texts:
        Callable ``(entity_a, entity_b) -> (text_a, text_b)`` producing
        the serialized entity blobs (schema-aware; usually
        ``EntityMatcher._pair_texts``).
    tokenizer:
        The architecture's subword tokenizer (with its tokenization
        cache attached, if caching is wanted).
    classifier:
        The fine-tuned classification model exposing ``predict_proba``.
    max_length:
        Fixed encoding length chosen at fine-tuning time.
    registry:
        Metrics registry for the ``perf.match.*`` phase gauges
        (defaults to the process-wide registry).
    quantized:
        Optional ``{id(weight array): QuantizedLinear}`` overlay (from
        :meth:`repro.nn.QuantizedWeights.overlay_for`).  When set, the
        forward section — including single-row retries — runs under
        :func:`repro.nn.quantized_inference`, so every fused linear the
        overlay covers takes the int8 path.
    """

    def __init__(self, pair_texts, tokenizer, classifier, max_length: int,
                 registry=None, quantized=None):
        self._pair_texts = pair_texts
        self._tokenizer = tokenizer
        self._classifier = classifier
        self._max_length = max_length
        self._quantized = quantized
        self._registry = registry if registry is not None \
            else default_registry()

    # -- failure path --------------------------------------------------------

    def degraded_outcome(self, key: int, entity_a, entity_b, error: str,
                         threshold: float, fallback: bool,
                         cb=None) -> MatchOutcome:
        """A fallback-scored (or skipped) outcome plus its telemetry."""
        probability = 0.0
        if fallback:
            try:
                text_a, text_b = self._pair_texts(entity_a, entity_b)
                probability = fallback_probability(text_a, text_b)
            except Exception as exc:  # noqa: BLE001
                error += f"; fallback failed too ({exc})"
        if cb:
            cb.on_recovery({
                "phase": "match", "reason": "pair_failure",
                "action": ("similarity_fallback" if fallback
                           else "skipped"),
                "index": key, "error": error})
        return MatchOutcome(
            index=key, probability=probability,
            matched=fallback and probability >= threshold,
            degraded=True, error=error)

    # -- scoring -------------------------------------------------------------

    def score_pairs(self, pairs, threshold: float = 0.5,
                    fallback: bool = True, cb=None, batch_size: int = 64,
                    keys=None, forward_hook=None,
                    stages=None) -> list[MatchOutcome]:
        """Score ``pairs``; one :class:`MatchOutcome` per pair, in order.

        ``keys`` (default ``range(len(pairs))``) become the outcomes'
        ``index`` values; ``forward_hook(batch_keys)`` runs inside the
        isolation boundary before every model forward.  ``stages`` (a
        :class:`repro.obs.context.BatchStages`) receives clock-timed
        ``tokenize`` / ``forward`` records — the forward record also
        carries the fused-kernel invocation mix.
        """
        pairs = list(pairs)
        keys = list(keys) if keys is not None else list(range(len(pairs)))
        if len(keys) != len(pairs):
            raise ValueError(f"{len(pairs)} pairs but {len(keys)} keys")
        outcomes: list[MatchOutcome | None] = [None] * len(pairs)

        encode_t0 = time.perf_counter()
        kept: list[int] = []          # position in ``pairs`` per encoded row
        encodings = []
        with ExitStack() as scope:
            if stages is not None:
                scope.enter_context(stages.stage("tokenize",
                                                 pairs=len(pairs)))
            for position, (entity_a, entity_b) in enumerate(pairs):
                try:
                    text_a, text_b = self._pair_texts(entity_a, entity_b)
                    enc = self._tokenizer.encode_pair(
                        text_a, text_b, max_length=self._max_length)
                except Exception as exc:  # noqa: BLE001 — isolation point
                    outcomes[position] = self.degraded_outcome(
                        keys[position], entity_a, entity_b,
                        f"{type(exc).__name__}: {exc}", threshold,
                        fallback, cb)
                    continue
                kept.append(position)
                encodings.append(enc)
        encode_seconds = time.perf_counter() - encode_t0

        forward_t0 = time.perf_counter()
        with ExitStack() as scope:
            if stages is not None:
                record = scope.enter_context(
                    stages.stage("forward", rows=len(encodings)))
                # The counts dict fills in place as kernels run, so
                # wiring it into the record up front is safe.
                record.attrs["kernels"] = scope.enter_context(
                    count_kernels())
            if self._quantized is not None:
                # Covers the batched forwards AND the per-row retry
                # path below — a retried pair must not silently fall
                # back to float and diverge from its batch neighbors.
                scope.enter_context(quantized_inference(self._quantized))
            if encodings:
                encoded = EncodedPairs(
                    np.stack([e.input_ids for e in encodings]),
                    np.stack([e.segment_ids for e in encodings]),
                    np.stack([e.pad_mask for e in encodings]),
                    np.asarray([e.cls_index for e in encodings]),
                    np.zeros(len(encodings), dtype=np.int64))
                classifier = self._classifier
                classifier.eval()
                with no_grad():
                    for rows, batch in iter_bucketed(encoded, batch_size):
                        try:
                            if forward_hook is not None:
                                forward_hook([keys[kept[int(r)]]
                                              for r in rows])
                            probs = classifier.predict_proba(
                                batch.input_ids,
                                segment_ids=batch.segment_ids,
                                pad_mask=batch.pad_masks,
                                cls_index=uniform_cls_index(
                                    batch.cls_indices))[:, 1]
                        except Exception:  # noqa: BLE001 — isolation
                            # point
                            self._retry_rows(rows, kept, encodings,
                                             pairs, keys, outcomes,
                                             threshold, fallback, cb,
                                             forward_hook)
                            continue
                        for row, probability in zip(rows, probs):
                            position = kept[int(row)]
                            outcomes[position] = MatchOutcome(
                                index=keys[position],
                                probability=float(probability),
                                matched=float(probability) >= threshold)
        forward_seconds = time.perf_counter() - forward_t0

        self._registry.gauge("perf.match.encode_seconds").set(
            encode_seconds)
        self._registry.gauge("perf.match.forward_seconds").set(
            forward_seconds)
        self._registry.counter("perf.match.pairs").inc(len(pairs))
        return outcomes

    def _retry_rows(self, rows, kept, encodings, pairs, keys, outcomes,
                    threshold: float, fallback: bool, cb,
                    forward_hook) -> None:
        """A bucket forward failed: re-run its members one by one, so a
        single poisoned pair cannot take down its batch neighbors."""
        for row in rows:
            position = kept[int(row)]
            enc = encodings[int(row)]
            try:
                if forward_hook is not None:
                    forward_hook([keys[position]])
                probs = self._classifier.predict_proba(
                    enc.input_ids[None, :],
                    segment_ids=enc.segment_ids[None, :],
                    pad_mask=enc.pad_mask[None, :],
                    cls_index=enc.cls_index)
                probability = float(probs[0, 1])
            except Exception as exc:  # noqa: BLE001 — isolation point
                entity_a, entity_b = pairs[position]
                outcomes[position] = self.degraded_outcome(
                    keys[position], entity_a, entity_b,
                    f"{type(exc).__name__}: {exc}", threshold, fallback,
                    cb)
                continue
            outcomes[position] = MatchOutcome(
                index=keys[position], probability=probability,
                matched=probability >= threshold)
