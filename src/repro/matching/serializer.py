"""Serializing entity pairs into transformer inputs (Figure 9).

For textual datasets (Abt-Buy) only the description attribute is used;
for dirty datasets all attributes are concatenated into one blob per
entity ("[name + brand + description + price]", §5.2.2).  The maximum
sequence length is determined empirically from the training data, as the
paper does ("empirically defined based on the longest data rows in the
training data").
"""

from __future__ import annotations

import numpy as np

from ..data import EMDataset, EntityPair
from ..perf import is_left_padded, plan_buckets, real_lengths
from ..tokenizers import Encoding, SubwordTokenizer

__all__ = ["pair_texts", "choose_max_length", "encode_dataset",
           "EncodedPairs", "uniform_cls_index", "iter_bucketed"]


def uniform_cls_index(cls_indices: np.ndarray) -> int:
    """The single CLS position shared by every sequence in a batch.

    The classifier reads one hidden state per batch (``cls_index``), so
    all sequences must agree on where CLS sits.  BERT-style tokenizers
    put it at position 0; XLNet puts it at the *end* of the (fixed,
    padded) sequence — a mixed batch would silently read a wrong hidden
    state for part of the batch, hence the hard error.
    """
    cls_indices = np.asarray(cls_indices)
    if cls_indices.size == 0:
        raise ValueError("cannot take the CLS index of an empty batch")
    first = int(cls_indices[0])
    if not np.all(cls_indices == first):
        positions = sorted(int(i) for i in np.unique(cls_indices))
        raise ValueError(
            f"batch mixes CLS positions {positions}: every sequence in a "
            f"batch must place CLS at the same index (XLNet-style "
            f"tokenizers put it at the sequence end, BERT-style at 0) — "
            f"encode all pairs with one tokenizer and a fixed max_length")
    return first


def pair_texts(pair: EntityPair, attributes: list[str]) -> tuple[str, str]:
    """The two text blobs fed into the transformer."""
    return (pair.record_a.text_blob(attributes),
            pair.record_b.text_blob(attributes))


def choose_max_length(dataset: EMDataset, tokenizer: SubwordTokenizer,
                      cap: int = 128, percentile: float = 95.0,
                      sample_limit: int = 200) -> int:
    """Pick the input length from the training data's token lengths.

    Uses a high percentile of (tokens_a + tokens_b + 3 specials), capped
    by the model's position budget, floor of 16.
    """
    attributes = dataset.serialization_attributes()
    pairs = dataset.pairs[:sample_limit]
    lengths = []
    for pair in pairs:
        text_a, text_b = pair_texts(pair, attributes)
        lengths.append(len(tokenizer.encode(text_a))
                       + len(tokenizer.encode(text_b)) + 3)
    if not lengths:
        return 16
    chosen = int(np.percentile(lengths, percentile))
    return int(min(max(chosen, 16), cap))


class EncodedPairs:
    """A dataset encoded into batched arrays for one tokenizer."""

    def __init__(self, input_ids: np.ndarray, segment_ids: np.ndarray,
                 pad_masks: np.ndarray, cls_indices: np.ndarray,
                 labels: np.ndarray):
        self.input_ids = input_ids
        self.segment_ids = segment_ids
        self.pad_masks = pad_masks
        self.cls_indices = cls_indices
        self.labels = labels

    def __len__(self) -> int:
        return len(self.labels)

    def batch(self, indices: np.ndarray) -> "EncodedPairs":
        return EncodedPairs(
            self.input_ids[indices], self.segment_ids[indices],
            self.pad_masks[indices], self.cls_indices[indices],
            self.labels[indices])


def iter_bucketed(encoded: EncodedPairs, batch_size: int):
    """Yield ``(indices, batch)`` in length-bucketed order.

    Sequences are sorted by real token count and chunked into batches;
    right-padded batches (BERT-style) are trimmed to their own longest
    member, so short pairs run short forward passes.  Left-padded
    batches (XLNet) keep full length — the relative-position table is a
    function of the padded length, so trimming would change logits (see
    :mod:`repro.perf.bucketing`).  ``indices`` maps each batch row back
    to its position in ``encoded``; concatenating all index arrays is a
    permutation of ``range(len(encoded))``.
    """
    if len(encoded) == 0:
        return
    left_padded = is_left_padded(encoded.pad_masks)
    lengths = real_lengths(encoded.pad_masks)
    for indices in plan_buckets(lengths, batch_size):
        batch = encoded.batch(indices)
        if not left_padded:
            limit = max(int(lengths[indices].max()), 1)
            batch = EncodedPairs(
                batch.input_ids[:, :limit], batch.segment_ids[:, :limit],
                batch.pad_masks[:, :limit], batch.cls_indices,
                batch.labels)
        yield indices, batch


def encode_dataset(dataset: EMDataset, tokenizer: SubwordTokenizer,
                   max_length: int) -> EncodedPairs:
    """Encode every pair of a dataset to fixed-length arrays."""
    attributes = dataset.serialization_attributes()
    ids, segments, pads, cls_indices, labels = [], [], [], [], []
    for pair in dataset.pairs:
        text_a, text_b = pair_texts(pair, attributes)
        enc: Encoding = tokenizer.encode_pair(text_a, text_b,
                                              max_length=max_length)
        ids.append(enc.input_ids)
        segments.append(enc.segment_ids)
        pads.append(enc.pad_mask)
        cls_indices.append(enc.cls_index)
        labels.append(pair.label)
    return EncodedPairs(
        np.stack(ids), np.stack(segments), np.stack(pads),
        np.asarray(cls_indices), np.asarray(labels))
