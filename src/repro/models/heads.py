"""Task heads: the entity-matching sequence classifier of the paper.

"The classification layer is — in contrast to the rest of the model — not
pre-trained and contains a fully connected layer with 768 neurons plus two
output neurons" (§5.2.2).  Scaled to our d_model: pooled CLS state ->
dense(d_model) -> dropout -> dense(2)."""

from __future__ import annotations

import numpy as np

from ..nn import (Dropout, Linear, Module, Tensor, fused, is_fused_enabled,
                  no_grad)
from .config import TransformerConfig

__all__ = ["SequenceClassifier"]


class SequenceClassifier(Module):
    """Backbone + freshly initialized classification head.

    The backbone may be any of the four architectures; it must expose
    ``forward(input_ids, segment_ids, pad_mask) -> hidden`` and
    ``pooled_output(hidden, cls_index) -> Tensor``.
    """

    def __init__(self, backbone: Module, config: TransformerConfig,
                 rng: np.random.Generator, num_classes: int = 2):
        super().__init__()
        # The fresh head uses 1/sqrt(d) init rather than the backbone's
        # 0.02: at small d_model the BERT init shrinks the classification
        # signal (and its gradients into the backbone) by ~6x per layer,
        # which stalls fine-tuning for many epochs.
        std = 1.0 / np.sqrt(config.d_model)
        self.backbone = backbone
        self.config = config
        self.hidden_layer = Linear(config.d_model, config.d_model, rng,
                                   std=std)
        self.dropout = Dropout(config.dropout, rng)
        self.output_layer = Linear(config.d_model, num_classes, rng, std=std)

    def forward(self, input_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                pad_mask: np.ndarray | None = None,
                cls_index: int = 0) -> Tensor:
        hidden = self.backbone(input_ids, segment_ids=segment_ids,
                               pad_mask=pad_mask)
        if (is_fused_enabled()
                and hasattr(self.backbone, "fused_pooled_output")):
            return Tensor(self.fused_head(
                self.backbone.fused_pooled_output(hidden.data,
                                                  cls_index=cls_index)))
        pooled = self.backbone.pooled_output(hidden, cls_index=cls_index)
        features = self.hidden_layer(pooled).tanh()
        return self.output_layer(self.dropout(features))

    def fused_head(self, pooled: np.ndarray) -> np.ndarray:
        """No-tape array path for the classification head, bit-identical
        to :meth:`forward` (dropout is identity while the tape is off)."""
        # Raw ops, not fused.linear: the head must stay outside the
        # quantization dispatch (calibration quantizes every
        # fused.linear weight it sees) and the kernel call counters.
        features = pooled @ self.hidden_layer.weight.data.T
        features += self.hidden_layer.bias.data
        np.tanh(features, out=features)
        logits = features @ self.output_layer.weight.data.T
        logits += self.output_layer.bias.data
        return logits

    @no_grad()
    def predict_proba(self, input_ids: np.ndarray,
                      segment_ids: np.ndarray | None = None,
                      pad_mask: np.ndarray | None = None,
                      cls_index: int = 0) -> np.ndarray:
        """Match probabilities, shape (B, num_classes)."""
        logits = self.forward(input_ids, segment_ids=segment_ids,
                              pad_mask=pad_mask, cls_index=cls_index)
        if is_fused_enabled():
            # forward just returned an array we own; softmax in place.
            return fused.softmax(logits.data, axis=-1, out=logits.data)
        return logits.softmax(axis=-1).numpy()
