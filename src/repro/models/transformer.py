"""Transformer encoder blocks (Vaswani et al., 2017) shared by BERT,
RoBERTa and DistilBERT.  Post-layer-norm residual blocks, GELU feedforward,
exactly the BERT encoder wiring."""

from __future__ import annotations

import numpy as np

from ..nn import (DTYPE, Dropout, LayerNorm, Linear, Module, ModuleList,
                  MultiHeadAttention, Tensor, fused, is_fused_enabled)
from .config import TransformerConfig

__all__ = ["TransformerEncoderLayer", "TransformerEncoder",
           "sinusoidal_positions", "lexical_match_scores",
           "cross_match_features", "token_similarity"]


NUM_MATCH_FEATURES = 4


def _normalized_rows(table: np.ndarray) -> np.ndarray:
    """Row-normalized copy of an embedding table (zero rows guarded)."""
    norms = np.linalg.norm(table, axis=-1, keepdims=True)
    return table / np.maximum(norms, 1e-8)


def _invalid_mask(input_ids: np.ndarray, invalid_ids,
                  vocab_size: int) -> np.ndarray:
    """Boolean mask of positions holding special/pad tokens.

    A vocab-sized lookup table beats ``np.isin`` (sort-based) for the
    handful of special ids this is called with on every forward batch.
    """
    table = np.zeros(vocab_size, dtype=bool)
    table[list(invalid_ids)] = True
    return table[input_ids]


def token_similarity(embedding_table: np.ndarray,
                     input_ids: np.ndarray) -> np.ndarray:
    """Cosine similarity of raw token embeddings, (B, T, T).

    The shared base matrix behind both :func:`lexical_match_scores` and
    :func:`cross_match_features` — models that need both compute it once
    and pass it to each (the matmul is the dominant cost of either).
    """
    # Normalize the table (vocab rows), not the gather (B*T rows): the
    # gathered vectors are table rows repeated, so this does the same
    # normalization once per vocab entry instead of once per position.
    normalized = _normalized_rows(embedding_table)[np.asarray(input_ids)]
    return normalized @ np.swapaxes(normalized, -1, -2)


def cross_match_features(embedding_table: np.ndarray,
                         input_ids: np.ndarray,
                         segment_ids: np.ndarray,
                         invalid_ids: set[int],
                         similarity: np.ndarray | None = None) -> np.ndarray:
    """Per-position cross-segment matchedness, (B, T, 3).

    For every position: [exact token match exists in the other segment,
    bigram-exact match (this token AND its successor match consecutively
    somewhere in the other segment), max cosine similarity, mean cosine
    similarity] of its raw token embedding against all positions of the
    *other* segment.  The exact channels are noise-free discrimination (a
    token with no counterpart is hard evidence against a match; the
    bigram channel recovers word- and code-level contiguity that subword
    splitting destroys); the cosine channels add soft synonym bridging
    learned by pre-training.  Injected as an embedding channel the
    features are linearly aggregatable by the classifier token.
    Positions holding special/pad tokens get zeros.

    ``similarity`` is an optional precomputed :func:`token_similarity`
    matrix for these exact inputs; it is read, never mutated.
    """
    input_ids = np.asarray(input_ids)
    segment_ids = np.asarray(segment_ids)
    if similarity is None:
        similarity = token_similarity(embedding_table, input_ids)
    cross = segment_ids[:, :, None] != segment_ids[:, None, :]
    invalid = None
    if invalid_ids:
        invalid = _invalid_mask(input_ids, invalid_ids,
                                len(embedding_table))
        cross &= ~invalid[:, :, None]
        cross &= ~invalid[:, None, :]
    equal = input_ids[:, :, None] == input_ids[:, None, :]
    equal &= cross  # exact cross-segment pairs, reusing the buffer
    exact = equal.any(axis=-1).astype(DTYPE)
    # Bigram: positions (i, j) match AND (i+1, j+1) match.  Only the
    # (T-1, T-1) corner can be True, so reduce just that slice.
    bigram = np.zeros(equal.shape[:2], dtype=DTYPE)
    bigram[:, :-1] = (equal[:, :-1, :-1] & equal[:, 1:, 1:]).any(axis=-1)
    # The where=-max skips a full-size np.where scratch array and is
    # exact (max has no accumulation order).  The mean must keep the
    # dense zero-masked sum: a where=-sum's accumulation order varies
    # with array layout, and per-pair results have to be bitwise
    # independent of batch shape (the engine's pair-by-pair failure
    # retry re-scores single pairs and compares against batch output).
    raw_counts = cross.sum(axis=-1)
    has_cross = raw_counts > 0  # same truth table as cross.any(-1)
    best = np.where(
        has_cross,
        similarity.max(axis=-1, where=cross, initial=-np.inf), 0.0)
    counts = np.maximum(raw_counts, 1)
    mean = np.where(has_cross,
                    np.where(cross, similarity, 0.0).sum(axis=-1) / counts,
                    0.0)
    features = np.stack([exact, bigram, best, mean], axis=-1)
    if invalid is not None:
        features[invalid] = 0.0
    return features.astype(DTYPE, copy=False)


def lexical_match_scores(embedding_table: np.ndarray,
                         input_ids: np.ndarray,
                         invalid_ids: set[int],
                         similarity: np.ndarray | None = None) -> np.ndarray:
    """Cosine similarity of raw token embeddings, (B, T, T).

    The diagonal and any row/column belonging to a special or padding
    token are zeroed, so the bias only rewards attention to *other*
    positions holding lexically similar tokens.  Computed outside the
    autodiff tape: the bias seeds matching behaviour, while the embedding
    table keeps training through the ordinary Q/K/V path.

    ``similarity`` is an optional precomputed :func:`token_similarity`
    matrix for these exact inputs.  It is CONSUMED (mutated in place) —
    callers sharing one matrix must pass it here last.
    """
    input_ids = np.asarray(input_ids)
    if similarity is None:
        similarity = token_similarity(embedding_table, input_ids)
    match = similarity
    batch, seq = input_ids.shape
    idx = np.arange(seq)
    match[:, idx, idx] = 0.0
    if invalid_ids:
        invalid = _invalid_mask(input_ids, invalid_ids,
                                len(embedding_table))
        # Zero whole rows, then whole columns through a transposed view
        # — same cells as the (B, T, T) OR-mask without building it.
        match[invalid] = 0.0
        match.swapaxes(1, 2)[invalid] = 0.0
    return match.astype(DTYPE, copy=False)


def sinusoidal_positions(length: int, d_model: int) -> np.ndarray:
    """The fixed sine/cosine positional encoding of the original paper."""
    position = np.arange(length)[:, None]
    div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
    table = np.zeros((length, d_model), dtype=DTYPE)
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: (d_model + 1) // 2])
    return table


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention and feedforward, each with a
    residual connection and post-layer-norm (BERT convention)."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        std = config.initializer_range
        self.pre_norm = config.pre_norm
        self.attention = MultiHeadAttention(
            config.d_model, config.num_heads, rng, dropout=config.dropout,
            match_bias=config.match_bias)
        self.attn_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.ff_in = Linear(config.d_model, config.d_ff, rng, std=std)
        self.ff_out = Linear(config.d_ff, config.d_model, rng, std=std)
        self.ff_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)

    def forward(self, hidden: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None) -> Tensor:
        if is_fused_enabled():
            return Tensor(self.fused_forward(hidden.data,
                                             attention_mask=attention_mask,
                                             match_scores=match_scores))
        if self.pre_norm:
            attended = self.attention(self.attn_norm(hidden),
                                      attention_mask=attention_mask,
                                      match_scores=match_scores)
            hidden = hidden + self.dropout(attended)
            transformed = self.ff_out(
                self.ff_in(self.ff_norm(hidden)).gelu())
            return hidden + self.dropout(transformed)
        attended = self.attention(hidden, attention_mask=attention_mask,
                                  match_scores=match_scores)
        hidden = self.attn_norm(hidden + self.dropout(attended))
        transformed = self.ff_out(self.ff_in(hidden).gelu())
        return self.ff_norm(hidden + self.dropout(transformed))

    def fused_forward(self, hidden: np.ndarray,
                      attention_mask: np.ndarray | None = None,
                      match_scores: np.ndarray | None = None) -> np.ndarray:
        """No-tape array path for the whole block, bit-identical to
        :meth:`forward` (dropout is identity while the tape is off)."""
        if self.pre_norm:
            normed = fused.layer_norm(hidden, self.attn_norm.weight.data,
                                      self.attn_norm.bias.data,
                                      eps=self.attn_norm.eps)
            attended = self.attention.fused_forward(
                normed, normed, normed, attention_mask=attention_mask,
                match_scores=match_scores)
            hidden = hidden + attended
            normed = fused.layer_norm(hidden, self.ff_norm.weight.data,
                                      self.ff_norm.bias.data,
                                      eps=self.ff_norm.eps)
            return hidden + fused.feed_forward(
                normed, self.ff_in.weight.data, self.ff_in.bias.data,
                self.ff_out.weight.data, self.ff_out.bias.data)
        attended = self.attention.fused_forward(
            hidden, hidden, hidden, attention_mask=attention_mask,
            match_scores=match_scores)
        hidden = fused.layer_norm(hidden + attended,
                                  self.attn_norm.weight.data,
                                  self.attn_norm.bias.data,
                                  eps=self.attn_norm.eps)
        transformed = fused.feed_forward(
            hidden, self.ff_in.weight.data, self.ff_in.bias.data,
            self.ff_out.weight.data, self.ff_out.bias.data)
        return fused.layer_norm(hidden + transformed,
                                self.ff_norm.weight.data,
                                self.ff_norm.bias.data,
                                eps=self.ff_norm.eps)


class TransformerEncoder(Module):
    """A stack of encoder layers."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            TransformerEncoderLayer(config, rng)
            for _ in range(config.num_layers)
        ])

    def forward(self, hidden: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None,
                return_all: bool = False):
        all_states = [hidden]
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask,
                           match_scores=match_scores)
            all_states.append(hidden)
        if return_all:
            return hidden, all_states
        return hidden
