"""Transformer encoder blocks (Vaswani et al., 2017) shared by BERT,
RoBERTa and DistilBERT.  Post-layer-norm residual blocks, GELU feedforward,
exactly the BERT encoder wiring."""

from __future__ import annotations

import numpy as np

from ..nn import (DTYPE, Dropout, LayerNorm, Linear, Module, ModuleList,
                  MultiHeadAttention, Tensor, fused, is_fused_enabled)
from .config import TransformerConfig

__all__ = ["TransformerEncoderLayer", "TransformerEncoder",
           "sinusoidal_positions", "lexical_match_scores",
           "cross_match_features"]


NUM_MATCH_FEATURES = 4


def cross_match_features(embedding_table: np.ndarray,
                         input_ids: np.ndarray,
                         segment_ids: np.ndarray,
                         invalid_ids: set[int]) -> np.ndarray:
    """Per-position cross-segment matchedness, (B, T, 3).

    For every position: [exact token match exists in the other segment,
    bigram-exact match (this token AND its successor match consecutively
    somewhere in the other segment), max cosine similarity, mean cosine
    similarity] of its raw token embedding against all positions of the
    *other* segment.  The exact channels are noise-free discrimination (a
    token with no counterpart is hard evidence against a match; the
    bigram channel recovers word- and code-level contiguity that subword
    splitting destroys); the cosine channels add soft synonym bridging
    learned by pre-training.  Injected as an embedding channel the
    features are linearly aggregatable by the classifier token.
    Positions holding special/pad tokens get zeros.
    """
    input_ids = np.asarray(input_ids)
    segment_ids = np.asarray(segment_ids)
    vectors = embedding_table[input_ids]
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    normalized = vectors / np.maximum(norms, 1e-8)
    similarity = normalized @ np.swapaxes(normalized, -1, -2)  # (B,T,T)
    cross = segment_ids[:, :, None] != segment_ids[:, None, :]
    if invalid_ids:
        invalid = np.isin(input_ids, list(invalid_ids))
        cross &= ~invalid[:, :, None]
        cross &= ~invalid[:, None, :]
    equal = input_ids[:, :, None] == input_ids[:, None, :]
    masked = np.where(cross, similarity, -np.inf)
    has_cross = cross.any(axis=-1)
    exact_pairs = equal & cross
    exact = exact_pairs.any(axis=-1).astype(DTYPE)
    # Bigram: positions (i, j) match AND (i+1, j+1) match.
    bigram_pairs = np.zeros_like(exact_pairs)
    bigram_pairs[:, :-1, :-1] = exact_pairs[:, :-1, :-1] \
        & exact_pairs[:, 1:, 1:]
    bigram = bigram_pairs.any(axis=-1).astype(DTYPE)
    best = np.where(has_cross, masked.max(axis=-1), 0.0)
    counts = np.maximum(cross.sum(axis=-1), 1)
    mean = np.where(has_cross,
                    np.where(cross, similarity, 0.0).sum(axis=-1) / counts,
                    0.0)
    features = np.stack([exact, bigram, best, mean], axis=-1)
    if invalid_ids:
        features[np.isin(input_ids, list(invalid_ids))] = 0.0
    return features.astype(DTYPE)


def lexical_match_scores(embedding_table: np.ndarray,
                         input_ids: np.ndarray,
                         invalid_ids: set[int]) -> np.ndarray:
    """Cosine similarity of raw token embeddings, (B, T, T).

    The diagonal and any row/column belonging to a special or padding
    token are zeroed, so the bias only rewards attention to *other*
    positions holding lexically similar tokens.  Computed outside the
    autodiff tape: the bias seeds matching behaviour, while the embedding
    table keeps training through the ordinary Q/K/V path.
    """
    input_ids = np.asarray(input_ids)
    vectors = embedding_table[input_ids]
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    normalized = vectors / np.maximum(norms, 1e-8)
    match = normalized @ np.swapaxes(normalized, -1, -2)
    batch, seq = input_ids.shape
    idx = np.arange(seq)
    match[:, idx, idx] = 0.0
    if invalid_ids:
        invalid = np.isin(input_ids, list(invalid_ids))
        match[invalid[:, :, None] | invalid[:, None, :]] = 0.0
    return match.astype(DTYPE)


def sinusoidal_positions(length: int, d_model: int) -> np.ndarray:
    """The fixed sine/cosine positional encoding of the original paper."""
    position = np.arange(length)[:, None]
    div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
    table = np.zeros((length, d_model), dtype=DTYPE)
    table[:, 0::2] = np.sin(position * div)
    table[:, 1::2] = np.cos(position * div[: (d_model + 1) // 2])
    return table


class TransformerEncoderLayer(Module):
    """One encoder block: self-attention and feedforward, each with a
    residual connection and post-layer-norm (BERT convention)."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        std = config.initializer_range
        self.pre_norm = config.pre_norm
        self.attention = MultiHeadAttention(
            config.d_model, config.num_heads, rng, dropout=config.dropout,
            match_bias=config.match_bias)
        self.attn_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.ff_in = Linear(config.d_model, config.d_ff, rng, std=std)
        self.ff_out = Linear(config.d_ff, config.d_model, rng, std=std)
        self.ff_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)

    def forward(self, hidden: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None) -> Tensor:
        if is_fused_enabled():
            return Tensor(self.fused_forward(hidden.data,
                                             attention_mask=attention_mask,
                                             match_scores=match_scores))
        if self.pre_norm:
            attended = self.attention(self.attn_norm(hidden),
                                      attention_mask=attention_mask,
                                      match_scores=match_scores)
            hidden = hidden + self.dropout(attended)
            transformed = self.ff_out(
                self.ff_in(self.ff_norm(hidden)).gelu())
            return hidden + self.dropout(transformed)
        attended = self.attention(hidden, attention_mask=attention_mask,
                                  match_scores=match_scores)
        hidden = self.attn_norm(hidden + self.dropout(attended))
        transformed = self.ff_out(self.ff_in(hidden).gelu())
        return self.ff_norm(hidden + self.dropout(transformed))

    def fused_forward(self, hidden: np.ndarray,
                      attention_mask: np.ndarray | None = None,
                      match_scores: np.ndarray | None = None) -> np.ndarray:
        """No-tape array path for the whole block, bit-identical to
        :meth:`forward` (dropout is identity while the tape is off)."""
        if self.pre_norm:
            normed = fused.layer_norm(hidden, self.attn_norm.weight.data,
                                      self.attn_norm.bias.data,
                                      eps=self.attn_norm.eps)
            attended = self.attention.fused_forward(
                normed, normed, normed, attention_mask=attention_mask,
                match_scores=match_scores)
            hidden = hidden + attended
            normed = fused.layer_norm(hidden, self.ff_norm.weight.data,
                                      self.ff_norm.bias.data,
                                      eps=self.ff_norm.eps)
            return hidden + fused.feed_forward(
                normed, self.ff_in.weight.data, self.ff_in.bias.data,
                self.ff_out.weight.data, self.ff_out.bias.data)
        attended = self.attention.fused_forward(
            hidden, hidden, hidden, attention_mask=attention_mask,
            match_scores=match_scores)
        hidden = fused.layer_norm(hidden + attended,
                                  self.attn_norm.weight.data,
                                  self.attn_norm.bias.data,
                                  eps=self.attn_norm.eps)
        transformed = fused.feed_forward(
            hidden, self.ff_in.weight.data, self.ff_in.bias.data,
            self.ff_out.weight.data, self.ff_out.bias.data)
        return fused.layer_norm(hidden + transformed,
                                self.ff_norm.weight.data,
                                self.ff_norm.bias.data,
                                eps=self.ff_norm.eps)


class TransformerEncoder(Module):
    """A stack of encoder layers."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            TransformerEncoderLayer(config, rng)
            for _ in range(config.num_layers)
        ])

    def forward(self, hidden: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None,
                return_all: bool = False):
        all_states = [hidden]
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask,
                           match_scores=match_scores)
            all_states.append(hidden)
        if return_all:
            return hidden, all_states
        return hidden
