"""RoBERTa (Liu et al., 2019): the BERT architecture with a different
pre-training recipe — no NSP objective, dynamic masking, more data and
longer training.  Architecturally it *is* BertModel; this module exists to
make the recipe differences explicit and keep checkpoints labelled."""

from __future__ import annotations

import numpy as np

from .bert import BertModel, BertPretrainingHeads
from .config import TransformerConfig

__all__ = ["RobertaModel", "RobertaPretrainingHead"]


class RobertaModel(BertModel):
    """BERT-base architecture under RoBERTa's training recipe."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        if config.arch != "roberta":
            raise ValueError(f"expected arch='roberta', got {config.arch!r}")
        super().__init__(config, rng, with_pooler=True)


class RobertaPretrainingHead(BertPretrainingHeads):
    """MLM-only head: RoBERTa removes the NSP objective."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__(config, rng, with_nsp=False)
