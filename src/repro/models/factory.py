"""Build any of the four architectures from a config."""

from __future__ import annotations

import numpy as np

from ..nn import Module
from .bert import BertModel, BertPretrainingHeads
from .config import TransformerConfig, default_config
from .distilbert import DistilBertModel
from .roberta import RobertaModel, RobertaPretrainingHead
from .xlnet import XLNetModel

__all__ = ["build_backbone", "build_pretraining_head", "default_config"]


def build_backbone(config: TransformerConfig,
                   rng: np.random.Generator) -> Module:
    """Instantiate the encoder backbone named by ``config.arch``."""
    if config.arch == "bert":
        return BertModel(config, rng, with_pooler=True)
    if config.arch == "roberta":
        return RobertaModel(config, rng)
    if config.arch == "distilbert":
        return DistilBertModel(config, rng)
    if config.arch == "xlnet":
        return XLNetModel(config, rng)
    raise ValueError(f"unknown architecture: {config.arch!r}")


def build_pretraining_head(config: TransformerConfig,
                           rng: np.random.Generator) -> Module:
    """MLM(+NSP) head matching the architecture's pre-training objective."""
    if config.arch == "bert":
        return BertPretrainingHeads(config, rng, with_nsp=True)
    if config.arch in ("roberta", "distilbert"):
        return RobertaPretrainingHead(config, rng)
    if config.arch == "xlnet":
        # Permutation LM reuses the same transform+decoder head shape.
        return RobertaPretrainingHead(config, rng)
    raise ValueError(f"unknown architecture: {config.arch!r}")
