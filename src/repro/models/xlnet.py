"""XLNet (Yang et al., 2019): autoregressive permutation language model.

Implements the two architectural ingredients the paper highlights:

* **Transformer-XL relative positional attention** — attention scores are
  ``(q + u)·k + (q + v)·r`` where ``r`` embeds the signed distance between
  query and key positions (sinusoidal table, learned projection, learned
  global biases ``u``/``v``).
* **Two-stream self-attention** — during permutation-LM pre-training every
  position keeps a *content* stream ``h`` (sees itself) and a *query*
  stream ``g`` (sees only the preceding positions of the sampled
  factorization order, not itself), so the model can predict a token
  without leaking it.

Fine-tuning (entity matching) uses only the content stream with a fully
bidirectional mask, exactly like BERT — this is why XLNet fine-tunes the
same way but trains slower per step (Table 6 of the paper).

Simplification vs. the original: segment information is an additive
embedding rather than relative segment encoding, and Transformer-XL memory
(segment recurrence) is omitted because EM sequences fit in one window.
Both are documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..nn import (DTYPE, Dropout, Embedding, LayerNorm, Linear, Module, ModuleList,
                  Parameter, Tensor, fused, is_fused_enabled)
from ..nn import init
from .config import TransformerConfig
from .transformer import (cross_match_features, lexical_match_scores,
                          sinusoidal_positions)

__all__ = ["XLNetModel", "XLNetLayer", "XLNetRelativeAttention",
           "permutation_masks"]

_NEG_INF = -1e9


def _relative_index(seq_len: int) -> np.ndarray:
    """idx[i, j] maps (query i, key j) to the row of the (2T-1) rel table."""
    i = np.arange(seq_len)[:, None]
    j = np.arange(seq_len)[None, :]
    return i - j + seq_len - 1


class XLNetRelativeAttention(Module):
    """Multi-head attention with Transformer-XL relative position scores."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        d, h = config.d_model, config.num_heads
        std = config.initializer_range
        self.num_heads = h
        self.head_dim = d // h
        self.q_proj = Linear(d, d, rng, std=std, bias=False)
        self.k_proj = Linear(d, d, rng, std=std, bias=False)
        self.v_proj = Linear(d, d, rng, std=std, bias=False)
        self.r_proj = Linear(d, d, rng, std=std, bias=False)
        self.out_proj = Linear(d, d, rng, std=std)
        # Global content / position biases (u and v in the paper).
        self.content_bias = Parameter(init.normal(rng, (h, self.head_dim), std=std))
        self.position_bias = Parameter(init.normal(rng, (h, self.head_dim), std=std))
        self.attn_dropout = Dropout(config.dropout, rng)
        self.match_gain = None
        if config.match_bias:
            self.match_gain = Parameter(
                np.full((h,), 2.0, dtype=DTYPE))

    def _heads(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3)

    def forward(self, query_states: Tensor, content_states: Tensor,
                rel_embeddings: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None) -> Tensor:
        """Attend ``query_states`` over keys/values from ``content_states``.

        ``rel_embeddings`` is the (2T-1, D) sinusoidal distance table;
        ``attention_mask`` is boolean, True = masked, broadcastable to
        (B, H, T, T).
        """
        if is_fused_enabled():
            return Tensor(self.fused_forward(
                query_states.data, content_states.data, rel_embeddings.data,
                attention_mask=attention_mask, match_scores=match_scores))
        seq_len = content_states.shape[1]
        q = self._heads(self.q_proj(query_states))          # (B,H,T,Dh)
        k = self._heads(self.k_proj(content_states))
        v = self._heads(self.v_proj(content_states))
        r = self.r_proj(rel_embeddings)                     # (2T-1, D)
        r = r.reshape(2 * seq_len - 1, self.num_heads,
                      self.head_dim).transpose(1, 0, 2)     # (H,2T-1,Dh)

        content_scores = (q + self.content_bias.reshape(
            1, self.num_heads, 1, self.head_dim)) @ k.swapaxes(-1, -2)

        q_pos = q + self.position_bias.reshape(
            1, self.num_heads, 1, self.head_dim)
        pos_all = q_pos @ r.swapaxes(-1, -2)                # (B,H,T,2T-1)
        idx = _relative_index(seq_len)
        rows = np.broadcast_to(np.arange(seq_len)[:, None],
                               (seq_len, seq_len))
        position_scores = pos_all[:, :, rows, idx]          # (B,H,T,T)

        scores = (content_scores + position_scores) * (
            1.0 / np.sqrt(self.head_dim))
        if match_scores is not None and self.match_gain is not None:
            gain = self.match_gain.reshape(1, -1, 1, 1)
            scores = scores + gain * Tensor(match_scores[:, None, :, :])
        if attention_mask is not None:
            scores = scores.masked_fill(attention_mask, _NEG_INF)
        probs = self.attn_dropout(scores.softmax(axis=-1))
        context = (probs @ v).transpose(0, 2, 1, 3).reshape(
            query_states.shape[0], seq_len, -1)
        return self.out_proj(context)

    def fused_forward(self, query_states: np.ndarray,
                      content_states: np.ndarray,
                      rel_embeddings: np.ndarray,
                      attention_mask: np.ndarray | None = None,
                      match_scores: np.ndarray | None = None) -> np.ndarray:
        """No-tape array path, bit-identical to :meth:`forward` (attention
        dropout is identity while the tape is off)."""
        seq_len = content_states.shape[1]
        h, dh = self.num_heads, self.head_dim

        def heads(x, h=h, dh=dh):
            b, t, _ = x.shape
            return x.reshape(b, t, h, dh).transpose(0, 2, 1, 3)

        q = heads(fused.linear(query_states, self.q_proj.weight.data))
        k = heads(fused.linear(content_states, self.k_proj.weight.data))
        v = heads(fused.linear(content_states, self.v_proj.weight.data))
        r = fused.linear(rel_embeddings, self.r_proj.weight.data)
        r = r.reshape(2 * seq_len - 1, h, dh).transpose(1, 0, 2)

        content_scores = (q + self.content_bias.data.reshape(
            1, h, 1, dh)) @ np.swapaxes(k, -1, -2)
        q_pos = q + self.position_bias.data.reshape(1, h, 1, dh)
        pos_all = q_pos @ np.swapaxes(r, -1, -2)
        idx = _relative_index(seq_len)
        rows = np.broadcast_to(np.arange(seq_len)[:, None],
                               (seq_len, seq_len))
        position_scores = pos_all[:, :, rows, idx]

        scores = (content_scores + position_scores) * float(
            1.0 / np.sqrt(self.head_dim))
        score_bias = None
        if match_scores is not None and self.match_gain is not None:
            score_bias = (self.match_gain.data.reshape(1, -1, 1, 1)
                          * match_scores[:, None, :, :])
        context = fused.attention_core(
            None, None, v, 1.0, attention_mask=attention_mask,
            score_bias=score_bias, mask_value=_NEG_INF,
            scores=scores)
        context = context.transpose(0, 2, 1, 3).reshape(
            query_states.shape[0], seq_len, -1)
        return fused.linear(context, self.out_proj.weight.data,
                            self.out_proj.bias.data)


class XLNetLayer(Module):
    """Relative-attention block with post-LN residuals and GELU FF."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        std = config.initializer_range
        self.pre_norm = config.pre_norm
        self.attention = XLNetRelativeAttention(config, rng)
        self.attn_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.ff_in = Linear(config.d_model, config.d_ff, rng, std=std)
        self.ff_out = Linear(config.d_ff, config.d_model, rng, std=std)
        self.ff_norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)

    def _ff(self, hidden: Tensor) -> Tensor:
        if self.pre_norm:
            transformed = self.ff_out(
                self.ff_in(self.ff_norm(hidden)).gelu())
            return hidden + self.dropout(transformed)
        transformed = self.ff_out(self.ff_in(hidden).gelu())
        return self.ff_norm(hidden + self.dropout(transformed))

    def _attend(self, query: Tensor, content: Tensor, rel: Tensor,
                mask, match_scores=None) -> Tensor:
        if self.pre_norm:
            return self.attention(self.attn_norm(query),
                                  self.attn_norm(content), rel, mask,
                                  match_scores=match_scores)
        return self.attention(query, content, rel, mask,
                              match_scores=match_scores)

    def _residual(self, hidden: Tensor, attended: Tensor) -> Tensor:
        if self.pre_norm:
            return hidden + self.dropout(attended)
        return self.attn_norm(hidden + self.dropout(attended))

    def forward(self, hidden: Tensor, rel_embeddings: Tensor,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None) -> Tensor:
        if is_fused_enabled():
            return Tensor(self.fused_forward(
                hidden.data, rel_embeddings.data,
                attention_mask=attention_mask, match_scores=match_scores))
        attended = self._attend(hidden, hidden, rel_embeddings,
                                attention_mask, match_scores=match_scores)
        return self._ff(self._residual(hidden, attended))

    def fused_forward(self, hidden: np.ndarray, rel_embeddings: np.ndarray,
                      attention_mask: np.ndarray | None = None,
                      match_scores: np.ndarray | None = None) -> np.ndarray:
        """No-tape array path for the whole block, bit-identical to
        :meth:`forward` (dropout is identity while the tape is off)."""
        if self.pre_norm:
            normed = fused.layer_norm(hidden, self.attn_norm.weight.data,
                                      self.attn_norm.bias.data,
                                      eps=self.attn_norm.eps)
            attended = self.attention.fused_forward(
                normed, normed, rel_embeddings,
                attention_mask=attention_mask, match_scores=match_scores)
            hidden = hidden + attended
            normed = fused.layer_norm(hidden, self.ff_norm.weight.data,
                                      self.ff_norm.bias.data,
                                      eps=self.ff_norm.eps)
            return hidden + fused.feed_forward(
                normed, self.ff_in.weight.data, self.ff_in.bias.data,
                self.ff_out.weight.data, self.ff_out.bias.data)
        attended = self.attention.fused_forward(
            hidden, hidden, rel_embeddings,
            attention_mask=attention_mask, match_scores=match_scores)
        hidden = fused.layer_norm(hidden + attended,
                                  self.attn_norm.weight.data,
                                  self.attn_norm.bias.data,
                                  eps=self.attn_norm.eps)
        transformed = fused.feed_forward(
            hidden, self.ff_in.weight.data, self.ff_in.bias.data,
            self.ff_out.weight.data, self.ff_out.bias.data)
        return fused.layer_norm(hidden + transformed,
                                self.ff_norm.weight.data,
                                self.ff_norm.bias.data,
                                eps=self.ff_norm.eps)

    def forward_two_stream(self, h: Tensor, g: Tensor,
                           rel_embeddings: Tensor,
                           content_mask: np.ndarray,
                           query_mask: np.ndarray) -> tuple[Tensor, Tensor]:
        """One block over both streams; keys/values always come from h."""
        h_att = self._attend(h, h, rel_embeddings, content_mask)
        g_att = self._attend(g, h, rel_embeddings, query_mask)
        h_new = self._ff(self._residual(h, h_att))
        g_new = self._ff(self._residual(g, g_att))
        return h_new, g_new


def permutation_masks(order: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Attention masks for a factorization order (True = masked).

    ``content_mask[i, j]`` hides j from i unless j precedes i in the order
    or j == i (content stream sees itself).  ``query_mask`` additionally
    hides the position itself, so the query stream must *predict* it.
    """
    order = np.asarray(order)
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    before = rank[None, :] < rank[:, None]   # j strictly precedes i
    content_mask = ~(before | np.eye(len(order), dtype=bool))
    query_mask = ~before
    return content_mask, query_mask


class XLNetModel(Module):
    """XLNet encoder with bidirectional fine-tuning and permutation-LM
    pre-training entry points."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        if config.arch != "xlnet":
            raise ValueError(f"expected arch='xlnet', got {config.arch!r}")
        self.config = config
        std = config.initializer_range
        self.token = Embedding(config.vocab_size, config.d_model, rng,
                               std=std)
        self.segment = Embedding(config.type_vocab_size, config.d_model, rng,
                                 std=std)
        self.layers = ModuleList([XLNetLayer(config, rng)
                                  for _ in range(config.num_layers)])
        self.dropout = Dropout(config.dropout, rng)
        # Learnable start vector for the query stream (w in the paper).
        self.query_seed = Parameter(init.normal(rng, (config.d_model,), std=std))
        self.pooler = Linear(config.d_model, config.d_model, rng, std=std)
        self.match_proj = (Linear(4, config.d_model, rng, std=0.2,
                                  bias=False)
                           if config.match_bias else None)
        self.special_token_ids: set[int] = {0}

    def _rel_embeddings(self, seq_len: int) -> Tensor:
        return Tensor(sinusoidal_positions(2 * seq_len - 1,
                                           self.config.d_model))

    def _embed(self, input_ids: np.ndarray,
               segment_ids: np.ndarray | None) -> Tensor:
        embedded = self.token(np.asarray(input_ids))
        if segment_ids is not None:
            embedded = embedded + self.segment(np.asarray(segment_ids))
        if (segment_ids is not None and self.match_proj is not None
                and self.config.match_bias):
            features = cross_match_features(
                self.token.weight.data, input_ids, segment_ids,
                self.special_token_ids)
            embedded = embedded + self.match_proj(Tensor(features))
        return self.dropout(embedded)

    def forward(self, input_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                pad_mask: np.ndarray | None = None) -> Tensor:
        """Bidirectional content-stream encoding (fine-tuning mode)."""
        hidden = self._embed(input_ids, segment_ids)
        seq_len = hidden.shape[1]
        attention_mask = None
        if pad_mask is not None:
            attention_mask = np.asarray(pad_mask, bool)[:, None, None, :]
        match_scores = None
        if self.config.match_bias:
            match_scores = lexical_match_scores(
                self.token.weight.data, input_ids, self.special_token_ids)
        rel = self._rel_embeddings(seq_len)
        for layer in self.layers:
            hidden = layer(hidden, rel, attention_mask,
                           match_scores=match_scores)
        return hidden

    def pooled_output(self, hidden: Tensor, cls_index: int) -> Tensor:
        """XLNet's classification token sits at the *end* of the sequence."""
        return self.pooler(hidden[:, cls_index, :]).tanh()

    def forward_permutation(self, input_ids: np.ndarray,
                            order: np.ndarray,
                            segment_ids: np.ndarray | None = None) -> Tensor:
        """Two-stream pass under a factorization order; returns the query
        stream g (B, T, D), whose position t encodes everything needed to
        predict token t without seeing it."""
        hidden = self._embed(input_ids, segment_ids)
        batch, seq_len, _ = hidden.shape
        content_mask, query_mask = permutation_masks(order)
        content_mask = content_mask[None, None]
        query_mask = query_mask[None, None]
        seed = self.query_seed.reshape(1, 1, -1)
        g = seed + Tensor(np.zeros((batch, seq_len, 1), dtype=DTYPE))
        rel = self._rel_embeddings(seq_len)
        h = hidden
        for layer in self.layers:
            h, g = layer.forward_two_stream(h, g, rel, content_mask,
                                            query_mask)
        return g
