"""BERT (Devlin et al., 2018): bidirectional encoder with learned token /
position / segment embeddings, a CLS pooler, and MLM + NSP heads."""

from __future__ import annotations

import numpy as np

from ..nn import (Dropout, Embedding, LayerNorm, Linear, Module, Tensor,
                  fused, is_fused_enabled, padding_attention_mask)
from .config import TransformerConfig
from .transformer import (TransformerEncoder, cross_match_features,
                          lexical_match_scores, token_similarity)

__all__ = ["BertEmbeddings", "BertModel", "BertPretrainingHeads"]


class BertEmbeddings(Module):
    """Sum of token, learned-position and segment embeddings, then LN."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        std = config.initializer_range
        self.token = Embedding(config.vocab_size, config.d_model, rng, std=std)
        self.position = Embedding(config.max_position, config.d_model, rng,
                                  std=std)
        self.segment = Embedding(config.type_vocab_size, config.d_model, rng,
                                 std=std)
        self.norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)
        self.max_position = config.max_position
        # Matchedness channel (see transformer.cross_match_features).
        self.match_proj = (Linear(4, config.d_model, rng, std=0.2,
                                  bias=False)
                           if config.match_bias else None)

    def forward(self, input_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                match_features: np.ndarray | None = None) -> Tensor:
        input_ids = np.asarray(input_ids)
        batch, seq = input_ids.shape
        if seq > self.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position "
                f"{self.max_position}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        if segment_ids is None:
            segment_ids = np.zeros_like(input_ids)
        if is_fused_enabled():
            return Tensor(self.fused_forward(input_ids, positions,
                                             segment_ids, match_features))
        total = (self.token(input_ids) + self.position(positions)
                 + self.segment(segment_ids))
        if match_features is not None and self.match_proj is not None:
            total = total + self.match_proj(Tensor(match_features))
        return self.dropout(self.norm(total))

    def fused_forward(self, input_ids: np.ndarray, positions: np.ndarray,
                      segment_ids: np.ndarray,
                      match_features: np.ndarray | None) -> np.ndarray:
        """No-tape array path, bit-identical to :meth:`forward` (dropout
        is identity while the tape is off)."""
        total = self.token.weight.data[input_ids]
        total = total + self.position.weight.data[positions]
        total += self.segment.weight.data[segment_ids]
        if match_features is not None and self.match_proj is not None:
            # Raw matmul, not fused.linear: this projection must stay
            # outside the quantization dispatch (calibration quantizes
            # every fused.linear weight it sees) and outside the kernel
            # call counters.
            total += match_features @ self.match_proj.weight.data.T
        return fused.layer_norm(total, self.norm.weight.data,
                                self.norm.bias.data, eps=self.norm.eps)


class BertModel(Module):
    """Encoder backbone; also the backbone for RoBERTa (identical arch)."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator,
                 with_pooler: bool = True):
        super().__init__()
        self.config = config
        self.embeddings = BertEmbeddings(config, rng)
        self.encoder = TransformerEncoder(config, rng)
        self.pooler = (Linear(config.d_model, config.d_model, rng,
                              std=config.initializer_range)
                       if with_pooler else None)
        # Ids whose rows are excluded from the lexical match bias; set by
        # the tokenizer-aware caller (defaults to id 0 = padding).
        self.special_token_ids: set[int] = {0}

    def forward(self, input_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                pad_mask: np.ndarray | None = None) -> Tensor:
        """Return final hidden states (B, T, D)."""
        attention_mask = None
        if pad_mask is not None:
            attention_mask = padding_attention_mask(pad_mask)
        match_scores = None
        match_features = None
        if self.config.match_bias:
            table = self.embeddings.token.weight.data
            # One shared similarity matrix: cross_match_features reads
            # it, lexical_match_scores consumes it (mutates in place).
            similarity = token_similarity(table, input_ids)
            if segment_ids is not None:
                match_features = cross_match_features(
                    table, input_ids, segment_ids, self.special_token_ids,
                    similarity=similarity)
            match_scores = lexical_match_scores(
                table, input_ids, self.special_token_ids,
                similarity=similarity)
        hidden = self.embeddings(input_ids, segment_ids,
                                 match_features=match_features)
        return self.encoder(hidden, attention_mask=attention_mask,
                            match_scores=match_scores)

    def pooled_output(self, hidden: Tensor,
                      cls_index: int = 0) -> Tensor:
        """Tanh-pooled representation of the classification token."""
        cls_state = hidden[:, cls_index, :]
        if self.pooler is None:
            return cls_state
        return self.pooler(cls_state).tanh()

    def fused_pooled_output(self, hidden: np.ndarray,
                            cls_index: int = 0) -> np.ndarray:
        """Array twin of :meth:`pooled_output`, bit-identical."""
        cls_state = hidden[:, cls_index, :]
        if self.pooler is None:
            return cls_state
        # Raw ops, not fused.linear: the pooler must stay outside the
        # quantization dispatch and the kernel call counters.
        pooled = cls_state @ self.pooler.weight.data.T
        pooled += self.pooler.bias.data
        return np.tanh(pooled, out=pooled)


class BertPretrainingHeads(Module):
    """MLM vocabulary head (tied-style projection) and NSP head."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator,
                 with_nsp: bool = True):
        super().__init__()
        std = config.initializer_range
        self.transform = Linear(config.d_model, config.d_model, rng, std=std)
        self.transform_norm = LayerNorm(config.d_model,
                                        eps=config.layer_norm_eps)
        self.decoder = Linear(config.d_model, config.vocab_size, rng, std=std)
        self.nsp = (Linear(config.d_model, 2, rng, std=std)
                    if with_nsp else None)

    def mlm_logits(self, hidden: Tensor) -> Tensor:
        transformed = self.transform_norm(self.transform(hidden).gelu())
        return self.decoder(transformed)

    def nsp_logits(self, pooled: Tensor) -> Tensor:
        if self.nsp is None:
            raise RuntimeError("this model was built without an NSP head "
                               "(RoBERTa drops the NSP objective)")
        return self.nsp(pooled)
