"""Model configurations for the four transformer architectures.

The paper uses the smallest published checkpoints (BERT-base 12x768,
DistilBERT 6x768, ...).  Pure-numpy training cannot reach that scale, so
each architecture here keeps the paper's *relative* proportions — e.g.
DistilBERT has half BERT's layers and no token-type embeddings, RoBERTa
shares BERT's architecture — at a width that pre-trains in minutes on CPU.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["TransformerConfig", "ARCHITECTURES", "default_config"]


@dataclass
class TransformerConfig:
    """Hyperparameters of a transformer encoder.

    Attributes mirror the HuggingFace config fields the paper relies on.
    """

    arch: str = "bert"
    vocab_size: int = 800
    d_model: int = 64
    num_layers: int = 4
    num_heads: int = 4
    d_ff: int = 128
    max_position: int = 128
    type_vocab_size: int = 2
    dropout: float = 0.1
    layer_norm_eps: float = 1e-5
    initializer_range: float = 0.02
    # XLNet only: width of the relative position embedding table.
    rel_pos_clamp: int = 64
    # Pre-layer-norm residual blocks.  The original BERT is post-LN, but
    # post-LN optimization is notoriously slow/unstable at small scale
    # (Xiong et al., 2020); pre-LN is the standard small-model remedy and
    # is what this reproduction defaults to (documented in DESIGN.md).
    pre_norm: bool = True
    # Lexical match bias: seed every attention layer with a learnable-gain
    # token-similarity bias (normalized token-embedding dot products).
    # Large pre-trained models grow equivalent "matching heads"; at this
    # scale they must be seeded or token-identity comparison is never
    # learned (see DESIGN.md).  Disable for the paper-vanilla ablation.
    match_bias: bool = True

    def __post_init__(self):
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by "
                f"num_heads={self.num_heads}")
        if self.arch not in ARCHITECTURES:
            raise ValueError(f"unknown architecture {self.arch!r}; "
                             f"expected one of {sorted(ARCHITECTURES)}")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "TransformerConfig":
        return TransformerConfig(**payload)


# Relative proportions follow Table 4 of the paper: DistilBERT halves the
# layer count (and drops token-type embeddings / pooler), RoBERTa reuses
# the BERT-base architecture, XLNet matches BERT's size but adds relative
# position parameters.
ARCHITECTURES = ("bert", "roberta", "distilbert", "xlnet")


def default_config(arch: str, vocab_size: int,
                   d_model: int = 64, num_layers: int = 4,
                   num_heads: int = 4, max_position: int = 128,
                   dropout: float = 0.1) -> TransformerConfig:
    """Build the scaled-down analogue of each paper checkpoint."""
    if arch == "distilbert":
        num_layers = max(num_layers // 2, 1)   # "reduced by factor 2"
        type_vocab_size = 1                    # token-type embeddings removed
    elif arch == "xlnet":
        type_vocab_size = 3                    # A / B / CLS segment ids
    else:
        type_vocab_size = 2
    return TransformerConfig(
        arch=arch,
        vocab_size=vocab_size,
        d_model=d_model,
        num_layers=num_layers,
        num_heads=num_heads,
        d_ff=d_model * 2,
        max_position=max_position,
        type_vocab_size=type_vocab_size,
        dropout=dropout,
    )
