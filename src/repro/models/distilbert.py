"""DistilBERT (Sanh et al., 2019): a purged BERT student.

Per the paper: token-type embeddings and the pooler are removed and the
number of layers is halved; the model is then trained by knowledge
distillation from a BERT teacher (see ``repro.pretraining.distillation``)
with the triple loss (soft targets, MLM, cosine alignment)."""

from __future__ import annotations

import numpy as np

from ..nn import (Dropout, Embedding, LayerNorm, Linear, Module, Tensor,
                  fused, is_fused_enabled, padding_attention_mask)
from .config import TransformerConfig
from .transformer import (TransformerEncoder, cross_match_features,
                          lexical_match_scores, token_similarity)

__all__ = ["DistilBertModel", "DistilBertEmbeddings"]


class DistilBertEmbeddings(Module):
    """Token + position embeddings only — no token-type embeddings."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        std = config.initializer_range
        self.token = Embedding(config.vocab_size, config.d_model, rng, std=std)
        self.position = Embedding(config.max_position, config.d_model, rng,
                                  std=std)
        self.norm = LayerNorm(config.d_model, eps=config.layer_norm_eps)
        self.dropout = Dropout(config.dropout, rng)
        self.max_position = config.max_position
        self.match_proj = (Linear(4, config.d_model, rng, std=0.2,
                                  bias=False)
                           if config.match_bias else None)

    def forward(self, input_ids: np.ndarray,
                match_features: np.ndarray | None = None) -> Tensor:
        input_ids = np.asarray(input_ids)
        batch, seq = input_ids.shape
        if seq > self.max_position:
            raise ValueError(
                f"sequence length {seq} exceeds max_position "
                f"{self.max_position}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        if is_fused_enabled():
            return Tensor(self.fused_forward(input_ids, positions,
                                             match_features))
        total = self.token(input_ids) + self.position(positions)
        if match_features is not None and self.match_proj is not None:
            total = total + self.match_proj(Tensor(match_features))
        return self.dropout(self.norm(total))

    def fused_forward(self, input_ids: np.ndarray, positions: np.ndarray,
                      match_features: np.ndarray | None) -> np.ndarray:
        """No-tape array path, bit-identical to :meth:`forward` (dropout
        is identity while the tape is off)."""
        total = self.token.weight.data[input_ids]
        total = total + self.position.weight.data[positions]
        if match_features is not None and self.match_proj is not None:
            # Raw matmul, not fused.linear: keep this projection outside
            # the quantization dispatch and the kernel call counters.
            total += match_features @ self.match_proj.weight.data.T
        return fused.layer_norm(total, self.norm.weight.data,
                                self.norm.bias.data, eps=self.norm.eps)


class DistilBertModel(Module):
    """Half-depth BERT without segment embeddings or pooler."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        super().__init__()
        if config.arch != "distilbert":
            raise ValueError(
                f"expected arch='distilbert', got {config.arch!r}")
        self.config = config
        self.embeddings = DistilBertEmbeddings(config, rng)
        self.encoder = TransformerEncoder(config, rng)
        self.pooler = None  # removed in the student architecture
        self.special_token_ids: set[int] = {0}

    def forward(self, input_ids: np.ndarray,
                segment_ids: np.ndarray | None = None,
                pad_mask: np.ndarray | None = None) -> Tensor:
        # DistilBERT has no token-type embeddings; segment_ids are used
        # only to locate the two entities for the matchedness features.
        attention_mask = None
        if pad_mask is not None:
            attention_mask = padding_attention_mask(pad_mask)
        match_scores = None
        match_features = None
        if self.config.match_bias:
            table = self.embeddings.token.weight.data
            # One shared similarity matrix: cross_match_features reads
            # it, lexical_match_scores consumes it (mutates in place).
            similarity = token_similarity(table, input_ids)
            if segment_ids is not None:
                match_features = cross_match_features(
                    table, input_ids, segment_ids, self.special_token_ids,
                    similarity=similarity)
            match_scores = lexical_match_scores(
                table, input_ids, self.special_token_ids,
                similarity=similarity)
        hidden = self.embeddings(input_ids, match_features=match_features)
        return self.encoder(hidden, attention_mask=attention_mask,
                            match_scores=match_scores)

    def pooled_output(self, hidden: Tensor, cls_index: int = 0) -> Tensor:
        """No pooler: the raw CLS hidden state feeds the classifier."""
        return hidden[:, cls_index, :]

    def fused_pooled_output(self, hidden: np.ndarray,
                            cls_index: int = 0) -> np.ndarray:
        """Array twin of :meth:`pooled_output`, bit-identical."""
        return hidden[:, cls_index, :]
