"""The four transformer architectures of the paper plus shared blocks."""

from .bert import BertEmbeddings, BertModel, BertPretrainingHeads
from .config import ARCHITECTURES, TransformerConfig, default_config
from .distilbert import DistilBertModel
from .factory import build_backbone, build_pretraining_head
from .heads import SequenceClassifier
from .roberta import RobertaModel, RobertaPretrainingHead
from .transformer import (TransformerEncoder, TransformerEncoderLayer,
                          sinusoidal_positions)
from .xlnet import XLNetModel, XLNetRelativeAttention, permutation_masks

__all__ = [
    "TransformerConfig", "ARCHITECTURES", "default_config",
    "TransformerEncoder", "TransformerEncoderLayer", "sinusoidal_positions",
    "BertModel", "BertEmbeddings", "BertPretrainingHeads",
    "RobertaModel", "RobertaPretrainingHead",
    "DistilBertModel",
    "XLNetModel", "XLNetRelativeAttention", "permutation_masks",
    "SequenceClassifier",
    "build_backbone", "build_pretraining_head",
]
