"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table 3 statistics for the five benchmarks (optionally at a
    reduced scale).
``generate``
    Write one benchmark to a CSV file.
``pretrain``
    Build (or rebuild) the model-zoo checkpoint for an architecture.
``match``
    Fine-tune an architecture on a benchmark and report test F1.
    With ``--checkpoint-dir`` the run snapshots its full training state
    (resume with ``--resume`` or ``repro resume``).  With ``--cascade``
    a DistilBERT primary screens every pair first and only pairs inside
    the calibrated ambiguity band escalate to the named architecture.
``calibrate``
    Fit an architecture, calibrate int8 per-channel quantized weights on
    training pairs, gate decision consistency on a held-out slice, and
    save the artifact (non-zero exit if the gate fails).
``resume``
    Continue an interrupted ``match --checkpoint-dir`` run from its
    newest verifiable snapshot (bit-identical to the uninterrupted run).
``table``
    Regenerate Table 3, 5 or 6.
``figure``
    Regenerate one of Figures 10-14.
``telemetry``
    Render a report (spans, op-FLOP table, loss/F1 curves) from a
    telemetry JSONL file produced by ``match --telemetry``.
``obs``
    Serving observability tools; ``obs top`` renders the live terminal
    dashboard (queue depth, latency quantiles, error budget, slowest
    traces) from a ``/metrics`` endpoint (``--url``) or the
    deterministic virtual-clock demo (``--demo``).
``lint``
    Run the repo-specific static analysis rules over source paths
    (``--strict`` insists on the full catalog, concurrency rules
    included).
``audit``
    Report gradcheck/test coverage of Tensor ops and Module subclasses.
``races``
    Run the seeded schedule-exploration race scenarios under the
    runtime lockset detector; the ``fixture`` scenario must report its
    injected race, the production scenarios must run clean.
``check``
    Umbrella gate: strict lint + strict audit + race scenarios.
``dedupe``
    Deduplicate a record collection end to end: block with a chosen
    blocker, score candidates with the classical-similarity engine,
    cluster matches into stable entity ids and write the cluster
    artifact.
``bench``
    Run a benchmark suite; ``bench perf`` measures serial vs. fast
    ``match_many`` throughput and writes ``BENCH_perf.json``;
    ``bench serve`` replays seeded load through the micro-batching
    match service and writes ``BENCH_serve.json``;
    ``bench resilient`` measures availability under seeded chaos
    (naive client vs the fault-tolerance tier) and the tier's
    chaos-off overhead, writing ``BENCH_resilient.json``;
    ``bench blocking`` measures blocking recall vs. reduction on
    generated catalogs under an enforced 100k-scale gate, writing
    ``BENCH_blocking.json``.
``serve-bench``
    Shorthand for ``bench serve``.
"""

from __future__ import annotations

import argparse
import sys

from .data import benchmark_names, load_benchmark, save_dataset, \
    split_dataset
from .utils import child_rng

__all__ = ["main", "build_parser"]


def _scenario_names() -> tuple[str, ...]:
    from .analysis.concurrency import SCENARIO_NAMES
    return SCENARIO_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Entity matching with transformer architectures "
                    "(EDBT 2020) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print Table 3 statistics")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("generate", help="write a benchmark to CSV")
    p.add_argument("name", choices=benchmark_names())
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--variant", choices=["clean", "dirty", "textual"],
                   default=None)

    p = sub.add_parser("pretrain", help="build a model-zoo checkpoint")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--force", action="store_true")

    p = sub.add_parser("match", help="fine-tune and evaluate on a benchmark")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("dataset", choices=benchmark_names())
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write a JSONL telemetry event stream to PATH "
                        "(render it with `repro telemetry PATH`)")
    p.add_argument("--zoo-dir", default=None,
                   help="model-zoo cache directory (default: "
                        "REPRO_ZOO_DIR or ~/.cache/repro/zoo)")
    p.add_argument("--smoke", action="store_true",
                   help="use a tiny pre-training scale (CI smoke checks; "
                        "accuracy is meaningless at this scale)")
    p.add_argument("--checkpoint-dir", default=None,
                   help="snapshot full training state into this directory "
                        "(enables crash recovery and `repro resume`)")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   help="snapshot every N optimizer steps "
                        "(0 = epoch boundaries only)")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest snapshot in "
                        "--checkpoint-dir instead of starting fresh")
    p.add_argument("--no-fast", dest="fast", action="store_false",
                   help="disable the fused no-tape inference kernels "
                        "(evaluation falls back to op-by-op forwards; "
                        "useful for A/B-checking the fast path)")
    p.add_argument("--cascade", action="store_true",
                   help="run the confidence cascade: a DistilBERT "
                        "primary screens every pair and only ambiguous "
                        "ones escalate to ARCH (the band is calibrated "
                        "on the validation split to preserve F1)")

    p = sub.add_parser("calibrate",
                       help="calibrate int8 quantized weights for an "
                            "architecture and save the artifact")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("dataset", choices=benchmark_names())
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--pairs", type=int, default=64,
                   help="calibration sweep size; an equal held-out "
                        "slice gates decision consistency (default 64)")
    p.add_argument("--output", default=None,
                   help="artifact path (default: "
                        "<arch>-<dataset>-int8.npz)")
    p.add_argument("--zoo-dir", default=None,
                   help="model-zoo cache directory (default: "
                        "REPRO_ZOO_DIR or ~/.cache/repro/zoo)")
    p.add_argument("--smoke", action="store_true",
                   help="use a tiny pre-training scale (CI smoke checks; "
                        "accuracy is meaningless at this scale)")

    p = sub.add_parser("resume",
                       help="continue an interrupted `match "
                            "--checkpoint-dir` run")
    p.add_argument("checkpoint_dir",
                   help="directory previously passed to "
                        "`match --checkpoint-dir`")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write a JSONL telemetry event stream to PATH")
    p.add_argument("--zoo-dir", default=None,
                   help="model-zoo cache directory (default: "
                        "REPRO_ZOO_DIR or ~/.cache/repro/zoo)")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=[3, 5, 6])

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=[10, 11, 12, 13, 14])

    p = sub.add_parser("telemetry",
                       help="render a report from a telemetry JSONL file")
    p.add_argument("jsonl", help="path to a run's .jsonl event stream")

    p = sub.add_parser("obs", help="serving observability tools")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    t = obs_sub.add_parser(
        "top", help="terminal dashboard: queue depth, latency "
                    "quantiles, error budget, slowest traces")
    t.add_argument("--url", default=None,
                   help="scrape a MetricsHTTPServer, e.g. "
                        "http://127.0.0.1:9100")
    t.add_argument("--demo", action="store_true",
                   help="render the deterministic virtual-clock demo "
                        "workload instead of scraping")
    t.add_argument("--interval", type=float, default=2.0,
                   help="seconds between live redraws (default 2)")
    t.add_argument("--iterations", type=int, default=None,
                   help="render N frames then exit (default: loop on a "
                        "TTY, one snapshot otherwise)")
    t.add_argument("--snapshot", action="store_true",
                   help="force one-shot snapshot mode even on a TTY")

    p = sub.add_parser("lint", help="run the autodiff-aware linter")
    p.add_argument("paths", nargs="+",
                   help="files or directories to lint (e.g. src/)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run (e.g. "
                        "RA101,RA102); default: all")
    p.add_argument("--strict", action="store_true",
                   help="run the full rule catalog (incompatible with "
                        "--rules); the repo-wide self-lint gate")

    p = sub.add_parser("races",
                       help="run the lockset race-detection scenarios "
                            "under a seeded schedule explorer")
    p.add_argument("--seed", type=int, default=7,
                   help="schedule-exploration seed (default 7)")
    p.add_argument("--scenario", choices=sorted(_scenario_names()),
                   default=None,
                   help="run one scenario instead of the whole suite")
    p.add_argument("--format", choices=["text", "json"], default="text")

    p = sub.add_parser("check",
                       help="umbrella gate: strict lint + strict audit "
                            "+ race scenarios")
    p.add_argument("--tests", default="tests",
                   help="test-suite directory for the audit step")
    p.add_argument("--seed", type=int, default=7,
                   help="seed for the race scenarios")

    p = sub.add_parser("audit",
                       help="report test coverage of Tensor ops and "
                            "Module subclasses")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--tests", default="tests",
                   help="test-suite directory to cross-reference")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any op or module is uncovered")

    p = sub.add_parser("dedupe",
                       help="deduplicate a generated catalog end to end")
    p.add_argument("--records", type=int, default=5000,
                   help="generated catalog size (default 5000)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--blocker", default="minhash",
                   choices=["token", "sorted", "tfidf", "minhash"],
                   help="candidate generator (default minhash)")
    p.add_argument("--scorer", default="jaccard",
                   choices=["jaccard", "blend"],
                   help="similarity scorer: jaccard (fast) or blend "
                        "(jaccard+jaro-winkler+levenshtein)")
    p.add_argument("--threshold", type=float, default=0.5,
                   help="match probability cut (default 0.5)")
    p.add_argument("--candidate-batch", type=int, default=2048,
                   help="blocker emission batch size (default 2048)")
    p.add_argument("--output", default="clusters.json",
                   help="cluster artifact path (default clusters.json)")

    for name in ("bench", "serve-bench"):
        if name == "bench":
            p = sub.add_parser("bench", help="run a benchmark suite")
            p.add_argument("suite",
                           choices=["perf", "serve", "resilient",
                                    "blocking"],
                           help="perf: serial vs. fast match_many "
                                "throughput; serve: micro-batching "
                                "service throughput/latency under load; "
                                "resilient: availability under seeded "
                                "chaos plus the fault-tolerance tier's "
                                "chaos-off overhead; blocking: recall "
                                "vs. reduction of the blocker family on "
                                "generated catalogs")
        else:
            p = sub.add_parser(
                "serve-bench",
                help="shorthand for `bench serve`: micro-batching "
                     "service load benchmark")
            p.set_defaults(suite="serve")
        p.add_argument("--smoke", action="store_true",
                       help="few pairs, no acceptance enforcement (CI)")
        p.add_argument("--pairs", type=int, default=200,
                       help="number of record pairs to match (default 200)")
        p.add_argument("--batch-size", type=int, default=None,
                       help="inference batch size (default: 64 for the "
                            "perf suite, 32 otherwise)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--arch", default="bert",
                       choices=["bert", "roberta", "distilbert", "xlnet"],
                       help="architecture for the serve suite "
                            "(default bert; perf benches all four)")
        p.add_argument("--max-wait-ms", type=float, default=10.0,
                       help="serve suite: micro-batcher flush horizon "
                            "(default 10 ms)")
        p.add_argument("--requests", type=int, default=1000,
                       help="resilient suite: chaos-phase request count "
                            "(default 1000)")
        p.add_argument("--records", type=int, default=100_000,
                       help="blocking suite: gate-scale catalog size "
                            "(default 100000)")
        p.add_argument("--output", default=None,
                       help="report path (default: BENCH_<suite>.json)")
        p.add_argument("--zoo-dir", default=None,
                       help="model-zoo cache directory (default: "
                            "REPRO_ZOO_DIR or ~/.cache/repro/zoo)")

    return parser


def _cmd_datasets(args) -> int:
    from .evaluation import table3
    print(table3(scale=args.scale, seed=args.seed))
    return 0


def _cmd_generate(args) -> int:
    dataset = load_benchmark(args.name, seed=args.seed, scale=args.scale,
                             variant=args.variant)
    save_dataset(dataset, args.output)
    stats = dataset.stats()
    print(f"wrote {stats.size} pairs ({stats.num_matches} matches) "
          f"to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    from .pretraining import get_pretrained
    model = get_pretrained(args.arch, seed=args.seed,
                           force_retrain=args.force, log=print)
    source = "cache" if model.from_cache else "fresh pre-training"
    print(f"{args.arch}: {model.backbone.num_parameters():,} parameters "
          f"({source})")
    return 0


def _smoke_zoo_settings():
    from .pretraining import ZooSettings
    return ZooSettings(base_steps=25, base_examples=150,
                       tokenizer_sentences=150, vocab_size=220,
                       d_model=32, num_layers=2, num_heads=2,
                       max_position=64, seq_len=32)


def _run_match(arch: str, dataset: str, scale: float, epochs: int,
               seed: int, smoke: bool, zoo_dir, telemetry,
               checkpoint_dir=None, checkpoint_every: int = 25,
               resume: bool = False, fast: bool = True) -> int:
    import contextlib

    from .matching import EntityMatcher, FineTuneConfig
    from .nn import fused_kernels
    data = load_benchmark(dataset, seed=seed, scale=scale)
    splits = split_dataset(data, child_rng(seed, "split"))
    matcher = EntityMatcher(
        arch, finetune_config=FineTuneConfig(epochs=epochs),
        zoo_settings=_smoke_zoo_settings() if smoke else None,
        zoo_dir=zoo_dir)

    run = None
    callbacks = None
    if telemetry:
        from .obs import JsonlSink, TelemetryCallback, TelemetryRun
        run = TelemetryRun(JsonlSink(telemetry),
                           run_id=f"match-{arch}-{dataset}")
        run.emit("run_begin", command="match", arch=arch,
                 dataset=dataset, scale=scale,
                 epochs=epochs, seed=seed, smoke=smoke)
        callbacks = [TelemetryCallback(run)]

    resilience = None
    if checkpoint_dir:
        from .resilience import ResilienceConfig
        resilience = ResilienceConfig(
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
            run_context={"command": "match", "arch": arch,
                         "dataset": dataset, "scale": scale,
                         "epochs": epochs, "seed": seed, "smoke": smoke})

    # --no-fast: run every forward op-by-op (training is unaffected —
    # the fused kernels only ever activate with the tape off).
    guard = fused_kernels(False) if not fast else contextlib.nullcontext()
    with guard:
        matcher.fit(splits.train, splits.test, log=print,
                    callbacks=callbacks, resilience=resilience)
        metrics = matcher.evaluate(splits.test).as_percent()
    print(f"\n{arch} on {data.name}: F1 {metrics.f1:.1f} "
          f"(P {metrics.precision:.1f} / R {metrics.recall:.1f})")
    if run is not None:
        run.close()
        print(f"telemetry written to {telemetry}")
    return 0


def _cmd_match(args) -> int:
    if args.cascade:
        return _run_cascade(args)
    return _run_match(args.arch, args.dataset, args.scale, args.epochs,
                      args.seed, args.smoke, args.zoo_dir, args.telemetry,
                      checkpoint_dir=args.checkpoint_dir,
                      checkpoint_every=args.checkpoint_every,
                      resume=args.resume, fast=args.fast)


def _run_cascade(args) -> int:
    """``match --cascade``: DistilBERT screens, ARCH confirms."""
    from .matching import EntityMatcher, FineTuneConfig, build_cascade, \
        evaluate_predictions
    if args.arch == "distilbert":
        print("error: --cascade escalates from a DistilBERT primary; "
              "pick a stronger secondary (roberta, bert or xlnet)",
              file=sys.stderr)
        return 2
    data = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    splits = split_dataset(data, child_rng(args.seed, "split"))
    settings = _smoke_zoo_settings() if args.smoke else None

    def fitted(arch: str) -> EntityMatcher:
        print(f"fine-tuning {arch}:")
        matcher = EntityMatcher(
            arch, finetune_config=FineTuneConfig(epochs=args.epochs),
            zoo_settings=settings, zoo_dir=args.zoo_dir)
        matcher.fit(splits.train, splits.validation, log=print)
        return matcher

    primary = fitted("distilbert")
    secondary = fitted(args.arch)
    cascade = build_cascade(primary, secondary, splits.validation)
    band = cascade.calibration
    test_pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    outcomes = cascade.score_pairs(test_pairs)
    f1 = evaluate_predictions(
        splits.test.labels(), [o.matched for o in outcomes]).f1
    print(f"\ncascade distilbert -> {args.arch} on {data.name}: "
          f"F1 {f1 * 100.0:.1f}, band [{band.lo:.3f}, {band.hi:.3f}] "
          f"(validation escalation {band.escalation_rate * 100.0:.1f}%), "
          f"test escalation "
          f"{cascade.last_escalation_rate() * 100.0:.1f}%")
    return 0


def _cmd_calibrate(args) -> int:
    from .matching import EntityMatcher, FineTuneConfig
    data = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    splits = split_dataset(data, child_rng(args.seed, "split"))
    matcher = EntityMatcher(
        args.arch, finetune_config=FineTuneConfig(epochs=args.epochs),
        zoo_settings=_smoke_zoo_settings() if args.smoke else None,
        zoo_dir=args.zoo_dir)
    matcher.fit(splits.train, splits.validation, log=print)

    pairs = [(p.record_a, p.record_b) for p in splits.train.pairs]
    count = max(1, min(args.pairs, len(pairs) // 2 or 1))
    calibration = pairs[:count]
    holdout = pairs[count:2 * count] or calibration
    matcher.quantize(calibration)
    report = matcher.quantization_consistency(holdout)

    weights = matcher.quantized_weights
    output = args.output or f"{args.arch}-{args.dataset}-int8.npz"
    weights.save(output)
    print(f"calibrated {len(weights.layers)} layers on "
          f"{len(calibration)} pairs; artifact "
          f"{weights.nbytes / 1024:.0f} KiB -> {output}")
    print(f"decision consistency {report.consistency:.3f} on "
          f"{report.pairs} held-out pairs (max probability delta "
          f"{report.max_probability_delta:.2e})")
    if not report.passed():
        print("error: int8 decisions diverge from the float path on the "
              "held-out slice — artifact saved but not fit for serving",
              file=sys.stderr)
        return 1
    return 0


def _cmd_resume(args) -> int:
    from .nn import CheckpointError
    from .resilience import CheckpointManager
    manager = CheckpointManager(args.checkpoint_dir)
    if not manager.has_snapshot():
        print(f"error: no snapshots in {args.checkpoint_dir}",
              file=sys.stderr)
        return 1
    try:
        _, meta, path = manager.load_latest()
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    context = meta.get("run") or {}
    if context.get("command") != "match":
        print(f"error: {path} was not written by `repro match "
              f"--checkpoint-dir` (no run context); re-run the original "
              f"command with --resume instead", file=sys.stderr)
        return 1
    print(f"resuming {context['arch']} on {context['dataset']} from "
          f"{path.name} (step {meta.get('step', '?')})")
    return _run_match(context["arch"], context["dataset"],
                      float(context["scale"]), int(context["epochs"]),
                      int(context["seed"]), bool(context.get("smoke")),
                      args.zoo_dir, args.telemetry,
                      checkpoint_dir=args.checkpoint_dir,
                      resume=True)


def _cmd_table(args) -> int:
    from .evaluation import table3, table5, table6
    if args.number == 3:
        print(table3())
    elif args.number == 5:
        _, rendered = table5()
        print(rendered)
    else:
        _, rendered = table6()
        print(rendered)
    return 0


def _cmd_figure(args) -> int:
    from .evaluation import figure
    print(figure(args.number).rendered())
    return 0


def _cmd_telemetry(args) -> int:
    import json
    from .obs import load_report
    try:
        print(load_report(args.jsonl))
    except FileNotFoundError:
        print(f"error: no such telemetry file: {args.jsonl}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.jsonl} is not JSONL telemetry "
              f"(line {exc.lineno}: {exc.msg})", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args) -> int:
    from .obs.top import demo_state, gather_url, run_top
    if args.url and args.demo:
        print("error: --url and --demo are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.url:
        url = args.url

        def gather():
            return gather_url(url)
    elif args.demo:
        gather = demo_state
    else:
        print("error: choose a source: --demo or --url URL",
              file=sys.stderr)
        return 2
    try:
        return run_top(gather, interval=args.interval,
                       iterations=args.iterations,
                       live=False if args.snapshot else None)
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


def _cmd_lint(args) -> int:
    from .analysis import available_rules, format_json, format_text, \
        lint_paths
    if getattr(args, "strict", False) and args.rules:
        print("error: --strict runs the full catalog; drop --rules",
              file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",")}
        rules = [r for r in available_rules() if r.id in wanted]
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    violations = lint_paths(args.paths, rules=rules)
    renderer = format_json if args.format == "json" else format_text
    print(renderer(violations))
    return 1 if violations else 0


def _cmd_races(args) -> int:
    import json
    from .analysis.concurrency import run_races
    names = [args.scenario] if args.scenario else None
    result = run_races(seed=args.seed, scenarios=names)
    if args.format == "json":
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        for name, entry in result["scenarios"].items():
            status = "ok" if entry["passed"] else "FAIL"
            expected = ("race expected"
                        if entry["expect_race"] else "must run clean")
            print(f"[{status}] {name} ({expected}; seed {result['seed']})")
            for report in entry["races"]:
                print(f"    {report}")
    return 0 if result["passed"] else 1


def _cmd_check(args) -> int:
    """Umbrella gate: strict lint, strict audit, race scenarios."""
    from pathlib import Path
    failures = []
    lint_args = argparse.Namespace(
        paths=[str(Path(__file__).resolve().parent)], format="text",
        rules=None, strict=True)
    print("== lint --strict ==")
    if _cmd_lint(lint_args):
        failures.append("lint")
    print("== audit --strict ==")
    audit_args = argparse.Namespace(format="text", tests=args.tests,
                                    strict=True)
    if _cmd_audit(audit_args):
        failures.append("audit")
    print("== races ==")
    races_args = argparse.Namespace(seed=args.seed, scenario=None,
                                    format="text")
    if _cmd_races(races_args):
        failures.append("races")
    if failures:
        print(f"check failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("check passed: lint, audit, races")
    return 0


def _cmd_audit(args) -> int:
    from .analysis import audit_coverage
    report = audit_coverage(tests_root=args.tests)
    print(report.as_json() if args.format == "json" else report.as_text())
    if args.strict and not report.is_complete():
        return 1
    return 0


def _cmd_bench_serve(args) -> int:
    from .serve import (run_serve_benchmark, validate_serve_report,
                        write_serve_report)
    from .serve.bench import EFFICIENCY_FLOOR
    report = run_serve_benchmark(arch=args.arch, num_pairs=args.pairs,
                                 seed=args.seed, zoo_dir=args.zoo_dir,
                                 batch_size=args.batch_size,
                                 max_wait_ms=args.max_wait_ms,
                                 smoke=args.smoke)
    problems = validate_serve_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = write_serve_report(report,
                              args.output or "BENCH_serve.json")
    baseline = report["baseline"]
    print(f"serial baseline: {baseline['pairs_per_sec']:.1f} pairs/sec")
    for name, level in report["levels"].items():
        print(f"{name} load: {level['completed']}/{level['offered']} "
              f"completed at {level['throughput']:.1f} req/sec "
              f"(p50 {level['p50_latency_ms']:.1f} ms, "
              f"p95 {level['p95_latency_ms']:.1f} ms, "
              f"{level['rejected']} rejected, "
              f"{level['timeouts']} timed out)")
    acceptance = report["acceptance"]
    print(f"report written to {path}")
    if acceptance["enforced"] and not acceptance["passed"]:
        print(f"error: serving efficiency "
              f"{acceptance['efficiency_at_top_load']:.2f} below the "
              f"{EFFICIENCY_FLOOR} acceptance floor", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_resilient(args) -> int:
    from .serve import (run_resilient_benchmark, validate_resilient_report,
                        write_resilient_report)
    report = run_resilient_benchmark(arch=args.arch, num_pairs=args.pairs,
                                     seed=args.seed, zoo_dir=args.zoo_dir,
                                     batch_size=args.batch_size,
                                     max_wait_ms=args.max_wait_ms,
                                     num_requests=args.requests,
                                     smoke=args.smoke)
    problems = validate_resilient_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = write_resilient_report(report,
                                  args.output or "BENCH_resilient.json")
    overhead = report["overhead"]
    chaos = report["chaos"]
    print(f"chaos-off overhead: "
          f"{overhead['overhead_fraction'] * 100.0:.2f}% "
          f"(best of {overhead['cycles']} cycles, "
          f"median {overhead['median_overhead_fraction'] * 100.0:+.2f}%, "
          f"budget {overhead['budget'] * 100.0:.0f}%)")
    for side in ("naive", "resilient"):
        stats = chaos[side]
        print(f"{side} under chaos: {stats['completed']}/{stats['offered']} "
              f"completed ({stats['availability'] * 100.0:.2f}% "
              f"availability, {stats['rejected']} rejected, "
              f"{stats['timeouts']} timed out, {stats['errors']} errors)")
    print(f"{chaos['respawns']} replica respawn(s), "
          f"{chaos['retries']} retries spent")
    acceptance = report["acceptance"]
    print(f"report written to {path}")
    if acceptance["enforced"] and not acceptance["passed"]:
        print("error: resilience acceptance failed: "
              f"overhead {acceptance['overhead_fraction']:.3f} "
              f"(budget {acceptance['overhead_budget']}), "
              f"resilient availability "
              f"{acceptance['resilient_availability']:.4f} "
              f"(floor {acceptance['availability_floor']}), "
              f"naive availability {acceptance['naive_availability']:.4f} "
              f"(must be < {acceptance['naive_ceiling']})",
              file=sys.stderr)
        return 1
    return 0


def _cmd_dedupe(args) -> int:
    from .data.blocking import (MinHashLSHBlocker,
                                SortedNeighborhoodBlocker, TfIdfBlocker,
                                TokenBlocker)
    from .dedupe import (DedupeConfig, SimilarityEngine, dedupe_records,
                         generate_catalog, write_clusters)
    blockers = {
        "token": lambda: TokenBlocker(max_token_frequency=0.05),
        "sorted": lambda: SortedNeighborhoodBlocker("title", window=10),
        "tfidf": lambda: TfIdfBlocker(top_k=10, threshold=0.2),
        "minhash": lambda: MinHashLSHBlocker(seed=args.seed),
    }
    catalog = generate_catalog(args.records, seed=args.seed)
    result = dedupe_records(
        catalog.records, blockers[args.blocker](),
        SimilarityEngine(scorer=args.scorer),
        DedupeConfig(threshold=args.threshold,
                     candidate_batch=args.candidate_batch))
    write_clusters(args.output, result)
    print(f"{result.num_records} records -> {result.num_entities} "
          f"entities ({result.num_candidates} candidates scored, "
          f"{result.num_matches} matches, gold "
          f"{catalog.meta['num_entities']} entities)")
    print(f"clusters written to {args.output}")
    return 0


def _cmd_bench_blocking(args) -> int:
    from .dedupe.bench import (BlockingBenchConfig, run_blocking_benchmark,
                               validate_report, write_report)
    config = BlockingBenchConfig(num_records=args.records, seed=args.seed)
    report = run_blocking_benchmark(config, smoke=args.smoke)
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = args.output or "BENCH_blocking.json"
    write_report(report, path)
    acceptance = report["acceptance"]
    print(f"gate: PC {acceptance['pairs_completeness']:.4f} "
          f"(floor {acceptance['pairs_completeness_floor']}), "
          f"RR {acceptance['reduction_ratio']:.6f} "
          f"(floor {acceptance['reduction_ratio_floor']}), "
          f"streamed {acceptance['streamed']}")
    print(f"report written to {path}")
    if acceptance["enforced"] and not acceptance["passed"]:
        print("error: blocking acceptance failed", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args) -> int:
    if args.suite == "blocking":
        return _cmd_bench_blocking(args)
    if args.batch_size is None:
        # The fused path peaks at larger batches; the serve suites were
        # tuned (and their floors measured) at 32.
        args.batch_size = 64 if args.suite == "perf" else 32
    if args.suite == "serve":
        return _cmd_bench_serve(args)
    if args.suite == "resilient":
        return _cmd_bench_resilient(args)
    from .perf import run_perf_benchmark, validate_report, write_report
    report = run_perf_benchmark(num_pairs=args.pairs, seed=args.seed,
                                zoo_dir=args.zoo_dir,
                                batch_size=args.batch_size,
                                smoke=args.smoke)
    problems = validate_report(report)
    if problems:
        for problem in problems:
            print(f"error: invalid report: {problem}", file=sys.stderr)
        return 2
    path = write_report(report, args.output or "BENCH_perf.json")
    for arch, entry in report["architectures"].items():
        print(f"{arch}: {entry['baseline_pairs_per_sec']:.1f} -> "
              f"{entry['fast_pairs_per_sec']:.1f} pairs/sec "
              f"({entry['speedup']:.2f}x, cache hit rate "
              f"{entry['cache']['hit_rate']:.2f})")
        quantized = entry.get("quantized")
        if quantized:
            print(f"  int8: {quantized['pairs_per_sec']:.1f} pairs/sec, "
                  f"consistency {quantized['consistency']:.3f} "
                  f"(max prob delta "
                  f"{quantized['max_probability_delta']:.1e}), "
                  f"artifact {quantized['artifact_bytes'] / 1024:.0f} KiB")
    cascade = report.get("cascade")
    if cascade:
        band = cascade["band"]
        print(f"cascade {cascade['primary']} -> {cascade['secondary']}: "
              f"{cascade['pairs_per_sec']:.1f} pairs/sec "
              f"({cascade['aggregate_speedup']:.2f}x aggregate), "
              f"band [{band['lo']:.3f}, {band['hi']:.3f}], "
              f"escalation {cascade['escalation_rate'] * 100.0:.1f}%, "
              f"F1 {cascade['f1']['cascade']:.3f} vs "
              f"{cascade['f1']['secondary']:.3f} secondary-only")
    acceptance = report["acceptance"]
    print(f"report written to {path}")
    if acceptance["enforced"] and not acceptance["passed"]:
        failed = [f"{arch} speedup {gate['speedup']:.2f}x < {gate['floor']}x"
                  for arch, gate in acceptance["architectures"].items()
                  if not gate["passed"]]
        failed += [f"{arch} int8 consistency {gate['consistency']:.3f} < "
                   f"{gate['floor']}"
                   for arch, gate in acceptance["quantization"].items()
                   if not gate["passed"]]
        for key, label in (("cascade", "aggregate_speedup"),
                           ("f1", "delta")):
            gate = acceptance.get(key)
            if gate and not gate["passed"]:
                bound = gate.get("floor", gate.get("tolerance"))
                failed.append(f"cascade {label} {gate[label]:.3f} "
                              f"(bound {bound})")
        print(f"error: perf acceptance failed: {'; '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "pretrain": _cmd_pretrain,
    "match": _cmd_match,
    "calibrate": _cmd_calibrate,
    "resume": _cmd_resume,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "telemetry": _cmd_telemetry,
    "obs": _cmd_obs,
    "lint": _cmd_lint,
    "races": _cmd_races,
    "check": _cmd_check,
    "audit": _cmd_audit,
    "dedupe": _cmd_dedupe,
    "bench": _cmd_bench,
    "serve-bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
