"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table 3 statistics for the five benchmarks (optionally at a
    reduced scale).
``generate``
    Write one benchmark to a CSV file.
``pretrain``
    Build (or rebuild) the model-zoo checkpoint for an architecture.
``match``
    Fine-tune an architecture on a benchmark and report test F1.
``table``
    Regenerate Table 3, 5 or 6.
``figure``
    Regenerate one of Figures 10-14.
"""

from __future__ import annotations

import argparse
import sys

from .data import benchmark_names, load_benchmark, save_dataset, \
    split_dataset
from .utils import child_rng

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Entity matching with transformer architectures "
                    "(EDBT 2020) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print Table 3 statistics")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("generate", help="write a benchmark to CSV")
    p.add_argument("name", choices=benchmark_names())
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--variant", choices=["clean", "dirty", "textual"],
                   default=None)

    p = sub.add_parser("pretrain", help="build a model-zoo checkpoint")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--force", action="store_true")

    p = sub.add_parser("match", help="fine-tune and evaluate on a benchmark")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("dataset", choices=benchmark_names())
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=[3, 5, 6])

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=[10, 11, 12, 13, 14])

    return parser


def _cmd_datasets(args) -> int:
    from .evaluation import table3
    print(table3(scale=args.scale, seed=args.seed))
    return 0


def _cmd_generate(args) -> int:
    dataset = load_benchmark(args.name, seed=args.seed, scale=args.scale,
                             variant=args.variant)
    save_dataset(dataset, args.output)
    stats = dataset.stats()
    print(f"wrote {stats.size} pairs ({stats.num_matches} matches) "
          f"to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    from .pretraining import get_pretrained
    model = get_pretrained(args.arch, seed=args.seed,
                           force_retrain=args.force, log=print)
    source = "cache" if model.from_cache else "fresh pre-training"
    print(f"{args.arch}: {model.backbone.num_parameters():,} parameters "
          f"({source})")
    return 0


def _cmd_match(args) -> int:
    from .matching import EntityMatcher, FineTuneConfig
    data = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    splits = split_dataset(data, child_rng(args.seed, "split"))
    matcher = EntityMatcher(
        args.arch, finetune_config=FineTuneConfig(epochs=args.epochs))
    matcher.fit(splits.train, splits.test, log=print)
    metrics = matcher.evaluate(splits.test).as_percent()
    print(f"\n{args.arch} on {data.name}: F1 {metrics.f1:.1f} "
          f"(P {metrics.precision:.1f} / R {metrics.recall:.1f})")
    return 0


def _cmd_table(args) -> int:
    from .evaluation import table3, table5, table6
    if args.number == 3:
        print(table3())
    elif args.number == 5:
        _, rendered = table5()
        print(rendered)
    else:
        _, rendered = table6()
        print(rendered)
    return 0


def _cmd_figure(args) -> int:
    from .evaluation import figure
    print(figure(args.number).rendered())
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "pretrain": _cmd_pretrain,
    "match": _cmd_match,
    "table": _cmd_table,
    "figure": _cmd_figure,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
