"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    Print Table 3 statistics for the five benchmarks (optionally at a
    reduced scale).
``generate``
    Write one benchmark to a CSV file.
``pretrain``
    Build (or rebuild) the model-zoo checkpoint for an architecture.
``match``
    Fine-tune an architecture on a benchmark and report test F1.
``table``
    Regenerate Table 3, 5 or 6.
``figure``
    Regenerate one of Figures 10-14.
``telemetry``
    Render a report (spans, op-FLOP table, loss/F1 curves) from a
    telemetry JSONL file produced by ``match --telemetry``.
``lint``
    Run the repo-specific static analysis rules over source paths.
``audit``
    Report gradcheck/test coverage of Tensor ops and Module subclasses.
"""

from __future__ import annotations

import argparse
import sys

from .data import benchmark_names, load_benchmark, save_dataset, \
    split_dataset
from .utils import child_rng

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Entity matching with transformer architectures "
                    "(EDBT 2020) — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="print Table 3 statistics")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("generate", help="write a benchmark to CSV")
    p.add_argument("name", choices=benchmark_names())
    p.add_argument("output")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--variant", choices=["clean", "dirty", "textual"],
                   default=None)

    p = sub.add_parser("pretrain", help="build a model-zoo checkpoint")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--force", action="store_true")

    p = sub.add_parser("match", help="fine-tune and evaluate on a benchmark")
    p.add_argument("arch", choices=["bert", "roberta", "distilbert",
                                    "xlnet"])
    p.add_argument("dataset", choices=benchmark_names())
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write a JSONL telemetry event stream to PATH "
                        "(render it with `repro telemetry PATH`)")
    p.add_argument("--zoo-dir", default=None,
                   help="model-zoo cache directory (default: "
                        "REPRO_ZOO_DIR or ~/.cache/repro/zoo)")
    p.add_argument("--smoke", action="store_true",
                   help="use a tiny pre-training scale (CI smoke checks; "
                        "accuracy is meaningless at this scale)")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=[3, 5, 6])

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=[10, 11, 12, 13, 14])

    p = sub.add_parser("telemetry",
                       help="render a report from a telemetry JSONL file")
    p.add_argument("jsonl", help="path to a run's .jsonl event stream")

    p = sub.add_parser("lint", help="run the autodiff-aware linter")
    p.add_argument("paths", nargs="+",
                   help="files or directories to lint (e.g. src/)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule ids to run (e.g. "
                        "RA101,RA102); default: all")

    p = sub.add_parser("audit",
                       help="report test coverage of Tensor ops and "
                            "Module subclasses")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--tests", default="tests",
                   help="test-suite directory to cross-reference")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any op or module is uncovered")

    return parser


def _cmd_datasets(args) -> int:
    from .evaluation import table3
    print(table3(scale=args.scale, seed=args.seed))
    return 0


def _cmd_generate(args) -> int:
    dataset = load_benchmark(args.name, seed=args.seed, scale=args.scale,
                             variant=args.variant)
    save_dataset(dataset, args.output)
    stats = dataset.stats()
    print(f"wrote {stats.size} pairs ({stats.num_matches} matches) "
          f"to {args.output}")
    return 0


def _cmd_pretrain(args) -> int:
    from .pretraining import get_pretrained
    model = get_pretrained(args.arch, seed=args.seed,
                           force_retrain=args.force, log=print)
    source = "cache" if model.from_cache else "fresh pre-training"
    print(f"{args.arch}: {model.backbone.num_parameters():,} parameters "
          f"({source})")
    return 0


def _smoke_zoo_settings():
    from .pretraining import ZooSettings
    return ZooSettings(base_steps=25, base_examples=150,
                       tokenizer_sentences=150, vocab_size=220,
                       d_model=32, num_layers=2, num_heads=2,
                       max_position=64, seq_len=32)


def _cmd_match(args) -> int:
    from .matching import EntityMatcher, FineTuneConfig
    data = load_benchmark(args.dataset, seed=args.seed, scale=args.scale)
    splits = split_dataset(data, child_rng(args.seed, "split"))
    matcher = EntityMatcher(
        args.arch, finetune_config=FineTuneConfig(epochs=args.epochs),
        zoo_settings=_smoke_zoo_settings() if args.smoke else None,
        zoo_dir=args.zoo_dir)

    run = None
    callbacks = None
    if args.telemetry:
        from .obs import JsonlSink, TelemetryCallback, TelemetryRun
        run = TelemetryRun(JsonlSink(args.telemetry),
                           run_id=f"match-{args.arch}-{args.dataset}")
        run.emit("run_begin", command="match", arch=args.arch,
                 dataset=args.dataset, scale=args.scale,
                 epochs=args.epochs, seed=args.seed, smoke=args.smoke)
        callbacks = [TelemetryCallback(run)]

    matcher.fit(splits.train, splits.test, log=print, callbacks=callbacks)
    metrics = matcher.evaluate(splits.test).as_percent()
    print(f"\n{args.arch} on {data.name}: F1 {metrics.f1:.1f} "
          f"(P {metrics.precision:.1f} / R {metrics.recall:.1f})")
    if run is not None:
        run.close()
        print(f"telemetry written to {args.telemetry}")
    return 0


def _cmd_table(args) -> int:
    from .evaluation import table3, table5, table6
    if args.number == 3:
        print(table3())
    elif args.number == 5:
        _, rendered = table5()
        print(rendered)
    else:
        _, rendered = table6()
        print(rendered)
    return 0


def _cmd_figure(args) -> int:
    from .evaluation import figure
    print(figure(args.number).rendered())
    return 0


def _cmd_telemetry(args) -> int:
    import json
    from .obs import load_report
    try:
        print(load_report(args.jsonl))
    except FileNotFoundError:
        print(f"error: no such telemetry file: {args.jsonl}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.jsonl} is not JSONL telemetry "
              f"(line {exc.lineno}: {exc.msg})", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    from .analysis import available_rules, format_json, format_text, \
        lint_paths
    rules = None
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",")}
        rules = [r for r in available_rules() if r.id in wanted]
        unknown = wanted - {r.id for r in rules}
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    violations = lint_paths(args.paths, rules=rules)
    renderer = format_json if args.format == "json" else format_text
    print(renderer(violations))
    return 1 if violations else 0


def _cmd_audit(args) -> int:
    from .analysis import audit_coverage
    report = audit_coverage(tests_root=args.tests)
    print(report.as_json() if args.format == "json" else report.as_text())
    if args.strict and not report.is_complete():
        return 1
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "pretrain": _cmd_pretrain,
    "match": _cmd_match,
    "table": _cmd_table,
    "figure": _cmd_figure,
    "telemetry": _cmd_telemetry,
    "lint": _cmd_lint,
    "audit": _cmd_audit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
