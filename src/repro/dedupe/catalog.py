"""Seeded single-collection catalogs with known duplicate clusters.

The paper's generated *pair* datasets exercise the classifier; the
dedupe pipeline needs the upstream artifact instead — one flat record
collection where some records are noisy views of the same underlying
entity.  :func:`generate_catalog` builds that from the shared product
universe (:mod:`repro.data.generators.universe`): sample entities,
render 1..k noisy views of each, shuffle, and keep the gold entity
assignment so blocking recall and clustering accuracy are measurable
exactly.

Distinct entities are resampled until their (brand, model code) pair is
unique — the generator's universe is small enough that two independent
entities can otherwise collide into near-identical records, which would
make the *gold* clustering wrong rather than the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.generators._base import (NoiseProfile, apply_text_noise,
                                     drift_code)
from ..data.generators.universe import sample_product
from ..data.records import Record

__all__ = ["Catalog", "generate_catalog", "CATALOG_SCHEMA",
           "catalog_noise_profile"]

#: Default attribute schema for generated catalog records.  No free-text
#: description: catalog dedup keys on titles and structured fields.
CATALOG_SCHEMA = ("title", "brand", "modelno", "price")


def catalog_noise_profile() -> NoiseProfile:
    """Noise knobs for duplicate views of one catalog entity.

    Gentler than the pair-dataset default: duplicate listings of one
    product differ by formatting drift and the odd typo, not by
    wholesale rewrites.  (Crank the probabilities up to stress-test
    blocking recall.)
    """
    return NoiseProfile(p_synonym=0.15, p_typo=0.02, p_drop_word=0.05,
                        p_missing_attr=0.03, p_code_drift=0.35)


@dataclass
class Catalog:
    """A record collection with its gold entity assignment."""

    records: list[Record]
    entity_ids: list[int]
    seed: int = 0
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def gold_pairs(self) -> set[tuple[int, int]]:
        """All true duplicate pairs ``(i, j)`` with ``i < j``."""
        members: dict[int, list[int]] = {}
        for index, entity in enumerate(self.entity_ids):
            members.setdefault(entity, []).append(index)
        pairs: set[tuple[int, int]] = set()
        for indices in members.values():
            for a, i in enumerate(indices):
                for j in indices[a + 1:]:
                    pairs.add((i, j))
        return pairs

    def gold_labels(self) -> list[int]:
        """Gold clustering in stable min-index label form."""
        minimum: dict[int, int] = {}
        for index, entity in enumerate(self.entity_ids):
            if entity not in minimum:
                minimum[entity] = index
        return [minimum[entity] for entity in self.entity_ids]


def _render_view(entity, profile: NoiseProfile,
                 rng: np.random.Generator) -> Record:
    """One noisy catalog view of a product entity."""
    title = (f"{entity.brand} {entity.ptype} {entity.model_code} "
             f"{entity.color}")
    values = {
        "title": apply_text_noise(title, profile, rng),
        "brand": entity.brand,
        "modelno": drift_code(entity.model_code, rng,
                              profile.p_code_drift),
        "price": f"{entity.price:.2f}",
    }
    for attribute in list(values):
        if values[attribute] and rng.random() < profile.p_missing_attr:
            values[attribute] = ""
    return Record({a: values.get(a, "") for a in CATALOG_SCHEMA})


def generate_catalog(num_records: int, seed: int = 0,
                     duplicate_rate: float = 0.3,
                     max_duplicates: int = 4,
                     profile: NoiseProfile | None = None) -> Catalog:
    """A seeded catalog of ~``num_records`` records with gold clusters.

    ``duplicate_rate`` is the fraction of records that are extra views
    of an already-emitted entity; each duplicated entity gets between
    one and ``max_duplicates`` extra views.  Records are shuffled with
    the same seed, so the function is a pure function of its arguments.
    """
    if num_records < 1:
        raise ValueError(f"num_records must be >= 1, got {num_records}")
    if not 0.0 <= duplicate_rate < 1.0:
        raise ValueError("duplicate_rate must be in [0, 1)")
    if max_duplicates < 1:
        raise ValueError("max_duplicates must be >= 1")
    profile = profile if profile is not None else catalog_noise_profile()
    rng = np.random.default_rng(seed)
    records: list[Record] = []
    entity_ids: list[int] = []
    taken: set[tuple[str, str]] = set()
    entity_count = 0
    while len(records) < num_records:
        entity = sample_product(rng)
        key = (entity.brand, entity.model_code)
        if key in taken:
            continue
        taken.add(key)
        views = 1
        if rng.random() < duplicate_rate:
            views += int(rng.integers(1, max_duplicates + 1))
        views = min(views, num_records - len(records))
        for _ in range(views):
            records.append(_render_view(entity, profile, rng))
            entity_ids.append(entity_count)
        entity_count += 1
    order = rng.permutation(len(records))
    return Catalog(
        records=[records[i] for i in order],
        entity_ids=[entity_ids[i] for i in order],
        seed=seed,
        meta={"num_records": len(records), "num_entities": entity_count,
              "duplicate_rate": duplicate_rate,
              "max_duplicates": max_duplicates},
    )
