"""Connected-components clustering of match edges into entity ids.

The matcher emits pairwise decisions; deduplication needs a partition.
The bridge is transitive closure: records joined by any chain of match
edges share one entity.  :class:`UnionFind` maintains that closure
incrementally (so the dedupe pipeline can fold in edges batch by batch
without holding the full edge list), and :func:`connected_components`
is the one-shot form.  Entity ids are *stable*: each cluster is labeled
by its minimum record index, so the same edge set always yields the
same ids regardless of edge arrival order.

:func:`adjusted_rand_index` scores a recovered clustering against gold
(Hubert & Arabie 1985) — 1.0 is exact recovery, ~0.0 is chance level.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

__all__ = ["UnionFind", "connected_components", "adjusted_rand_index"]


class UnionFind:
    """Disjoint sets over ``0 .. size-1`` with path compression.

    Union by size keeps find amortized near-constant; labeling is
    deferred to :meth:`labels`, which canonicalizes every cluster to
    its minimum member so output is independent of union order.
    """

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._parent = list(range(size))
        self._size = [1] * size

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, index: int) -> int:
        root = index
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[index] != root:
            self._parent[index], index = root, self._parent[index]
        return root

    def union(self, a: int, b: int) -> bool:
        """Join the sets of ``a`` and ``b``; True if they were separate."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def labels(self) -> list[int]:
        """Entity id per record: the minimum index in its cluster."""
        minimum: dict[int, int] = {}
        for index in range(len(self._parent)):
            root = self.find(index)
            if root not in minimum or index < minimum[root]:
                minimum[root] = index
        return [minimum[self.find(index)]
                for index in range(len(self._parent))]


def connected_components(size: int,
                         edges: Iterable[tuple[int, int]]) -> list[int]:
    """Stable entity ids from an edge set (transitive closure)."""
    forest = UnionFind(size)
    for a, b in edges:
        forest.union(a, b)
    return forest.labels()


def adjusted_rand_index(labels_a: list[int], labels_b: list[int]) -> float:
    """Chance-corrected agreement of two clusterings of the same items."""
    if len(labels_a) != len(labels_b):
        raise ValueError(
            f"clusterings disagree on size: {len(labels_a)} vs "
            f"{len(labels_b)}")
    n = len(labels_a)
    if n < 2:
        return 1.0
    contingency: dict[tuple[int, int], int] = defaultdict(int)
    count_a: dict[int, int] = defaultdict(int)
    count_b: dict[int, int] = defaultdict(int)
    for a, b in zip(labels_a, labels_b):
        contingency[(a, b)] += 1
        count_a[a] += 1
        count_b[b] += 1

    def _pairs(count: int) -> int:
        return count * (count - 1) // 2

    index = sum(_pairs(c) for c in contingency.values())
    sum_a = sum(_pairs(c) for c in count_a.values())
    sum_b = sum(_pairs(c) for c in count_b.values())
    total = _pairs(n)
    expected = sum_a * sum_b / total if total else 0.0
    maximum = (sum_a + sum_b) / 2.0
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)
