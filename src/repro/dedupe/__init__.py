"""End-to-end deduplication: blocking, scoring, clustering, benchmark.

The layer that turns "classify given pairs" into "deduplicate a raw
catalog": candidates come from :mod:`repro.data.blocking`, scores from
any ``score_pairs`` engine (the transformer :class:`MatchEngine`, the
:class:`CascadeEngine`, or the model-free :class:`SimilarityEngine`
here), and match edges transitively cluster into stable entity ids.
"""

from .catalog import (CATALOG_SCHEMA, Catalog, catalog_noise_profile,
                      generate_catalog)
from .cluster import UnionFind, adjusted_rand_index, connected_components
from .pipeline import (DedupeConfig, DedupeResult, dedupe_records,
                       load_clusters, write_clusters)
from .similarity import SimilarityEngine

__all__ = [
    "Catalog", "generate_catalog", "catalog_noise_profile",
    "CATALOG_SCHEMA",
    "UnionFind", "connected_components", "adjusted_rand_index",
    "DedupeConfig", "DedupeResult", "dedupe_records",
    "write_clusters", "load_clusters",
    "SimilarityEngine",
]
