"""Model-free scoring engine speaking the ``score_pairs`` protocol.

The dedupe pipeline scores blocked candidates through any object with
the :meth:`repro.matching.MatchEngine.score_pairs` signature — the
transformer engine, the cascade, or this one.  :class:`SimilarityEngine`
answers with classical string similarity, which makes a full 100k-record
dedupe run feasible without a fitted model (and gives the benchmark an
engine whose cost doesn't drown the blocking measurements).
"""

from __future__ import annotations

from contextlib import ExitStack

from ..data.records import Record
from ..resilience.fallback import MatchOutcome, fallback_probability

__all__ = ["SimilarityEngine"]


def _text(entity, attributes: list[str] | None) -> str:
    record = entity if isinstance(entity, Record) else Record(dict(entity))
    return record.text_blob(attributes)


def _jaccard(text_a: str, text_b: str) -> float:
    tokens_a = set(text_a.lower().split())
    tokens_b = set(text_b.lower().split())
    if not tokens_a and not tokens_b:
        return 0.0
    union = len(tokens_a | tokens_b)
    return len(tokens_a & tokens_b) / union if union else 0.0


class SimilarityEngine:
    """Score record pairs by classical string similarity.

    Parameters
    ----------
    attributes:
        Attributes serialized into the compared text (None = all).
    scorer:
        ``"blend"`` uses :func:`repro.resilience.fallback_probability`
        (Jaccard + Jaro-Winkler + Levenshtein — the degraded-matching
        blend, accurate but O(len^2) per pair); ``"jaccard"`` uses
        token-set overlap only (linear, the 100k-scale choice).
    """

    def __init__(self, attributes: list[str] | None = None,
                 scorer: str = "blend"):
        if scorer not in ("blend", "jaccard"):
            raise ValueError(f"unknown scorer {scorer!r}")
        self.attributes = attributes
        self.scorer = scorer

    def _probability(self, entity_a, entity_b) -> float:
        text_a = _text(entity_a, self.attributes)
        text_b = _text(entity_b, self.attributes)
        if self.scorer == "jaccard":
            return _jaccard(text_a, text_b)
        return fallback_probability(text_a, text_b)

    def score_pairs(self, pairs, threshold: float = 0.5,
                    fallback: bool = True, cb=None, batch_size: int = 64,
                    keys=None, forward_hook=None,
                    stages=None) -> list[MatchOutcome]:
        """Score ``pairs``; one :class:`MatchOutcome` per pair, in order.

        Mirrors :meth:`repro.matching.MatchEngine.score_pairs`:
        ``keys`` become outcome indices, a failing pair degrades to a
        zero-probability outcome instead of aborting the batch, and
        ``stages`` receives one clock-timed ``similarity`` record.
        ``fallback`` / ``cb`` / ``forward_hook`` are accepted for
        protocol compatibility (there is no model path to fall back
        from or hook into).
        """
        del fallback, cb, batch_size, forward_hook
        pairs = list(pairs)
        keys = list(keys) if keys is not None else list(range(len(pairs)))
        if len(keys) != len(pairs):
            raise ValueError(f"{len(pairs)} pairs but {len(keys)} keys")
        outcomes: list[MatchOutcome] = []
        with ExitStack() as scope:
            if stages is not None:
                scope.enter_context(stages.stage("similarity",
                                                 pairs=len(pairs)))
            for key, (entity_a, entity_b) in zip(keys, pairs):
                try:
                    probability = self._probability(entity_a, entity_b)
                    outcomes.append(MatchOutcome(
                        index=key, probability=probability,
                        matched=probability >= threshold))
                except Exception as error:  # isolate per-pair failures
                    outcomes.append(MatchOutcome(
                        index=key, probability=0.0, matched=False,
                        degraded=True,
                        error=f"{type(error).__name__}: {error}"))
        return outcomes
