"""End-to-end deduplication: block → score → cluster.

:func:`dedupe_records` turns a raw record collection into stable entity
ids in three streamed stages:

1. **block** — a :class:`repro.data.Blocker` emits candidate pairs in
   bounded batches (self-join mode, never the cross product);
2. **score** — each batch is scored through any engine speaking the
   ``score_pairs`` protocol (:class:`repro.matching.MatchEngine` via
   :meth:`EntityMatcher.engine`, :class:`repro.matching.CascadeEngine`,
   or the model-free :class:`repro.dedupe.SimilarityEngine`);
3. **cluster** — match edges fold into a :class:`UnionFind`
   incrementally, and the transitive closure becomes min-index entity
   ids.

Peak memory is the blocker's index plus one candidate batch: the
pipeline holds at most ``config.candidate_batch`` pairs at a time and
records the high-water mark (``DedupeResult.max_candidate_batch``) as
evidence.  Metrics land under ``blocking.*`` / ``dedupe.*`` in the obs
registry; each stage runs inside a trace span.  Cluster artifacts are
written atomically in a canonical form, so identical runs produce
byte-identical files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..data.blocking import Blocker
from ..obs import default_registry
from ..obs.tracing import trace
from ..utils import atomic_write_text
from .cluster import UnionFind

__all__ = ["DedupeConfig", "DedupeResult", "dedupe_records",
           "write_clusters", "load_clusters"]

#: Artifact schema version for cluster files.
CLUSTERS_SCHEMA = 1


@dataclass(frozen=True)
class DedupeConfig:
    """Knobs for one dedupe run."""

    threshold: float = 0.5        # match probability cut
    batch_size: int = 64          # engine micro-batch
    candidate_batch: int = 2048   # blocker emission batch
    fallback: bool = True         # engine degradation on per-pair failure

    def __post_init__(self):
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}")
        if self.batch_size < 1 or self.candidate_batch < 1:
            raise ValueError("batch sizes must be >= 1")


@dataclass
class DedupeResult:
    """Outcome of one :func:`dedupe_records` run."""

    num_records: int
    num_candidates: int
    num_matches: int
    num_degraded: int
    entity_ids: list[int]
    threshold: float
    max_candidate_batch: int = 0  # streaming high-water mark
    batches: int = 0

    @property
    def num_entities(self) -> int:
        return len(set(self.entity_ids))

    def clusters(self) -> dict[int, list[int]]:
        """Entity id → sorted member record indices."""
        members: dict[int, list[int]] = {}
        for index, entity in enumerate(self.entity_ids):
            members.setdefault(entity, []).append(index)
        return {entity: sorted(indices)
                for entity, indices in sorted(members.items())}


def dedupe_records(records, blocker: Blocker, engine,
                   config: DedupeConfig | None = None,
                   registry=None, cb=None) -> DedupeResult:
    """Deduplicate one record collection into stable entity ids.

    ``engine`` is anything with the ``score_pairs(pairs, threshold=...,
    fallback=..., batch_size=..., keys=...)`` protocol.  ``cb``, when
    given, is called as ``cb(batch_index, scored_pairs)`` after each
    candidate batch — progress reporting for long runs.
    """
    config = config if config is not None else DedupeConfig()
    registry = registry if registry is not None else default_registry()
    records = list(records)
    forest = UnionFind(len(records))
    num_candidates = 0
    num_matches = 0
    num_degraded = 0
    batches = 0
    high_water = 0
    with trace("dedupe", records=len(records)):
        with trace("dedupe.block_score"):
            stream = blocker.iter_candidates(
                records, batch_size=config.candidate_batch)
            for batch_index, batch in enumerate(stream):
                batches += 1
                high_water = max(high_water, len(batch))
                num_candidates += len(batch)
                registry.counter("blocking.candidates").inc(len(batch))
                registry.counter("blocking.batches").inc()
                pairs = [(records[c.index_a], records[c.index_b])
                         for c in batch]
                outcomes = engine.score_pairs(
                    pairs, threshold=config.threshold,
                    fallback=config.fallback,
                    batch_size=config.batch_size,
                    keys=list(range(len(pairs))))
                registry.counter("dedupe.pairs_scored").inc(len(outcomes))
                for candidate, outcome in zip(batch, outcomes):
                    if outcome.degraded:
                        num_degraded += 1
                        registry.counter("dedupe.degraded").inc()
                    if outcome.matched:
                        num_matches += 1
                        forest.union(candidate.index_a, candidate.index_b)
                registry.counter("dedupe.matches").inc(
                    sum(1 for o in outcomes if o.matched))
                if cb is not None:
                    cb(batch_index, len(outcomes))
        with trace("dedupe.cluster"):
            entity_ids = forest.labels()
    result = DedupeResult(
        num_records=len(records), num_candidates=num_candidates,
        num_matches=num_matches, num_degraded=num_degraded,
        entity_ids=entity_ids, threshold=config.threshold,
        max_candidate_batch=high_water, batches=batches)
    registry.gauge("dedupe.entities").set(result.num_entities)
    registry.gauge("dedupe.records").set(len(records))
    return result


def write_clusters(path: str | Path, result: DedupeResult) -> dict:
    """Write a cluster artifact atomically, in canonical form.

    Canonical means sorted keys, fixed separators and no timings or
    timestamps — two runs over the same input produce byte-identical
    files (the determinism contract the tests enforce).
    """
    payload = {
        "schema": CLUSTERS_SCHEMA,
        "num_records": result.num_records,
        "num_entities": result.num_entities,
        "num_candidates": result.num_candidates,
        "num_matches": result.num_matches,
        "num_degraded": result.num_degraded,
        "threshold": result.threshold,
        "max_candidate_batch": result.max_candidate_batch,
        "entity_ids": result.entity_ids,
        "clusters": {str(k): v for k, v in result.clusters().items()},
    }
    text = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"
    atomic_write_text(Path(path), text)
    return payload


def load_clusters(path: str | Path) -> dict:
    """Read a cluster artifact back."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CLUSTERS_SCHEMA:
        raise ValueError(
            f"unsupported clusters schema {payload.get('schema')!r}")
    return payload
