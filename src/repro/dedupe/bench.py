"""Blocking benchmark: recall vs. reduction under an enforced gate.

Blocking trades candidate volume against match recall; this benchmark
measures exactly that trade-off and enforces the production floor
(``BlockingGates``): on a seeded 100k-record generated catalog, the
MinHash-LSH blocker must reach **pairs-completeness >= 0.95** at
**reduction ratio >= 0.99** — i.e. find at least 95% of true duplicate
pairs while pruning at least 99% of the ~5e9-pair cross product — and
an end-to-end ``repro dedupe`` run over the same catalog must complete
while streaming (its high-water candidate batch bounded by the
configured emission batch, evidence the cross product was never
materialized).

A small-scale comparison table also runs all four blockers side by
side, feeding the README trade-off table.  The report is written to
``BENCH_blocking.json`` with ``"schema": 1``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..data.blocking import (MinHashLSHBlocker, SortedNeighborhoodBlocker,
                             TfIdfBlocker, TokenBlocker)
from ..utils import atomic_write_text
from .catalog import generate_catalog
from .pipeline import DedupeConfig, dedupe_records
from .similarity import SimilarityEngine

__all__ = ["BlockingGates", "BlockingBenchConfig",
           "run_blocking_benchmark", "validate_report", "write_report"]

SCHEMA_VERSION = 1
_REPORT_KEYS = ("benchmark", "schema", "smoke", "config", "comparison",
                "gate", "dedupe", "acceptance")


@dataclass(frozen=True)
class BlockingGates:
    """Acceptance floors for the 100k-scale MinHash-LSH gate."""

    pairs_completeness: float = 0.95
    reduction_ratio: float = 0.99

    def as_dict(self) -> dict:
        return {"pairs_completeness": self.pairs_completeness,
                "reduction_ratio": self.reduction_ratio}


@dataclass(frozen=True)
class BlockingBenchConfig:
    """Benchmark shape knobs."""

    num_records: int = 100_000     # gate-scale catalog
    comparison_records: int = 2_000  # 4-blocker side-by-side scale
    seed: int = 7
    candidate_batch: int = 4096
    threshold: float = 0.5
    gates: BlockingGates = field(default_factory=BlockingGates)


def _gate_blocker(seed: int) -> MinHashLSHBlocker:
    """The tuned gate configuration: 128 perms in 32 bands of 4."""
    return MinHashLSHBlocker(num_permutations=128, band_size=4,
                             seed=seed, shingle_size=3)


def _comparison_blockers(seed: int) -> list[tuple[str, object]]:
    return [
        ("token", TokenBlocker(max_token_frequency=0.05)),
        ("sorted_neighborhood",
         SortedNeighborhoodBlocker("title", window=10)),
        ("tfidf", TfIdfBlocker(top_k=10, threshold=0.2)),
        ("minhash_lsh", _gate_blocker(seed)),
    ]


def _measure(blocker, catalog, candidate_batch: int) -> dict:
    """Stream one blocker over a catalog; quality + timing + volume."""
    gold = catalog.gold_pairs()
    found = 0
    num_candidates = 0
    high_water = 0
    start = time.perf_counter()
    for batch in blocker.iter_candidates(catalog.records,
                                         batch_size=candidate_batch):
        high_water = max(high_water, len(batch))
        num_candidates += len(batch)
        for pair in batch:
            if (pair.index_a, pair.index_b) in gold:
                found += 1
    elapsed = time.perf_counter() - start
    n = len(catalog.records)
    cross = n * (n - 1) // 2
    # Streaming counterpart of evaluate_blocking: candidates are counted
    # and intersected with gold on the fly, never collected into a set.
    completeness = (found / len(gold)) if gold else 1.0
    reduction = (1.0 - num_candidates / cross) if cross else 1.0
    return {
        "pairs_completeness": round(completeness, 6),
        "reduction_ratio": round(reduction, 6),
        "num_candidates": num_candidates,
        "gold_pairs": len(gold),
        "seconds": round(elapsed, 3),
        "max_candidate_batch": high_water,
        "records": n,
        "cross_product": cross,
    }


def run_blocking_benchmark(config: BlockingBenchConfig | None = None,
                           smoke: bool = False,
                           log=print) -> dict:
    """Run the full blocking benchmark and return the report dict.

    ``smoke=True`` shrinks both catalogs so the whole thing runs in
    seconds (used by the test suite and ``--smoke`` CLI runs); the
    acceptance block then reports ``enforced: false``.
    """
    config = config if config is not None else BlockingBenchConfig()
    num_records = 2_000 if smoke else config.num_records
    comparison_records = 400 if smoke else config.comparison_records

    log(f"blocking bench: comparison at {comparison_records} records")
    small = generate_catalog(comparison_records, seed=config.seed)
    comparison = {}
    for name, blocker in _comparison_blockers(config.seed):
        comparison[name] = _measure(blocker, small, config.candidate_batch)
        log(f"  {name}: PC {comparison[name]['pairs_completeness']:.3f} "
            f"RR {comparison[name]['reduction_ratio']:.4f} "
            f"({comparison[name]['num_candidates']} candidates, "
            f"{comparison[name]['seconds']}s)")

    log(f"blocking bench: MinHash-LSH gate at {num_records} records")
    large = generate_catalog(num_records, seed=config.seed)
    gate = _measure(_gate_blocker(config.seed), large,
                    config.candidate_batch)
    log(f"  gate: PC {gate['pairs_completeness']:.4f} "
        f"RR {gate['reduction_ratio']:.6f} in {gate['seconds']}s")

    log("blocking bench: end-to-end dedupe over the gate catalog")
    start = time.perf_counter()
    result = dedupe_records(
        large.records, _gate_blocker(config.seed),
        SimilarityEngine(scorer="jaccard"),
        DedupeConfig(threshold=config.threshold,
                     candidate_batch=config.candidate_batch))
    dedupe_seconds = time.perf_counter() - start
    streaming_ok = result.max_candidate_batch <= config.candidate_batch
    dedupe = {
        "records": result.num_records,
        "candidates": result.num_candidates,
        "matches": result.num_matches,
        "entities": result.num_entities,
        "gold_entities": large.meta["num_entities"],
        "degraded": result.num_degraded,
        "seconds": round(dedupe_seconds, 3),
        "max_candidate_batch": result.max_candidate_batch,
        "candidate_batch_limit": config.candidate_batch,
        "streamed": streaming_ok,
    }
    log(f"  dedupe: {result.num_entities} entities from "
        f"{result.num_records} records in {dedupe_seconds:.1f}s "
        f"(gold {large.meta['num_entities']})")

    gates = config.gates
    passed = (gate["pairs_completeness"] >= gates.pairs_completeness
              and gate["reduction_ratio"] >= gates.reduction_ratio
              and streaming_ok)
    report = {
        "benchmark": "blocking",
        "schema": SCHEMA_VERSION,
        "smoke": bool(smoke),
        "config": {"num_records": num_records,
                   "comparison_records": comparison_records,
                   "seed": config.seed,
                   "candidate_batch": config.candidate_batch,
                   "threshold": config.threshold,
                   "gates": gates.as_dict()},
        "comparison": comparison,
        "gate": gate,
        "dedupe": dedupe,
        "acceptance": {
            "enforced": not smoke,
            "passed": bool(passed),
            "pairs_completeness": gate["pairs_completeness"],
            "pairs_completeness_floor": gates.pairs_completeness,
            "reduction_ratio": gate["reduction_ratio"],
            "reduction_ratio_floor": gates.reduction_ratio,
            "streamed": streaming_ok,
        },
    }
    return report


def validate_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in _REPORT_KEYS:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("benchmark") != "blocking":
        problems.append("benchmark field must be 'blocking'")
    if report.get("schema") != SCHEMA_VERSION:
        problems.append(f"schema field must be {SCHEMA_VERSION}, "
                        f"got {report.get('schema')!r}")
    acceptance = report.get("acceptance", {})
    for key in ("enforced", "passed", "pairs_completeness",
                "reduction_ratio", "streamed"):
        if key not in acceptance:
            problems.append(f"missing acceptance key {key!r}")
    return problems


def write_report(report: dict, path: str | Path) -> None:
    """Validate and atomically write the benchmark report."""
    problems = validate_report(report)
    if problems:
        raise ValueError("invalid blocking report: " + "; ".join(problems))
    atomic_write_text(Path(path), json.dumps(report, indent=2,
                                             sort_keys=True) + "\n")
