"""Deterministic fault injection for the training loops.

Every recovery path in :mod:`repro.resilience` is only trustworthy if a
test can make the corresponding fault happen on demand.  The chaos
harness injects three fault families, each pinned to explicit global
step numbers so runs are reproducible:

* **NaN gradients** — poisons one parameter gradient after ``backward``,
  exercising the divergence guard's non-finite detection and rollback;
* **mid-step crashes** — raises :class:`CrashInjected` before the
  optimizer applies the step, simulating a process kill and exercising
  checkpoint/resume;
* **checkpoint corruption** — :func:`corrupt_checkpoint` flips bytes in
  a written ``.npz``, exercising the manifest-checksum detection and the
  fall-back-to-earlier-snapshot path;
* **poisoned inference forwards** — :meth:`ChaosMonkey.maybe_fail_forward`
  raises whenever a forward batch contains a poisoned request key,
  exercising the serving layer's batch-failure isolation: the batch
  retry must degrade *only* the poisoned requests to the similarity
  fallback (``MatchOutcome.degraded``), never their batch neighbors.

The harness only ever fires where a loop explicitly calls its hooks, so
production runs (``chaos=None``) pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["CrashInjected", "ChaosConfig", "ChaosMonkey",
           "corrupt_checkpoint"]


class CrashInjected(RuntimeError):
    """Raised by :class:`ChaosMonkey` to simulate a mid-step process kill.

    Training loops deliberately do **not** catch it: like a real
    ``kill -9`` it must escape to the caller, leaving only the on-disk
    checkpoints behind.
    """

    def __init__(self, step: int):
        super().__init__(
            f"chaos: injected crash at global step {step} (simulated "
            f"process kill; resume from the checkpoint directory)")
        self.step = step


@dataclass
class ChaosConfig:
    """Which faults to inject, pinned to global step numbers."""

    #: Global steps whose backward pass gets a NaN-poisoned gradient.
    nan_grad_steps: frozenset[int] = field(default_factory=frozenset)
    #: Global steps at which the loop dies before applying the update.
    crash_steps: frozenset[int] = field(default_factory=frozenset)
    #: Request keys whose inference forwards always fail (serving faults;
    #: unlike the step-pinned faults these fire *every* time, so batch
    #: retries cannot quietly absorb them — degradation must happen).
    poison_forward_rows: frozenset[int] = field(default_factory=frozenset)
    #: Seed for choosing which parameter/elements to poison.
    seed: int = 0

    def __post_init__(self):
        self.nan_grad_steps = frozenset(int(s) for s in self.nan_grad_steps)
        self.crash_steps = frozenset(int(s) for s in self.crash_steps)
        self.poison_forward_rows = frozenset(
            int(r) for r in self.poison_forward_rows)


class ChaosMonkey:
    """Applies a :class:`ChaosConfig` inside an instrumented loop.

    Each fault fires at most once per configured step (a loop that rolls
    back and replays a step is not re-poisoned — otherwise a NaN fault
    would defeat every retry and no recovery could ever be proven).
    """

    def __init__(self, config: ChaosConfig | None = None, **kwargs):
        self.config = config or ChaosConfig(**kwargs)
        self._rng = np.random.default_rng(self.config.seed)
        self._fired_nan: set[int] = set()
        self._fired_crash: set[int] = set()

    def poison_gradients(self, step: int, parameters) -> bool:
        """NaN-poison one parameter's gradient if ``step`` is targeted."""
        if step not in self.config.nan_grad_steps \
                or step in self._fired_nan:
            return False
        self._fired_nan.add(step)
        candidates = [p for p in parameters if p.grad is not None]
        if not candidates:
            return False
        victim = candidates[int(self._rng.integers(len(candidates)))]
        victim.grad.flat[int(self._rng.integers(victim.grad.size))] = np.nan
        return True

    def maybe_crash(self, step: int) -> None:
        """Raise :class:`CrashInjected` if ``step`` is a crash target."""
        if step in self.config.crash_steps \
                and step not in self._fired_crash:
            self._fired_crash.add(step)
            raise CrashInjected(step)

    def maybe_fail_forward(self, keys) -> None:
        """Raise if any of ``keys`` is a poisoned forward target.

        Used as a :meth:`repro.matching.MatchEngine.score_pairs`
        ``forward_hook``: a batch containing a poisoned request fails
        wholesale, and the per-row retry then fails again for exactly
        the poisoned rows — so only those degrade to the fallback.
        """
        poisoned = self.config.poison_forward_rows.intersection(
            int(k) for k in keys)
        if poisoned:
            raise RuntimeError(
                f"chaos: poisoned forward for request(s) "
                f"{sorted(poisoned)} (injected inference fault)")


def corrupt_checkpoint(path: str | Path, seed: int = 0,
                       num_bytes: int = 64) -> None:
    """Flip ``num_bytes`` bytes in the middle of a checkpoint file.

    Deterministic given ``seed``; targets the payload region (skips the
    first and last 512 bytes so the zip end-of-central-directory record
    survives and the corruption surfaces as a checksum/CRC failure, the
    realistic partial-corruption case, rather than instant unreadability).
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if len(blob) < 2048:
        lo, hi = 0, len(blob)
    else:
        lo, hi = 512, len(blob) - 512
    rng = np.random.default_rng(seed)
    for offset in rng.integers(lo, hi, size=min(num_bytes, hi - lo)):
        blob[int(offset)] ^= 0xFF
    from ..utils import atomic_write_bytes
    atomic_write_bytes(path, bytes(blob))
