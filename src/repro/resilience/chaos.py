"""Deterministic fault injection for the training loops.

Every recovery path in :mod:`repro.resilience` is only trustworthy if a
test can make the corresponding fault happen on demand.  The chaos
harness injects three fault families, each pinned to explicit global
step numbers so runs are reproducible:

* **NaN gradients** — poisons one parameter gradient after ``backward``,
  exercising the divergence guard's non-finite detection and rollback;
* **mid-step crashes** — raises :class:`CrashInjected` before the
  optimizer applies the step, simulating a process kill and exercising
  checkpoint/resume;
* **checkpoint corruption** — :func:`corrupt_checkpoint` flips bytes in
  a written ``.npz``, exercising the manifest-checksum detection and the
  fall-back-to-earlier-snapshot path;
* **poisoned inference forwards** — :meth:`ChaosMonkey.maybe_fail_forward`
  raises whenever a forward batch contains a poisoned request key,
  exercising the serving layer's batch-failure isolation: the batch
  retry must degrade *only* the poisoned requests to the similarity
  fallback (``MatchOutcome.degraded``), never their batch neighbors;
* **slow forwards** — :meth:`ChaosMonkey.maybe_delay_forward` returns a
  latency to inject before a batch forward (pinned to request keys, or
  drawn at a seeded rate), exercising the resilient tier's hedged
  requests and attempt timeouts;
* **worker death** — :meth:`ChaosMonkey.maybe_kill_worker` raises
  :class:`WorkerKilled` after the batch ordinals in
  ``kill_worker_batches``, abruptly ending one
  :class:`~repro.serve.MatchService` worker thread (consecutive
  ordinals take down a whole replica — a replica-wide outage) and
  exercising the :class:`~repro.serve.ReplicaSet` health-probe /
  respawn path.

The harness only ever fires where a loop explicitly calls its hooks, so
production runs (``chaos=None``) pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["CrashInjected", "WorkerKilled", "ChaosConfig", "ChaosMonkey",
           "corrupt_checkpoint"]


class CrashInjected(RuntimeError):
    """Raised by :class:`ChaosMonkey` to simulate a mid-step process kill.

    Training loops deliberately do **not** catch it: like a real
    ``kill -9`` it must escape to the caller, leaving only the on-disk
    checkpoints behind.
    """

    def __init__(self, step: int):
        super().__init__(
            f"chaos: injected crash at global step {step} (simulated "
            f"process kill; resume from the checkpoint directory)")
        self.step = step


class WorkerKilled(RuntimeError):
    """Raised by :meth:`ChaosMonkey.maybe_kill_worker` to end a serving
    worker thread abruptly.

    :class:`~repro.serve.MatchService` treats it like a real thread
    death: the worker exits without draining, queued requests stall
    until a supervisor (:class:`~repro.serve.ReplicaSet`) notices the
    replica is unhealthy and respawns it.
    """

    def __init__(self, batch_index: int):
        super().__init__(
            f"chaos: worker killed after batch {batch_index} (simulated "
            f"abrupt thread death; supervisor must respawn)")
        self.batch_index = batch_index


@dataclass
class ChaosConfig:
    """Which faults to inject, pinned to global step numbers."""

    #: Global steps whose backward pass gets a NaN-poisoned gradient.
    nan_grad_steps: frozenset[int] = field(default_factory=frozenset)
    #: Global steps at which the loop dies before applying the update.
    crash_steps: frozenset[int] = field(default_factory=frozenset)
    #: Request keys whose inference forwards always fail (serving faults;
    #: unlike the step-pinned faults these fire *every* time, so batch
    #: retries cannot quietly absorb them — degradation must happen).
    poison_forward_rows: frozenset[int] = field(default_factory=frozenset)
    #: Request keys whose batch forward is delayed (slow-forward fault;
    #: fires every time the key appears, like ``poison_forward_rows``).
    delay_forward_rows: frozenset[int] = field(default_factory=frozenset)
    #: Injected latency, clock seconds, per slow forward.
    delay_forward_seconds: float = 0.0
    #: Probability a batch forward is delayed regardless of keys
    #: (seeded draw per forward; for load benchmarks — key-pinned rows
    #: are the deterministic-test knob).
    delay_forward_rate: float = 0.0
    #: Batch ordinals (per-monkey counter, starting at 1) after which
    #: the worker that processed the batch dies with
    #: :class:`WorkerKilled`.  Consecutive ordinals kill a whole pool.
    kill_worker_batches: frozenset[int] = field(default_factory=frozenset)
    #: Seed for choosing which parameter/elements to poison.
    seed: int = 0

    def __post_init__(self):
        self.nan_grad_steps = frozenset(int(s) for s in self.nan_grad_steps)
        self.crash_steps = frozenset(int(s) for s in self.crash_steps)
        self.poison_forward_rows = frozenset(
            int(r) for r in self.poison_forward_rows)
        self.delay_forward_rows = frozenset(
            int(r) for r in self.delay_forward_rows)
        self.kill_worker_batches = frozenset(
            int(b) for b in self.kill_worker_batches)
        if self.delay_forward_seconds < 0:
            raise ValueError(f"delay_forward_seconds must be >= 0, got "
                             f"{self.delay_forward_seconds}")
        if not 0.0 <= self.delay_forward_rate <= 1.0:
            raise ValueError(f"delay_forward_rate must be in [0, 1], "
                             f"got {self.delay_forward_rate}")


class ChaosMonkey:
    """Applies a :class:`ChaosConfig` inside an instrumented loop.

    Each fault fires at most once per configured step (a loop that rolls
    back and replays a step is not re-poisoned — otherwise a NaN fault
    would defeat every retry and no recovery could ever be proven).
    """

    def __init__(self, config: ChaosConfig | None = None, **kwargs):
        self.config = config or ChaosConfig(**kwargs)
        self._rng = np.random.default_rng(self.config.seed)
        self._fired_nan: set[int] = set()
        self._fired_crash: set[int] = set()
        self._fired_kill: set[int] = set()
        self._batches_processed = 0

    def poison_gradients(self, step: int, parameters) -> bool:
        """NaN-poison one parameter's gradient if ``step`` is targeted."""
        if step not in self.config.nan_grad_steps \
                or step in self._fired_nan:
            return False
        self._fired_nan.add(step)
        candidates = [p for p in parameters if p.grad is not None]
        if not candidates:
            return False
        victim = candidates[int(self._rng.integers(len(candidates)))]
        victim.grad.flat[int(self._rng.integers(victim.grad.size))] = np.nan
        return True

    def maybe_crash(self, step: int) -> None:
        """Raise :class:`CrashInjected` if ``step`` is a crash target."""
        if step in self.config.crash_steps \
                and step not in self._fired_crash:
            self._fired_crash.add(step)
            raise CrashInjected(step)

    def maybe_fail_forward(self, keys) -> None:
        """Raise if any of ``keys`` is a poisoned forward target.

        Used as a :meth:`repro.matching.MatchEngine.score_pairs`
        ``forward_hook``: a batch containing a poisoned request fails
        wholesale, and the per-row retry then fails again for exactly
        the poisoned rows — so only those degrade to the fallback.
        """
        poisoned = self.config.poison_forward_rows.intersection(
            int(k) for k in keys)
        if poisoned:
            raise RuntimeError(
                f"chaos: poisoned forward for request(s) "
                f"{sorted(poisoned)} (injected inference fault)")

    def maybe_delay_forward(self, keys) -> float:
        """Latency (clock seconds) to inject before this batch forward.

        Returns ``delay_forward_seconds`` when the batch contains a
        pinned key from ``delay_forward_rows`` (deterministic, fires
        every occurrence) or when the seeded per-forward draw lands
        under ``delay_forward_rate``; 0.0 otherwise.  The caller (the
        service worker) performs the sleep on *its* clock, so under a
        :class:`~repro.serve.VirtualClock` the injected latency is
        simulated, not real.
        """
        config = self.config
        if config.delay_forward_seconds <= 0.0:
            return 0.0
        if config.delay_forward_rows.intersection(int(k) for k in keys):
            return config.delay_forward_seconds
        if config.delay_forward_rate > 0.0 \
                and self._rng.random() < config.delay_forward_rate:
            return config.delay_forward_seconds
        return 0.0

    def maybe_kill_worker(self) -> None:
        """Raise :class:`WorkerKilled` if this batch ordinal is targeted.

        Called by a service worker after finishing each batch; the
        monkey counts batches across its lifetime (1-based), and each
        configured ordinal fires at most once — so a respawned replica
        sharing the monkey is not instantly re-killed.
        """
        self._batches_processed += 1
        index = self._batches_processed
        if index in self.config.kill_worker_batches \
                and index not in self._fired_kill:
            self._fired_kill.add(index)
            raise WorkerKilled(index)


def corrupt_checkpoint(path: str | Path, seed: int = 0,
                       num_bytes: int = 64) -> None:
    """Flip ``num_bytes`` bytes in the middle of a checkpoint file.

    Deterministic given ``seed``; targets the payload region (skips the
    first and last 512 bytes so the zip end-of-central-directory record
    survives and the corruption surfaces as a checksum/CRC failure, the
    realistic partial-corruption case, rather than instant unreadability).
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if len(blob) < 2048:
        lo, hi = 0, len(blob)
    else:
        lo, hi = 512, len(blob) - 512
    rng = np.random.default_rng(seed)
    for offset in rng.integers(lo, hi, size=min(num_bytes, hi - lo)):
        blob[int(offset)] ^= 0xFF
    from ..utils import atomic_write_bytes
    atomic_write_bytes(path, bytes(blob))
