"""Checkpoint manager: periodic + best snapshots with retention.

Sits on top of :mod:`repro.nn.serialization` (atomic writes, versioned
manifest, per-array checksums) and adds run-level policy:

* periodic step snapshots (``step-000123.npz``), pruned to the newest
  ``keep_last``;
* a ``best.npz`` refreshed whenever the tracked metric improves;
* :meth:`load_latest`, which walks backwards past corrupt snapshots (a
  partially written or byte-flipped file fails its manifest checksums
  and is skipped, with the failure reported) until a verifiable one
  loads.

The manager stores opaque ``name -> array`` dicts plus JSON metadata; the
composition of a full training snapshot (model + optimizer + schedule +
RNG + loop counters) lives with the training loops, which know what
their state is.
"""

from __future__ import annotations

from pathlib import Path

from ..nn import CheckpointError, load_checkpoint, save_checkpoint

__all__ = ["CheckpointManager"]

_STEP_PREFIX = "step-"
_BEST_NAME = "best.npz"


class CheckpointManager:
    """Periodic and best-metric snapshots under one directory."""

    def __init__(self, directory: str | Path, keep_last: int = 3,
                 keep_best: bool = True):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        self.keep_best = keep_best
        self._best_metric: float | None = None
        #: Corrupt snapshots skipped by the most recent :meth:`load_latest`
        #: (``"file: reason"`` strings) — callers surface these as
        #: recovery events.
        self.last_skipped: list[str] = []

    # -- paths ---------------------------------------------------------------

    def snapshots(self) -> list[Path]:
        """Periodic snapshot files, oldest first (by step number)."""
        found = []
        for path in self.directory.glob(f"{_STEP_PREFIX}*.npz"):
            try:
                step = int(path.stem[len(_STEP_PREFIX):])
            except ValueError:
                continue
            found.append((step, path))
        return [path for _, path in sorted(found)]

    def latest(self) -> Path | None:
        """Newest periodic snapshot, or ``None`` if none exist."""
        snapshots = self.snapshots()
        return snapshots[-1] if snapshots else None

    def best_path(self) -> Path | None:
        """The best-metric snapshot, if one has been written."""
        path = self.directory / _BEST_NAME
        return path if path.exists() else None

    def has_snapshot(self) -> bool:
        """Whether any resumable periodic snapshot exists."""
        return bool(self.snapshots())

    # -- writing -------------------------------------------------------------

    def save(self, step: int, state: dict, metadata: dict,
             best_metric: float | None = None) -> Path:
        """Write the step snapshot; refresh ``best.npz`` when improved.

        Returns the periodic snapshot path.  Retention: periodic
        snapshots beyond ``keep_last`` are deleted oldest-first (the
        best snapshot is never pruned).
        """
        metadata = dict(metadata)
        metadata["step"] = int(step)
        path = self.directory / f"{_STEP_PREFIX}{step:08d}.npz"
        save_checkpoint(path, state, metadata=metadata)
        if self.keep_best and best_metric is not None:
            if self._best_metric is None:
                self._load_best_metric()
            if self._best_metric is None or best_metric > self._best_metric:
                self._best_metric = float(best_metric)
                metadata["best_metric"] = self._best_metric
                save_checkpoint(self.directory / _BEST_NAME, state,
                                metadata=metadata)
        self._prune()
        return path

    def _load_best_metric(self) -> None:
        path = self.directory / _BEST_NAME
        if not path.exists():
            return
        try:
            _, meta = load_checkpoint(path)
        except CheckpointError:
            return
        if meta and isinstance(meta.get("best_metric"), (int, float)):
            self._best_metric = float(meta["best_metric"])

    def _prune(self) -> None:
        snapshots = self.snapshots()
        for stale in snapshots[:-self.keep_last]:
            stale.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def load(self, path: str | Path) -> tuple[dict, dict]:
        """Load and verify one snapshot; returns (state, metadata)."""
        state, metadata = load_checkpoint(path)
        return state, metadata or {}

    def load_latest(self) -> tuple[dict, dict, Path]:
        """Load the newest snapshot that verifies, skipping corrupt ones.

        Returns ``(state, metadata, path)``.  Raises
        :class:`repro.nn.CheckpointError` listing every failure when no
        snapshot is loadable.
        """
        snapshots = self.snapshots()
        if not snapshots:
            raise CheckpointError(
                f"no snapshots to resume from in {self.directory}",
                path=self.directory)
        failures: list[str] = []
        self.last_skipped = failures
        for path in reversed(snapshots):
            try:
                state, metadata = self.load(path)
                return state, metadata, path
            except CheckpointError as exc:
                failures.append(f"{path.name}: {exc}")
        raise CheckpointError(
            f"every snapshot in {self.directory} is corrupt — "
            + "; ".join(failures), path=self.directory)
