"""The one knob object training entry points accept: ``resilience=``.

``ResilienceConfig`` bundles everything fault-tolerance related so
``fine_tune``/``pretrain``/``EntityMatcher.fit`` grow exactly one new
parameter.  All features are opt-in: with no checkpoint directory
nothing is written, with ``guard=False`` no divergence checks run, and
with ``resilience=None`` the loops take their original fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .chaos import ChaosMonkey
from .guard import GuardConfig

__all__ = ["ResilienceConfig"]


@dataclass
class ResilienceConfig:
    """Fault-tolerance policy for one training run."""

    #: Where snapshots go; ``None`` disables checkpointing (and resume).
    checkpoint_dir: str | Path | None = None
    #: Snapshot every N optimizer steps (0 = epoch boundaries only).
    checkpoint_every: int = 25
    #: How many periodic snapshots to retain.
    keep_last: int = 3
    #: Track a ``best.npz`` refreshed on every eval-metric improvement.
    keep_best: bool = True
    #: Resume from the newest verifiable snapshot in ``checkpoint_dir``
    #: instead of starting fresh (fresh when none exists).
    resume: bool = False
    #: Run the divergence guard (NaN/Inf and loss-spike detection).
    guard: bool = True
    #: Guard thresholds and rollback budget.
    guard_config: GuardConfig = field(default_factory=GuardConfig)
    #: Deterministic fault injection (tests only; ``None`` in production).
    chaos: ChaosMonkey | None = None
    #: Opaque launch context stored in snapshot metadata so
    #: ``repro resume <dir>`` can rebuild the run without its original
    #: command line.
    run_context: dict | None = None

    def wants_checkpoints(self) -> bool:
        """Whether this config writes snapshots at all."""
        return self.checkpoint_dir is not None

    def manager(self):
        """Build the :class:`CheckpointManager` (or ``None``)."""
        if self.checkpoint_dir is None:
            return None
        from .checkpoint import CheckpointManager
        return CheckpointManager(self.checkpoint_dir,
                                 keep_last=self.keep_last,
                                 keep_best=self.keep_best)
