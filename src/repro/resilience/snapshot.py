"""Flat-namespace packing of composite training state.

A full training snapshot is several state dicts (model, optimizer,
schedule) plus loop arrays, flattened into one ``name -> array`` dict
with ``/``-separated prefixes (``model/encoder.0.w``, ``optim/m.3``,
``loop/order``) so it fits the plain-``.npz`` checkpoint format and its
manifest covers every component with one checksum table.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_state", "unpack_state", "snapshot_prefixes"]


def pack_state(arrays: dict, prefix: str, state: dict) -> dict:
    """Merge ``state`` into ``arrays`` under ``prefix/``; returns ``arrays``."""
    for name, value in state.items():
        arrays[f"{prefix}/{name}"] = np.asarray(value)
    return arrays


def unpack_state(arrays: dict, prefix: str) -> dict:
    """The sub-dict of ``arrays`` stored under ``prefix/``, unprefixed."""
    marker = prefix + "/"
    return {name[len(marker):]: value for name, value in arrays.items()
            if name.startswith(marker)}


def snapshot_prefixes(arrays: dict) -> list[str]:
    """The sorted top-level prefixes present in a packed snapshot."""
    return sorted({name.split("/", 1)[0] for name in arrays if "/" in name})
