"""Fault tolerance: checkpoint/resume, divergence rollback, chaos testing.

The paper's transformers reach their best EM F1 within 1-3 fine-tuning
epochs — so a crashed or diverged run loses exactly the epochs that
matter.  This package makes the training and matching stack survive
faults (DESIGN.md §10):

* :class:`CheckpointManager` — periodic + best-F1 snapshots with
  retention, atomic writes, and checksum-verified loads that skip
  corrupt files;
* :class:`ResilienceConfig` — the single ``resilience=`` knob accepted
  by ``fine_tune``/``pretrain``/``EntityMatcher.fit``; a resumed run is
  bit-identical to the uninterrupted one (full optimizer/schedule/RNG
  stream capture);
* :class:`DivergenceGuard` — NaN/Inf and loss-spike detection before
  the update is applied, with rollback to the last good snapshot, LR
  backoff, and a bounded retry budget (:class:`TrainingDiverged` when
  exhausted);
* :class:`ChaosMonkey` — deterministic fault injection (NaN gradients,
  mid-step crashes, checkpoint byte corruption) used by the test suite
  to prove every recovery path fires;
* :func:`fallback_probability` / :class:`MatchOutcome` — the
  graceful-degradation scorer behind ``EntityMatcher.match_many``.

Recovery actions surface as ``checkpoint``/``recovery`` telemetry events
(:mod:`repro.obs`), rendered by ``repro telemetry``.
"""

from .chaos import ChaosConfig, ChaosMonkey, CrashInjected, \
    WorkerKilled, corrupt_checkpoint
from .checkpoint import CheckpointManager
from .config import ResilienceConfig
from .fallback import MatchOutcome, fallback_probability
from .guard import DivergenceError, DivergenceGuard, GuardConfig, \
    TrainingDiverged
from .snapshot import pack_state, snapshot_prefixes, unpack_state

__all__ = [
    "ResilienceConfig",
    "CheckpointManager",
    "DivergenceGuard", "GuardConfig", "DivergenceError", "TrainingDiverged",
    "ChaosMonkey", "ChaosConfig", "CrashInjected", "WorkerKilled",
    "corrupt_checkpoint",
    "MatchOutcome", "fallback_probability",
    "pack_state", "unpack_state", "snapshot_prefixes",
]
