"""Divergence detection with bounded rollback-and-retry policy.

The guard watches each optimizer step *before* the update is applied:

* a non-finite loss or gradient norm (the signal
  :mod:`repro.analysis.sanitize` raises on in debug mode) is an
  immediate divergence — catching it pre-update means NaNs never reach
  the weights;
* a finite loss that spikes to ``spike_factor`` times the recent median
  is flagged once enough history exists (loss is noisy early on).

On divergence the training loop rolls back to its last good snapshot,
multiplies the learning rate by ``lr_backoff``, and replays — at most
``max_rollbacks`` times, after which :class:`TrainingDiverged` escapes
with the full recovery history attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["DivergenceError", "TrainingDiverged", "GuardConfig",
           "DivergenceGuard"]


class DivergenceError(RuntimeError):
    """Base class for unrecoverable divergence failures."""


class TrainingDiverged(DivergenceError):
    """Training kept diverging after exhausting every rollback retry."""

    def __init__(self, message: str, attempts: list[dict] | None = None):
        super().__init__(message)
        #: One dict per rollback attempt (step, reason, lr at the time).
        self.attempts = list(attempts or [])


@dataclass
class GuardConfig:
    """Detection thresholds and retry budget."""

    #: Loss must exceed ``spike_factor`` x the window median to count as
    #: a spike (non-finite values trip regardless).
    spike_factor: float = 25.0
    #: Number of recent finite losses kept for the median baseline.
    spike_window: int = 16
    #: Spike detection stays off until this many losses are recorded.
    min_history: int = 8
    #: How many rollbacks to attempt before giving up.
    max_rollbacks: int = 3
    #: Learning-rate multiplier applied on every rollback.
    lr_backoff: float = 0.5


class DivergenceGuard:
    """Per-step divergence detector (stateful over a training run)."""

    def __init__(self, config: GuardConfig | None = None):
        self.config = config or GuardConfig()
        self._window: deque[float] = deque(maxlen=self.config.spike_window)
        self.rollbacks = 0
        self.attempts: list[dict] = []

    def check(self, loss: float, grad_norm: float) -> str | None:
        """Return a divergence reason, or ``None`` if the step is good.

        A good step's loss joins the spike baseline; a bad step leaves
        the baseline untouched (it will be rolled back).
        """
        if not np.isfinite(loss):
            return "non_finite_loss"
        if not np.isfinite(grad_norm):
            return "non_finite_gradient"
        if len(self._window) >= self.config.min_history:
            baseline = float(np.median(self._window))
            if baseline > 0.0 and loss > self.config.spike_factor * baseline:
                return "loss_spike"
        self._window.append(float(loss))
        return None

    def record_rollback(self, step: int, reason: str, lr: float) -> None:
        """Count a rollback; raise when the retry budget is exhausted.

        Also resets the spike baseline — the replayed steps re-fill it.
        """
        self.rollbacks += 1
        self.attempts.append({"step": int(step), "reason": reason,
                              "lr": float(lr)})
        self._window.clear()
        if self.rollbacks > self.config.max_rollbacks:
            raise TrainingDiverged(
                f"training diverged {self.rollbacks} times (budget "
                f"{self.config.max_rollbacks}); last failure at step "
                f"{step} ({reason})", attempts=self.attempts)
