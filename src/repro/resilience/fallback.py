"""Graceful degradation: classical-similarity fallback for matching.

When the transformer path fails on one pair (corrupt input, a poisoned
checkpoint, an encoding edge case), a bulk matching call should degrade
— answer that pair with the :mod:`repro.baselines.similarity` scorer and
say so — rather than abort the whole batch.  The fallback score blends
token-set and character-level similarity of the serialized entity texts,
the same features the Magellan baseline leans on, squashed into [0, 1]
so it is drop-in comparable with the classifier's match probability.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MatchOutcome", "fallback_probability"]


@dataclass
class MatchOutcome:
    """One pair's result from :meth:`EntityMatcher.match_many`.

    ``degraded`` marks pairs answered by the similarity fallback after
    the transformer path failed; ``error`` then carries the failure.
    """

    index: int
    probability: float
    matched: bool
    degraded: bool = False
    error: str | None = None


def fallback_probability(text_a: str, text_b: str) -> float:
    """Pseudo match probability from classical string similarity."""
    # Imported lazily: repro.baselines pulls in repro.matching (for its
    # metrics), which imports this package — a module-level import here
    # would close that cycle during package initialization.
    from ..baselines.similarity import (jaccard_tokens, jaro_winkler,
                                        levenshtein_similarity)
    if not text_a.strip() and not text_b.strip():
        return 0.0
    score = (0.5 * jaccard_tokens(text_a, text_b)
             + 0.3 * jaro_winkler(text_a, text_b)
             + 0.2 * levenshtein_similarity(text_a, text_b))
    return float(min(max(score, 0.0), 1.0))
