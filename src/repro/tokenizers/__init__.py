"""Subword tokenizers: WordPiece (BERT/DistilBERT), byte-level BPE
(RoBERTa) and unigram-LM SentencePiece-style (XLNet), all trainable
from a corpus with no external dependencies."""

from .base import Encoding, SubwordTokenizer
from .bpe import ByteLevelBPETokenizer, train_byte_level_bpe
from .normalize import (basic_pretokenize, gpt2_pretokenize, no_pretokenize,
                        normalize_text)
from .unigram import UnigramTokenizer, train_unigram
from .vocab import SpecialTokens, Vocab
from .wordpiece import WordPieceTokenizer, train_wordpiece

__all__ = [
    "Encoding", "SubwordTokenizer",
    "Vocab", "SpecialTokens",
    "WordPieceTokenizer", "train_wordpiece",
    "ByteLevelBPETokenizer", "train_byte_level_bpe",
    "UnigramTokenizer", "train_unigram",
    "normalize_text", "basic_pretokenize", "gpt2_pretokenize",
    "no_pretokenize",
]
