"""Tokenizer base class and the pair-encoding used for entity matching.

The EM pipeline of the paper (Figure 9) feeds an entity pair as::

    [CLS] tok(A)_1 .. tok(A)_N [SEP] tok(B)_1 .. tok(B)_M [SEP]

with segment ids 0 for entity A (including CLS/first SEP) and 1 for
entity B.  XLNet instead appends the classification token at the *end*
(``A <sep> B <sep> <cls>``), which :class:`SubwordTokenizer` supports via
``cls_at_end``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vocab import Vocab

__all__ = ["Encoding", "SubwordTokenizer"]


@dataclass
class Encoding:
    """A model-ready encoded sequence (single or pair)."""

    input_ids: np.ndarray       # (T,) int64
    segment_ids: np.ndarray     # (T,) int64, 0 = entity A, 1 = entity B
    pad_mask: np.ndarray        # (T,) bool, True where padding
    cls_index: int              # position of the classification token

    def __len__(self) -> int:
        return len(self.input_ids)

    @property
    def num_real_tokens(self) -> int:
        return int((~self.pad_mask).sum())


class SubwordTokenizer:
    """Common interface: text -> subword tokens -> ids, plus pair encoding.

    Subclasses implement :meth:`tokenize`; everything else (id mapping,
    pair packing, truncation, padding) is shared.
    """

    def __init__(self, vocab: Vocab, cls_at_end: bool = False):
        self.vocab = vocab
        self.cls_at_end = cls_at_end
        #: Optional text -> token-id memo (duck-typed: anything with a
        #: ``lookup(text, compute)`` method, normally a
        #: :class:`repro.perf.TokenizationCache`).  None = no caching.
        #: Ids are vocabulary-specific, so a cache must never be shared
        #: between tokenizer instances.
        self.cache = None
        # Word -> subword-pieces memo behind memoized_word().  Entity
        # records repeat words heavily (venues, brands, model names), so
        # per-word segmentation redoes the same greedy match over and
        # over even when the text-level cache misses.  Engaged only
        # while ``cache`` is attached, so the no-caching baseline stays
        # a true baseline.
        self._word_memo: dict[str, list[str]] = {}

    def memoized_word(self, word: str, compute) -> list[str]:
        """Segment ``word`` via ``compute``, memoized while caching is on.

        Subclass ``tokenize`` implementations with a per-word inner loop
        (WordPiece, BPE) route their word segmentation through here.
        The memo is vocabulary-level state on this tokenizer instance —
        never shared between tokenizers — and is dropped wholesale if it
        grows past a bound so adversarial text cannot balloon it.
        """
        if self.cache is None:
            return compute(word)
        memo = self._word_memo
        pieces = memo.get(word)
        if pieces is None:
            if len(memo) >= 65536:
                memo.clear()
            pieces = compute(word)
            memo[word] = pieces
        return pieces

    # -- subclass API ---------------------------------------------------------

    def tokenize(self, text: str) -> list[str]:
        raise NotImplementedError

    def detokenize(self, tokens: list[str]) -> str:
        raise NotImplementedError

    # -- shared encoding -------------------------------------------------------

    def encode(self, text: str) -> list[int]:
        """Text to ids without special tokens (memoized via ``cache``)."""
        if self.cache is not None:
            return self.cache.lookup(text, self._encode_uncached)
        return self._encode_uncached(text)

    def _encode_uncached(self, text: str) -> list[int]:
        return self.vocab.ids(self.tokenize(text))

    def decode(self, ids: list[int]) -> str:
        specials = self.vocab.special_ids()
        tokens = [self.vocab.id_to_token(i) for i in ids if i not in specials]
        return self.detokenize(tokens)

    def encode_single(self, text: str, max_length: int,
                      pad_to_max: bool = True) -> Encoding:
        """Pack one text as ``[CLS] tokens [SEP]`` (or tokens ``<sep> <cls>``
        for CLS-at-end architectures), truncated and padded."""
        if max_length < 3:
            raise ValueError("max_length must allow CLS/SEP plus content")
        ids = self.encode(text)[: max_length - 2]
        v = self.vocab
        if self.cls_at_end:
            input_ids = ids + [v.sep_id, v.cls_id]
            segment_ids = [0] * (len(ids) + 1) + [2]
            cls_index = len(input_ids) - 1
        else:
            input_ids = [v.cls_id] + ids + [v.sep_id]
            segment_ids = [0] * len(input_ids)
            cls_index = 0
        return self._pad(input_ids, segment_ids, cls_index, max_length,
                         pad_to_max)

    def _pad(self, input_ids: list[int], segment_ids: list[int],
             cls_index: int, max_length: int,
             pad_to_max: bool) -> Encoding:
        """Pad to ``max_length``.  CLS-at-end models (XLNet) pad on the
        *left* so the classification token is always the final position —
        harmless under relative position encodings and padding masks."""
        pad_mask = [False] * len(input_ids)
        if pad_to_max and len(input_ids) < max_length:
            deficit = max_length - len(input_ids)
            pad_ids = [self.vocab.pad_id] * deficit
            pad_segments = [0] * deficit
            pad_flags = [True] * deficit
            if self.cls_at_end:
                input_ids = pad_ids + input_ids
                segment_ids = pad_segments + segment_ids
                pad_mask = pad_flags + pad_mask
                cls_index += deficit
            else:
                input_ids = input_ids + pad_ids
                segment_ids = segment_ids + pad_segments
                pad_mask = pad_mask + pad_flags
        return Encoding(
            input_ids=np.asarray(input_ids, dtype=np.int64),
            segment_ids=np.asarray(segment_ids, dtype=np.int64),
            pad_mask=np.asarray(pad_mask, dtype=bool),
            cls_index=cls_index,
        )

    def encode_pair(self, text_a: str, text_b: str, max_length: int,
                    pad_to_max: bool = True) -> Encoding:
        """Pack an entity pair into one classifier-ready sequence.

        Truncation removes tokens from the end of the *longer* entity
        first, so both entities stay represented even under tight budgets.
        """
        if max_length < 4:
            raise ValueError("max_length must allow CLS/SEP plus content")
        if self.cache is not None:
            return self.cache.lookup_pair(
                text_a, text_b, max_length, pad_to_max,
                lambda: self._encode_pair_uncached(text_a, text_b,
                                                   max_length, pad_to_max))
        return self._encode_pair_uncached(text_a, text_b, max_length,
                                          pad_to_max)

    def _encode_pair_uncached(self, text_a: str, text_b: str,
                              max_length: int, pad_to_max: bool) -> Encoding:
        ids_a = self.encode(text_a)
        ids_b = self.encode(text_b)
        budget = max_length - 3  # CLS + 2x SEP
        ids_a, ids_b = _truncate_pair(ids_a, ids_b, budget)

        v = self.vocab
        if self.cls_at_end:
            input_ids = ids_a + [v.sep_id] + ids_b + [v.sep_id, v.cls_id]
            segment_ids = ([0] * (len(ids_a) + 1)
                           + [1] * (len(ids_b) + 1) + [2])
            cls_index = len(input_ids) - 1
        else:
            input_ids = ([v.cls_id] + ids_a + [v.sep_id]
                         + ids_b + [v.sep_id])
            segment_ids = ([0] * (len(ids_a) + 2)
                           + [1] * (len(ids_b) + 1))
            cls_index = 0

        return self._pad(input_ids, segment_ids, cls_index, max_length,
                         pad_to_max)


def _truncate_pair(ids_a: list[int], ids_b: list[int],
                   budget: int) -> tuple[list[int], list[int]]:
    # Closed form of "pop from the longer side (ties: a) until the pair
    # fits": first the longer side is cut down to the shorter's length,
    # then the remaining overflow alternates starting with a.  O(1)
    # instead of one python iteration per dropped token — this is the
    # hottest pure-python loop in the encode path.
    la, lb = len(ids_a), len(ids_b)
    overflow = la + lb - budget
    if overflow <= 0:
        return list(ids_a), list(ids_b)
    if la >= lb:
        cut = min(la - lb, overflow)
        la -= cut
    else:
        cut = min(lb - la, overflow)
        lb -= cut
    remaining = la + lb - budget
    if remaining > 0:
        la -= (remaining + 1) // 2
        lb -= remaining // 2
    return ids_a[:la], ids_b[:lb]
