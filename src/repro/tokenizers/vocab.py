"""Vocabulary: bidirectional token<->id mapping with special tokens."""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["SpecialTokens", "Vocab"]


class SpecialTokens:
    """Names of the special tokens an architecture uses.

    BERT/DistilBERT use ``[CLS]/[SEP]/[PAD]/[MASK]/[UNK]``; RoBERTa uses
    ``<s>/</s>/<pad>/<mask>/<unk>``; our XLNet follows the SentencePiece
    convention ``<cls>/<sep>/...`` with the CLS token at the *end* of the
    sequence (handled by the model's pair encoder).
    """

    def __init__(self, pad: str = "[PAD]", unk: str = "[UNK]",
                 cls: str = "[CLS]", sep: str = "[SEP]",
                 mask: str = "[MASK]"):
        self.pad = pad
        self.unk = unk
        self.cls = cls
        self.sep = sep
        self.mask = mask

    def all(self) -> list[str]:
        return [self.pad, self.unk, self.cls, self.sep, self.mask]

    @staticmethod
    def bert() -> "SpecialTokens":
        return SpecialTokens()

    @staticmethod
    def roberta() -> "SpecialTokens":
        return SpecialTokens(pad="<pad>", unk="<unk>", cls="<s>",
                             sep="</s>", mask="<mask>")

    @staticmethod
    def xlnet() -> "SpecialTokens":
        return SpecialTokens(pad="<pad>", unk="<unk>", cls="<cls>",
                             sep="<sep>", mask="<mask>")


class Vocab:
    """Immutable-ish token<->id table; special tokens occupy the lowest ids."""

    def __init__(self, tokens: list[str], specials: SpecialTokens):
        self.specials = specials
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in specials.all() + list(tokens):
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._id_to_token)
                self._id_to_token.append(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[self.specials.unk])

    def ids(self, tokens: list[str]) -> list[int]:
        """Map many tokens to ids (unknowns -> unk) in one pass.

        Bound-method hoisting makes this measurably cheaper than a
        per-token :meth:`token_to_id` call on the encode hot path.
        """
        get = self._token_to_id.get
        unk = self._token_to_id[self.specials.unk]
        return [get(token, unk) for token in tokens]

    def id_to_token(self, idx: int) -> str:
        return self._id_to_token[idx]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[self.specials.cls]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.specials.sep]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[self.specials.mask]

    def special_ids(self) -> set[int]:
        return {self._token_to_id[t] for t in self.specials.all()}

    def tokens(self) -> list[str]:
        return list(self._id_to_token)

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            "specials": {
                "pad": self.specials.pad, "unk": self.specials.unk,
                "cls": self.specials.cls, "sep": self.specials.sep,
                "mask": self.specials.mask,
            },
            "tokens": self._id_to_token,
        }
        from ..utils import atomic_write_text
        atomic_write_text(path, json.dumps(payload))

    @staticmethod
    def load(path: str | Path) -> "Vocab":
        payload = json.loads(Path(path).read_text())
        specials = SpecialTokens(**payload["specials"])
        n_special = len(specials.all())
        return Vocab(payload["tokens"][n_special:], specials)
