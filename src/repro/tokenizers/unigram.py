"""Unigram-LM subword tokenizer (Kudo 2018), as in SentencePiece / XLNet.

Training: seed a large candidate vocabulary with frequent substrings, then
alternate EM re-estimation of piece probabilities with pruning of the
lowest-contribution pieces until the target size is reached.  Encoding is
Viterbi segmentation under the learned piece log-probabilities.

Unlike WordPiece/BPE, the input is *not* pre-tokenized: spaces are mapped
to the meta symbol '▁' and the raw sentence is segmented as a whole.
"""

from __future__ import annotations

import math
from collections import Counter

from .base import SubwordTokenizer
from .normalize import normalize_text
from .vocab import SpecialTokens, Vocab

__all__ = ["UnigramTokenizer", "train_unigram"]

_SPACE = "▁"


class UnigramTokenizer(SubwordTokenizer):
    """Viterbi-decoding unigram tokenizer with CLS-at-end pair packing."""

    def __init__(self, vocab: Vocab, log_probs: dict[str, float],
                 lowercase: bool = True, max_piece_len: int = 16):
        super().__init__(vocab, cls_at_end=True)
        self.lowercase = lowercase
        self.log_probs = dict(log_probs)
        self.max_piece_len = max_piece_len
        self._unk_penalty = min(log_probs.values(), default=-10.0) - 10.0

    def tokenize(self, text: str) -> list[str]:
        text = normalize_text(text, lowercase=self.lowercase)
        if not text:
            return []
        sentence = _SPACE + text.replace(" ", _SPACE)
        return self._viterbi(sentence)

    def _viterbi(self, sentence: str) -> list[str]:
        n = len(sentence)
        best_score = [-math.inf] * (n + 1)
        best_score[0] = 0.0
        backpointer = [0] * (n + 1)
        for end in range(1, n + 1):
            for start in range(max(0, end - self.max_piece_len), end):
                if best_score[start] == -math.inf:
                    continue
                piece = sentence[start:end]
                logp = self.log_probs.get(piece)
                if logp is None:
                    if end - start > 1:
                        continue
                    logp = self._unk_penalty  # single unknown char fallback
                score = best_score[start] + logp
                if score > best_score[end]:
                    best_score[end] = score
                    backpointer[end] = start
        pieces: list[str] = []
        pos = n
        while pos > 0:
            start = backpointer[pos]
            pieces.append(sentence[start:pos])
            pos = start
        return list(reversed(pieces))

    def detokenize(self, tokens: list[str]) -> str:
        return "".join(tokens).replace(_SPACE, " ").strip()


def train_unigram(corpus: list[str], vocab_size: int,
                  lowercase: bool = True,
                  seed_multiplier: int = 4,
                  max_piece_len: int = 8,
                  em_iterations: int = 2,
                  prune_fraction: float = 0.25,
                  specials: SpecialTokens | None = None
                  ) -> UnigramTokenizer:
    """Learn a unigram-LM vocabulary of roughly ``vocab_size`` pieces."""
    specials = specials or SpecialTokens.xlnet()
    sentences = [
        _SPACE + normalize_text(line, lowercase=lowercase).replace(" ", _SPACE)
        for line in corpus if line.strip()
    ]

    # Seed: all substrings up to max_piece_len, keep the most frequent.
    substring_freq: Counter[str] = Counter()
    for sentence in sentences:
        n = len(sentence)
        for i in range(n):
            for j in range(i + 1, min(i + 1 + max_piece_len, n + 1)):
                substring_freq[sentence[i:j]] += 1
    alphabet = {ch for sentence in sentences for ch in sentence}
    seed_size = max(vocab_size * seed_multiplier, vocab_size + len(alphabet))
    candidates = {piece for piece, _ in substring_freq.most_common(seed_size)}
    candidates |= alphabet  # single chars must stay encodable

    log_probs = _estimate(substring_freq, candidates)
    n_reserved = len(specials.all())

    while len(log_probs) > vocab_size - n_reserved:
        # EM: re-estimate piece frequencies from Viterbi segmentations.
        tokenizer = UnigramTokenizer(
            Vocab(sorted(log_probs), specials), log_probs,
            lowercase=lowercase, max_piece_len=max_piece_len)
        for _ in range(em_iterations):
            piece_freq: Counter[str] = Counter()
            for sentence in sentences:
                for piece in tokenizer._viterbi(sentence):
                    piece_freq[piece] += 1
            used = set(piece_freq) | alphabet
            log_probs = _estimate(piece_freq, used)
            tokenizer.log_probs = log_probs

        if len(log_probs) <= vocab_size - n_reserved:
            break
        # Prune the least useful multi-char pieces.
        removable = sorted(
            (piece for piece in log_probs if len(piece) > 1),
            key=lambda piece: log_probs[piece])
        target = max(len(log_probs) - vocab_size + n_reserved, 1)
        n_prune = min(max(int(len(log_probs) * prune_fraction), 1), target,
                      len(removable))
        if n_prune == 0:
            break
        for piece in removable[:n_prune]:
            del log_probs[piece]

    vocab = Vocab(sorted(log_probs), specials)
    return UnigramTokenizer(vocab, log_probs, lowercase=lowercase,
                            max_piece_len=max_piece_len)


def _estimate(freq: Counter, pieces: set[str]) -> dict[str, float]:
    total = sum(freq.get(piece, 1) for piece in pieces)
    return {piece: math.log(freq.get(piece, 1) / total) for piece in pieces}


def _unigram_payload(tokenizer: UnigramTokenizer) -> dict:
    return {
        "kind": "unigram",
        "lowercase": tokenizer.lowercase,
        "max_piece_len": tokenizer.max_piece_len,
        "log_probs": tokenizer.log_probs,
        "specials": {
            "pad": tokenizer.vocab.specials.pad,
            "unk": tokenizer.vocab.specials.unk,
            "cls": tokenizer.vocab.specials.cls,
            "sep": tokenizer.vocab.specials.sep,
            "mask": tokenizer.vocab.specials.mask,
        },
    }


def _unigram_from_payload(payload: dict) -> UnigramTokenizer:
    specials = SpecialTokens(**payload["specials"])
    log_probs = dict(payload["log_probs"])
    vocab = Vocab(sorted(log_probs), specials)
    return UnigramTokenizer(vocab, log_probs,
                            lowercase=payload["lowercase"],
                            max_piece_len=payload["max_piece_len"])


UnigramTokenizer.to_payload = _unigram_payload
UnigramTokenizer.from_payload = staticmethod(_unigram_from_payload)
