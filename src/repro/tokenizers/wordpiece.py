"""WordPiece tokenizer (Schuster & Nakajima, 2012) used by BERT/DistilBERT.

Training grows a subword vocabulary by repeatedly merging the symbol pair
with the highest likelihood score ``count(ab) / (count(a) * count(b))``
(the WordPiece criterion, vs. raw frequency for BPE).  Encoding uses the
standard greedy longest-match-first algorithm with ``##`` continuation
prefixes.
"""

from __future__ import annotations

from collections import Counter

from .base import SubwordTokenizer
from .normalize import basic_pretokenize, normalize_text
from .vocab import SpecialTokens, Vocab

__all__ = ["WordPieceTokenizer", "train_wordpiece"]

_CONT = "##"


class WordPieceTokenizer(SubwordTokenizer):
    """Greedy longest-match-first WordPiece encoder."""

    def __init__(self, vocab: Vocab, lowercase: bool = True,
                 max_word_chars: int = 100):
        super().__init__(vocab)
        self.lowercase = lowercase
        self.max_word_chars = max_word_chars

    def tokenize(self, text: str) -> list[str]:
        text = normalize_text(text, lowercase=self.lowercase)
        output: list[str] = []
        # Memoize whole whitespace-separated chunks rather than the
        # punctuation-split words inside them: one memo hit replaces the
        # punctuation scan plus every greedy match in the chunk.
        for chunk in text.split():
            output.extend(self.memoized_word(chunk, self._tokenize_chunk))
        return output

    def _tokenize_chunk(self, chunk: str) -> list[str]:
        pieces: list[str] = []
        for word in basic_pretokenize(chunk):
            pieces.extend(self._tokenize_word(word))
        return pieces

    def _tokenize_word(self, word: str) -> list[str]:
        if len(word) > self.max_word_chars:
            return [self.vocab.specials.unk]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = _CONT + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [self.vocab.specials.unk]
            pieces.append(piece)
            start = end
        return pieces

    def detokenize(self, tokens: list[str]) -> str:
        words: list[str] = []
        for token in tokens:
            if token.startswith(_CONT) and words:
                words[-1] = words[-1] + token[len(_CONT):]
            else:
                words.append(token)
        return " ".join(words)


def train_wordpiece(corpus: list[str], vocab_size: int,
                    lowercase: bool = True,
                    min_frequency: int = 2,
                    specials: SpecialTokens | None = None
                    ) -> WordPieceTokenizer:
    """Learn a WordPiece vocabulary of (at most) ``vocab_size`` tokens.

    Parameters
    ----------
    corpus:
        Training sentences.
    vocab_size:
        Target total vocabulary size, including special tokens and the
        single-character alphabet.
    min_frequency:
        Pairs rarer than this are never merged.
    """
    specials = specials or SpecialTokens.bert()
    word_freq: Counter[str] = Counter()
    for line in corpus:
        for word in basic_pretokenize(normalize_text(line, lowercase=lowercase)):
            word_freq[word] += 1

    # Each word starts as its character sequence with ## continuations.
    segmentations: dict[str, list[str]] = {
        word: [word[0]] + [_CONT + ch for ch in word[1:]]
        for word in word_freq
    }
    alphabet = sorted({sym for seg in segmentations.values() for sym in seg})
    vocab_tokens: list[str] = list(alphabet)
    n_reserved = len(specials.all())

    while n_reserved + len(vocab_tokens) < vocab_size:
        pair_freq: Counter[tuple[str, str]] = Counter()
        symbol_freq: Counter[str] = Counter()
        for word, seg in segmentations.items():
            freq = word_freq[word]
            for sym in seg:
                symbol_freq[sym] += freq
            for a, b in zip(seg, seg[1:]):
                pair_freq[(a, b)] += freq
        if not pair_freq:
            break
        best_pair, best_score = None, 0.0
        for (a, b), freq in pair_freq.items():
            if freq < min_frequency:
                continue
            score = freq / (symbol_freq[a] * symbol_freq[b])
            if best_pair is None or score > best_score or (
                    score == best_score and (a, b) < best_pair):
                best_pair, best_score = (a, b), score
        if best_pair is None:
            break
        merged = best_pair[0] + best_pair[1].removeprefix(_CONT)
        vocab_tokens.append(merged)
        for word, seg in segmentations.items():
            segmentations[word] = _apply_merge(seg, best_pair, merged)

    vocab = Vocab(vocab_tokens, specials)
    return WordPieceTokenizer(vocab, lowercase=lowercase)


def _apply_merge(seg: list[str], pair: tuple[str, str],
                 merged: str) -> list[str]:
    out: list[str] = []
    i = 0
    while i < len(seg):
        if i + 1 < len(seg) and (seg[i], seg[i + 1]) == pair:
            out.append(merged)
            i += 2
        else:
            out.append(seg[i])
            i += 1
    return out


def _wordpiece_payload(tokenizer: WordPieceTokenizer) -> dict:
    return {
        "kind": "wordpiece",
        "lowercase": tokenizer.lowercase,
        "tokens": tokenizer.vocab.tokens(),
        "specials": {
            "pad": tokenizer.vocab.specials.pad,
            "unk": tokenizer.vocab.specials.unk,
            "cls": tokenizer.vocab.specials.cls,
            "sep": tokenizer.vocab.specials.sep,
            "mask": tokenizer.vocab.specials.mask,
        },
    }


def _wordpiece_from_payload(payload: dict) -> WordPieceTokenizer:
    specials = SpecialTokens(**payload["specials"])
    n = len(specials.all())
    vocab = Vocab(payload["tokens"][n:], specials)
    return WordPieceTokenizer(vocab, lowercase=payload["lowercase"])


WordPieceTokenizer.to_payload = _wordpiece_payload
WordPieceTokenizer.from_payload = staticmethod(_wordpiece_from_payload)
