"""Text normalization and pre-tokenization.

The paper describes two pre-tokenization styles: BERT's whitespace +
punctuation splitting (lower-cased English models) and RoBERTa's GPT-2
style splitting that also peels off common English contractions
(``'s|'t|'re|'ve|'m|'ll|'d``).  XLNet skips pre-tokenization and feeds raw
text to SentencePiece; we expose that as :func:`no_pretokenize`.
"""

from __future__ import annotations

import re
import unicodedata
from functools import lru_cache

__all__ = ["normalize_text", "basic_pretokenize", "gpt2_pretokenize",
           "no_pretokenize"]

_CONTRACTIONS = re.compile(r"('s|'t|'re|'ve|'m|'ll|'d)$")
_GPT2_SPLIT = re.compile(
    r"'s|'t|'re|'ve|'m|'ll|'d| ?[a-zA-Z]+| ?[0-9]+| ?[^\sa-zA-Z0-9]+|\s+")


def normalize_text(text: str, lowercase: bool = True,
                   strip_accents: bool = True) -> str:
    """Unicode NFKD normalization, optional lowercasing and accent removal."""
    if text.isascii():
        # NFKD is the identity on ASCII and ASCII has no combining
        # marks, so only the casefold applies — this skips the per-char
        # category scan on the overwhelmingly common case.
        return text.lower() if lowercase else text
    text = unicodedata.normalize("NFKD", text)
    if strip_accents:
        text = "".join(ch for ch in text
                       if unicodedata.category(ch) != "Mn")
    if lowercase:
        text = text.lower()
    return text


@lru_cache(maxsize=65536)
def _is_punctuation(ch: str) -> bool:
    return unicodedata.category(ch).startswith("P") or ch in "$+<=>^`|~"


def basic_pretokenize(text: str) -> list[str]:
    """BERT-style: split on whitespace, then isolate punctuation characters."""
    words: list[str] = []
    for chunk in text.split():
        current: list[str] = []
        for ch in chunk:
            if _is_punctuation(ch):
                if current:
                    words.append("".join(current))
                    current = []
                words.append(ch)
            else:
                current.append(ch)
        if current:
            words.append("".join(current))
    return words


def gpt2_pretokenize(text: str) -> list[str]:
    """RoBERTa/GPT-2 style splitting with contraction handling.

    Leading spaces are kept attached to the following word (the byte-level
    BPE treats a leading space as part of the token), mirroring GPT-2.
    Whitespace runs are collapsed to single spaces first — record text is
    single-spaced anyway, and this keeps the tokenizer losslessly
    reversible on its actual input domain.
    """
    text = " ".join(text.split())
    pieces = _GPT2_SPLIT.findall(text)
    return [p for p in pieces if p.strip() or p == " "]


def no_pretokenize(text: str) -> list[str]:
    """SentencePiece-style: the whole text is one piece (spaces -> '▁')."""
    return ["▁" + text.replace(" ", "▁")] if text else []
