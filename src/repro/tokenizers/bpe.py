"""Byte-level byte-pair encoding (Sennrich et al., 2016; GPT-2/RoBERTa).

Text is first mapped to a reversible printable-unicode representation of
its UTF-8 bytes (so *any* input is encodable without UNK), then merged
greedily in learned merge order.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

from .base import SubwordTokenizer
from .normalize import gpt2_pretokenize, normalize_text
from .vocab import SpecialTokens, Vocab

__all__ = ["ByteLevelBPETokenizer", "train_byte_level_bpe"]


@lru_cache(maxsize=1)
def _byte_encoder() -> dict[int, str]:
    """GPT-2's reversible byte -> printable unicode char map."""
    visible = (list(range(ord("!"), ord("~") + 1))
               + list(range(ord("\xa1"), ord("\xac") + 1))
               + list(range(ord("\xae"), ord("\xff") + 1)))
    chars = visible[:]
    offset = 0
    for byte in range(256):
        if byte not in visible:
            visible.append(byte)
            chars.append(256 + offset)
            offset += 1
    return dict(zip(visible, (chr(c) for c in chars)))


@lru_cache(maxsize=1)
def _byte_decoder() -> dict[str, int]:
    return {ch: byte for byte, ch in _byte_encoder().items()}


def _to_byte_chars(word: str) -> list[str]:
    encoder = _byte_encoder()
    return [encoder[b] for b in word.encode("utf-8")]


class ByteLevelBPETokenizer(SubwordTokenizer):
    """Encoder applying learned merges in rank order."""

    def __init__(self, vocab: Vocab, merges: list[tuple[str, str]],
                 lowercase: bool = True):
        super().__init__(vocab)
        self.lowercase = lowercase
        self.merges = list(merges)
        self._ranks = {pair: i for i, pair in enumerate(merges)}

    def tokenize(self, text: str) -> list[str]:
        text = normalize_text(text, lowercase=self.lowercase,
                              strip_accents=False)
        tokens: list[str] = []
        for word in gpt2_pretokenize(text):
            tokens.extend(self.memoized_word(word, self._bpe))
        return tokens

    def _bpe(self, word: str) -> list[str]:
        symbols = _to_byte_chars(word)
        if len(symbols) <= 1:
            return symbols
        while True:
            best_rank, best_idx = None, None
            for i, pair in enumerate(zip(symbols, symbols[1:])):
                rank = self._ranks.get(pair)
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank, best_idx = rank, i
            if best_idx is None:
                break
            symbols = (symbols[:best_idx]
                       + [symbols[best_idx] + symbols[best_idx + 1]]
                       + symbols[best_idx + 2:])
        return symbols

    def detokenize(self, tokens: list[str]) -> str:
        decoder = _byte_decoder()
        data = bytes(decoder[ch] for token in tokens for ch in token)
        return data.decode("utf-8", errors="replace").strip()

    # -- persistence (merges are part of the model) ------------------------

    def merge_table(self) -> list[tuple[str, str]]:
        return list(self.merges)


def train_byte_level_bpe(corpus: list[str], vocab_size: int,
                         lowercase: bool = True,
                         min_frequency: int = 2,
                         specials: SpecialTokens | None = None
                         ) -> ByteLevelBPETokenizer:
    """Learn byte-level BPE merges by highest pair frequency."""
    specials = specials or SpecialTokens.roberta()
    word_freq: Counter[str] = Counter()
    for line in corpus:
        text = normalize_text(line, lowercase=lowercase, strip_accents=False)
        for word in gpt2_pretokenize(text):
            word_freq[word] += 1

    segmentations: dict[str, list[str]] = {
        word: _to_byte_chars(word) for word in word_freq
    }
    alphabet = sorted({sym for seg in segmentations.values() for sym in seg})
    vocab_tokens: list[str] = list(alphabet)
    merges: list[tuple[str, str]] = []
    n_reserved = len(specials.all())

    while n_reserved + len(vocab_tokens) < vocab_size:
        pair_freq: Counter[tuple[str, str]] = Counter()
        for word, seg in segmentations.items():
            freq = word_freq[word]
            for pair in zip(seg, seg[1:]):
                pair_freq[pair] += freq
        if not pair_freq:
            break
        best_pair, best_freq = None, 0
        for pair, freq in pair_freq.items():
            if freq < min_frequency:
                continue
            if best_pair is None or freq > best_freq or (
                    freq == best_freq and pair < best_pair):
                best_pair, best_freq = pair, freq
        if best_pair is None:
            break
        merged = best_pair[0] + best_pair[1]
        merges.append(best_pair)
        vocab_tokens.append(merged)
        for word, seg in segmentations.items():
            segmentations[word] = _merge_seg(seg, best_pair, merged)

    vocab = Vocab(vocab_tokens, specials)
    return ByteLevelBPETokenizer(vocab, merges, lowercase=lowercase)


def _merge_seg(seg: list[str], pair: tuple[str, str],
               merged: str) -> list[str]:
    out: list[str] = []
    i = 0
    while i < len(seg):
        if i + 1 < len(seg) and (seg[i], seg[i + 1]) == pair:
            out.append(merged)
            i += 2
        else:
            out.append(seg[i])
            i += 1
    return out


def _bpe_payload(tokenizer: ByteLevelBPETokenizer) -> dict:
    return {
        "kind": "bpe",
        "lowercase": tokenizer.lowercase,
        "tokens": tokenizer.vocab.tokens(),
        "merges": [list(pair) for pair in tokenizer.merges],
        "specials": {
            "pad": tokenizer.vocab.specials.pad,
            "unk": tokenizer.vocab.specials.unk,
            "cls": tokenizer.vocab.specials.cls,
            "sep": tokenizer.vocab.specials.sep,
            "mask": tokenizer.vocab.specials.mask,
        },
    }


def _bpe_from_payload(payload: dict) -> ByteLevelBPETokenizer:
    specials = SpecialTokens(**payload["specials"])
    n = len(specials.all())
    vocab = Vocab(payload["tokens"][n:], specials)
    merges = [tuple(pair) for pair in payload["merges"]]
    return ByteLevelBPETokenizer(vocab, merges,
                                 lowercase=payload["lowercase"])


ByteLevelBPETokenizer.to_payload = _bpe_payload
ByteLevelBPETokenizer.from_payload = staticmethod(_bpe_from_payload)
