"""Deterministic random-number plumbing.

Every experiment in the repository is seeded; independent components get
independent child generators derived from a root seed so that changing one
component's consumption pattern does not perturb the others.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["child_rng", "spawn_seeds", "get_rng_state", "set_rng_state"]


def child_rng(seed: int, *scope: str | int) -> np.random.Generator:
    """A generator unique to (seed, scope) — stable across runs."""
    entropy = [seed] + [
        part if isinstance(part, int)
        else int.from_bytes(part.encode("utf-8")[:8].ljust(8, b"\0"), "little")
        for part in scope
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_seeds(seed: int, count: int) -> list[int]:
    """``count`` independent 32-bit seeds derived from ``seed``."""
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2 ** 31 - 1, size=count)]


def get_rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a generator's stream position.

    Restoring it with :func:`set_rng_state` makes the generator produce
    exactly the draws it would have produced from this point — the basis
    of bit-identical checkpoint/resume in :mod:`repro.resilience`.
    """
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a stream position captured by :func:`get_rng_state`."""
    expected = rng.bit_generator.state.get("bit_generator")
    provided = state.get("bit_generator")
    if provided != expected:
        raise ValueError(
            f"RNG state is for bit generator {provided!r}, but this "
            f"generator uses {expected!r}")
    rng.bit_generator.state = state
