"""Deterministic random-number plumbing.

Every experiment in the repository is seeded; independent components get
independent child generators derived from a root seed so that changing one
component's consumption pattern does not perturb the others.
"""

from __future__ import annotations

import numpy as np

__all__ = ["child_rng", "spawn_seeds"]


def child_rng(seed: int, *scope: str | int) -> np.random.Generator:
    """A generator unique to (seed, scope) — stable across runs."""
    entropy = [seed] + [
        part if isinstance(part, int)
        else int.from_bytes(part.encode("utf-8")[:8].ljust(8, b"\0"), "little")
        for part in scope
    ]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_seeds(seed: int, count: int) -> list[int]:
    """``count`` independent 32-bit seeds derived from ``seed``."""
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2 ** 31 - 1, size=count)]
