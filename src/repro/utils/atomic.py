"""Atomic file writes for on-disk artifacts.

A crash (or injected fault) in the middle of a plain ``open(...,
"w")``/``write_text`` leaves a truncated file that poisons the next run.
Every artifact writer in the repo — checkpoints, tokenizer payloads,
dataset CSVs, experiment caches — routes through the temp-file +
``os.replace`` pattern instead, so readers only ever observe either the
old complete file or the new complete file.  Lint rule RA109
(:mod:`repro.analysis.lint`) enforces the pattern.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes"]


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp + ``os.replace``)."""
    atomic_write_bytes(path, text.encode(encoding))
