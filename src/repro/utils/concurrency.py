"""Thread-safety contracts and opt-in concurrency instrumentation hooks.

This module is the *zero-dependency* substrate shared by production code
(``repro.serve``, ``repro.perf.cache``, ``repro.obs.registry``) and the
race-detection tooling in :mod:`repro.analysis.concurrency`.  It has no
imports beyond the stdlib, so any layer of the package may use it
without creating an import cycle.

Three facilities live here:

* **Contracts** — :func:`guarded_by` declares, on a method, which lock
  attribute must be held when the method runs.  Together with trailing
  ``# guard: <lock>`` comments on ``__init__`` attribute assignments it
  forms the annotation convention checked statically by lint rule
  RA114 and dynamically by the lockset detector.
* **Hot-path hooks** — :func:`access` (a shared-state read/write) and
  :func:`checkpoint` (a scheduling yield point) compile down to a
  single module-global ``None`` check when no tool is attached, the
  same zero-overhead pattern as ``repro.analysis.sanitize``.
* **Lock factories** — :func:`make_lock` / :func:`make_rlock` /
  :func:`make_condition` return plain :mod:`threading` primitives
  normally, but hand back instrumented wrappers while a detector is
  installed, so objects *created inside* a detector context are traced
  without their modules importing the detector.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

__all__ = [
    "guarded_by",
    "access",
    "checkpoint",
    "blocked",
    "make_lock",
    "make_rlock",
    "make_condition",
    "set_access_hook",
    "set_checkpoint_hook",
    "set_lock_factory",
    "access_hook",
    "checkpoint_hook",
    "lock_factory",
]

# Module-global hook slots.  ``None`` means "inactive"; the hot-path
# helpers below are then a single attribute load + comparison.
_ACCESS_HOOK: Optional[Callable[[Any, str, bool], None]] = None
_CHECKPOINT_HOOK: Optional[Any] = None
_LOCK_FACTORY: Optional[Any] = None
_HOOK_LOCK = threading.Lock()


def guarded_by(lock_attr: str) -> Callable:
    """Declare that a method must run with ``self.<lock_attr>`` held.

    The decorator is purely declarative: it tags the function with
    ``__guarded_by__`` and returns it unchanged (zero runtime cost).
    Lint rule RA114 reads the tag to exempt ``*_locked`` helper methods
    whose callers take the lock, and the lockset detector folds the
    declared guard into its reports.

    >>> class Queue:
    ...     @guarded_by("_lock")
    ...     def _pop_locked(self): ...
    """
    def decorate(fn: Callable) -> Callable:
        fn.__guarded_by__ = lock_attr.removeprefix("self.")
        return fn
    return decorate


def access(owner: Any, attr: str, write: bool = True) -> None:
    """Report a shared-state access to the active detector, if any.

    Call this *inside* the guarded region, next to the read or write of
    ``owner.<attr>`` it describes.  With no detector installed the call
    is one global load and a ``None`` test.
    """
    hook = _ACCESS_HOOK
    if hook is not None:
        hook(owner, attr, write)


def checkpoint(label: str = "yield") -> None:
    """A cooperative scheduling point for the schedule explorer.

    Threads registered with an active explorer park here until the
    seeded scheduler picks them to run; everyone else falls straight
    through.
    """
    hook = _CHECKPOINT_HOOK
    if hook is not None:
        hook.on_checkpoint(label)


def blocked(resource: str) -> bool:
    """Tell the active explorer this thread failed to acquire ``resource``.

    Returns ``True`` if an explorer handled the block (caller should
    retry the non-blocking acquire), ``False`` when no explorer is
    active (caller should fall back to a real blocking acquire).
    """
    hook = _CHECKPOINT_HOOK
    if hook is None:
        return False
    hook.on_blocked(resource)
    return True


def make_lock(label: str = "lock") -> Any:
    """A ``threading.Lock`` — instrumented while a detector is active."""
    factory = _LOCK_FACTORY
    if factory is None:
        return threading.Lock()
    return factory.make_lock(label)


def make_rlock(label: str = "rlock") -> Any:
    """A ``threading.RLock`` — instrumented while a detector is active."""
    factory = _LOCK_FACTORY
    if factory is None:
        return threading.RLock()
    return factory.make_rlock(label)


def make_condition(label: str = "cond", lock: Any = None) -> Any:
    """A ``threading.Condition`` — instrumented while a detector is
    active.  ``lock`` is passed through when given."""
    factory = _LOCK_FACTORY
    if factory is None:
        return threading.Condition(lock) if lock is not None \
            else threading.Condition()
    return factory.make_condition(label, lock)


def set_access_hook(hook) -> None:
    """Install (or with ``None`` remove) the global access hook.

    Only one hook may be active at a time — installing over a live hook
    raises, mirroring ``detect_anomalies``'s single-active rule.
    """
    global _ACCESS_HOOK
    with _HOOK_LOCK:
        if hook is not None and _ACCESS_HOOK is not None:
            raise RuntimeError("an access hook is already installed")
        _ACCESS_HOOK = hook


def set_checkpoint_hook(hook) -> None:
    """Install (or with ``None`` remove) the global checkpoint hook."""
    global _CHECKPOINT_HOOK
    with _HOOK_LOCK:
        if hook is not None and _CHECKPOINT_HOOK is not None:
            raise RuntimeError("a checkpoint hook is already installed")
        _CHECKPOINT_HOOK = hook


def set_lock_factory(factory) -> None:
    """Install (or with ``None`` remove) the global lock factory."""
    global _LOCK_FACTORY
    with _HOOK_LOCK:
        if factory is not None and _LOCK_FACTORY is not None:
            raise RuntimeError("a lock factory is already installed")
        _LOCK_FACTORY = factory


def access_hook():
    """The currently installed access hook (``None`` when inactive)."""
    return _ACCESS_HOOK


def checkpoint_hook():
    """The currently installed checkpoint hook (``None`` when inactive)."""
    return _CHECKPOINT_HOOK


def lock_factory():
    """The currently installed lock factory (``None`` when inactive)."""
    return _LOCK_FACTORY
