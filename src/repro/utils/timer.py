"""Wall-clock timing helpers for the training-time experiments (Table 6)."""

from __future__ import annotations

import time

__all__ = ["Timer", "format_duration"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self):
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        return False


def format_duration(seconds: float) -> str:
    """Render seconds the way the paper's Table 6 does (e.g. '2m 42s')."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m {rem:.0f}s"
