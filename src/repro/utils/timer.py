"""Deprecated location — timing helpers moved to :mod:`repro.obs`.

``Timer`` and ``format_duration`` are kept importable from here (and from
``repro.utils``) for backwards compatibility; new code should use
``repro.obs.trace`` spans and ``repro.obs.format_duration``.
"""

from __future__ import annotations

# Import from the submodule (not the obs package __init__) so this stays
# safe regardless of which package starts the import cycle.
from ..obs.tracing import Timer, format_duration

__all__ = ["Timer", "format_duration"]
