"""Shared utilities: seeding, caching and report rendering.

``Timer`` / ``format_duration`` moved to :mod:`repro.obs` and are
re-exported here for backwards compatibility.
"""

from .rng import child_rng, spawn_seeds
# render must be imported before timer: timer pulls in repro.obs, whose
# report module imports repro.utils.render while this package is still
# initializing.
from .render import format_table, format_series
from .timer import Timer, format_duration

__all__ = ["child_rng", "spawn_seeds", "Timer", "format_duration",
           "format_table", "format_series"]
