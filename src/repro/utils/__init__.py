"""Shared utilities: seeding, timing, caching and report rendering."""

from .rng import child_rng, spawn_seeds
from .render import format_table, format_series
from .timer import Timer, format_duration

__all__ = ["child_rng", "spawn_seeds", "Timer", "format_duration",
           "format_table", "format_series"]
