"""Shared utilities: seeding, caching and report rendering.

``Timer`` / ``format_duration`` moved to :mod:`repro.obs` and are
re-exported here for backwards compatibility.
"""

from .atomic import atomic_write_bytes, atomic_write_text
from .concurrency import access, checkpoint, guarded_by
from .rng import child_rng, get_rng_state, set_rng_state, spawn_seeds
# render must be imported before timer: timer pulls in repro.obs, whose
# report module imports repro.utils.render while this package is still
# initializing.
from .render import format_table, format_series
from .timer import Timer, format_duration

__all__ = ["child_rng", "spawn_seeds", "get_rng_state", "set_rng_state",
           "atomic_write_text", "atomic_write_bytes",
           "guarded_by", "access", "checkpoint",
           "Timer", "format_duration", "format_table", "format_series"]
