"""Plain-text rendering of result tables and per-epoch series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(row):
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(name: str, values: list[float],
                  precision: int = 1) -> str:
    """Render one figure series as 'name: v1 v2 v3 ...'."""
    rendered = " ".join(f"{v:.{precision}f}" for v in values)
    return f"{name}: {rendered}"
