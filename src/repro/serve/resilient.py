"""Fault-tolerant serving tier: retries, breakers, hedging, supervision.

:class:`MatchService` is deliberately simple: it batches, it bounds its
queue, and it fails typed.  This module wraps N such services in the
machinery that turns typed failures into availability (DESIGN.md §15):

* :class:`ReplicaSet` — a self-healing supervisor owning N in-process
  replicas.  A recurring health probe (on the shared
  :class:`~repro.serve.Clock`) respawns any replica whose worker pool
  died (chaos ``maybe_kill_worker``, or a real crash) or that was
  closed, failing its stranded queue typed so clients can retry.  Each
  replica carries a :class:`~repro.serve.CircuitBreaker`; routing picks
  the least-loaded healthy replica whose breaker admits traffic.
* :class:`ResilientClient` — the request-level front end.  Every
  logical request becomes a *flight* that may span several attempts:
  failed attempts are retried under a :class:`~repro.serve.RetryPolicy`
  (seeded backoff, retry budget, deadline propagation), stragglers are
  *hedged* (a duplicate is launched once the attempt outlives a latency
  percentile; first result wins, the loser is cancelled), and
  submissions are shed with :class:`~repro.serve.ServiceOverloaded`
  when the fleet-wide queue depth says the system is saturated —
  failing fast beats queueing doomed work.

The client is fully event-driven: no thread per request, no polling.
Completions propagate through :meth:`MatchTicket.add_done_callback`,
and everything time-based — attempt timeouts, hedge triggers, backoff,
health probes, logical deadlines — is a :meth:`Clock.call_later` timer.
On a :class:`~repro.serve.VirtualClock` those timers fire on the driver
thread in deterministic order, so an entire outage-and-recovery
scenario replays bit-identically (:func:`run_resilient_simulation`);
on a :class:`~repro.serve.SystemClock` the same code serves real
traffic with one shared timer thread.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..obs import default_registry
from ..obs.registry import LATENCY_BUCKETS
from ..utils.concurrency import access, make_lock
from .breaker import BreakerConfig, CircuitBreaker
from .clock import Clock, SystemClock, VirtualClock
from .retry import RetryConfig, RetryPolicy
from .service import MatchService, MatchTicket, RequestCancelled, \
    RequestTimeout, ServeError, ServiceClosed, ServiceOverloaded
from .sim import SimReport, Workload, _advance_settled

__all__ = ["HedgeConfig", "ResilientConfig", "Replica", "ReplicaSet",
           "ResilientClient", "run_resilient_simulation"]


@dataclass
class HedgeConfig:
    """When to duplicate a straggling attempt.

    With ``delay_ms`` unset the hedge trigger adapts: it is the
    ``percentile`` of the client's recent success latencies (needing at
    least ``min_samples`` observations before any hedge fires).  A
    fixed ``delay_ms`` overrides that — the deterministic-test knob.
    ``max_hedges`` bounds duplicates per logical request; hedges do
    not consume the retry budget (they add bounded load by design).
    """

    enabled: bool = True
    delay_ms: float | None = None
    percentile: float = 0.95
    min_samples: int = 20
    min_delay_ms: float = 1.0
    max_hedges: int = 1

    def __post_init__(self):
        if self.delay_ms is not None and self.delay_ms <= 0:
            raise ValueError(f"delay_ms must be > 0 when set, got "
                             f"{self.delay_ms}")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got "
                             f"{self.percentile}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got "
                             f"{self.min_samples}")
        if self.min_delay_ms < 0:
            raise ValueError(f"min_delay_ms must be >= 0, got "
                             f"{self.min_delay_ms}")
        if self.max_hedges < 0:
            raise ValueError(f"max_hedges must be >= 0, got "
                             f"{self.max_hedges}")


@dataclass
class ResilientConfig:
    """Client-side fault-tolerance policy for :class:`ResilientClient`.

    ``attempt_timeout_ms`` bounds every individual attempt — a request
    stuck behind a slow or dead replica is abandoned (best-effort
    cancelled), charged to that replica's breaker, and retried
    elsewhere.  ``default_timeout_ms`` is the *logical* end-to-end
    deadline applied when ``submit`` gets none (None = unbounded).
    ``shed_queue_factor`` scales the load-shedding threshold: new
    submissions are rejected once the fleet-wide queue depth reaches
    ``factor × total queue capacity``.
    """

    retry: RetryConfig = field(default_factory=RetryConfig)
    hedge: HedgeConfig = field(default_factory=HedgeConfig)
    attempt_timeout_ms: float = 250.0
    default_timeout_ms: float | None = None
    shed_queue_factor: float = 1.0

    def __post_init__(self):
        if self.attempt_timeout_ms <= 0:
            raise ValueError(f"attempt_timeout_ms must be > 0, got "
                             f"{self.attempt_timeout_ms}")
        if self.default_timeout_ms is not None \
                and self.default_timeout_ms <= 0:
            raise ValueError(f"default_timeout_ms must be > 0, got "
                             f"{self.default_timeout_ms}")
        if self.shed_queue_factor <= 0:
            raise ValueError(f"shed_queue_factor must be > 0, got "
                             f"{self.shed_queue_factor}")


class Replica:
    """One supervised :class:`MatchService` slot in a :class:`ReplicaSet`.

    The slot outlives any individual service: chaos (or reality) kills
    the service's workers, the supervisor closes it and spawns a fresh
    one from ``factory`` into the same slot, under the same breaker
    identity (reset, since the new pool shares none of the old one's
    failure history).
    """

    def __init__(self, index: int, factory):
        self.index = index
        self.name = f"replica-{index}"
        self._factory = factory
        self.service: MatchService | None = None
        self.breaker: CircuitBreaker | None = None
        #: How many services have occupied this slot (0 = never spawned).
        self.generation = 0
        #: Supervisor respawns (excludes the initial spawn).
        self.respawns = 0

    def spawn(self) -> MatchService:
        """Build and start a fresh service in this slot."""
        self.service = self._factory(self.index)
        self.service.start()
        self.generation += 1
        return self.service


class ReplicaSet:
    """Self-healing supervisor over N in-process match services.

    ``factory(index)`` must return an *unstarted* :class:`MatchService`
    sharing this set's clock (and usually its registry); the supervisor
    owns start/close.  A recurring probe every ``probe_interval_ms``
    (on the shared clock, so virtual-time tests control it exactly)
    closes and respawns any replica that is no longer
    :attr:`~MatchService.healthy` — its stranded queue fails typed with
    :class:`~repro.serve.ServiceClosed`, which the resilient client
    retries on surviving replicas.

    Usage::

        replicas = ReplicaSet(factory, num_replicas=3, clock=clock)
        client = ResilientClient(replicas)
        with client:
            outcome = client.submit(a, b).result()
    """

    def __init__(self, factory, num_replicas: int = 2,
                 clock: Clock | None = None, registry=None,
                 breaker_config: BreakerConfig | None = None,
                 probe_interval_ms: float = 50.0):
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got "
                             f"{num_replicas}")
        if probe_interval_ms <= 0:
            raise ValueError(f"probe_interval_ms must be > 0, got "
                             f"{probe_interval_ms}")
        self.clock = clock or SystemClock()
        self.registry = registry if registry is not None \
            else default_registry()
        self.breaker_config = breaker_config or BreakerConfig()
        self._probe_interval = probe_interval_ms / 1000.0
        self._lock = make_lock("ReplicaSet._lock")
        self._closed = False        # guard: _lock
        self._probing = False       # guard: _lock
        self._probe_handle = None   # guard: _lock
        self.replicas = [Replica(index, factory)
                         for index in range(num_replicas)]
        for replica in self.replicas:
            replica.breaker = CircuitBreaker(
                replica.name, self.breaker_config, clock=self.clock,
                registry=self.registry)
        self._respawns = self.registry.counter("serve.replicas.respawns")
        self._alive = self.registry.gauge("serve.replicas.alive")

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicaSet":
        """Spawn all replicas and arm the health probe (idempotent)."""
        with self._lock:
            access(self, "_closed", write=False)
            if self._closed:
                raise ServiceClosed("cannot start a closed replica set")
        for replica in self.replicas:
            if replica.service is None:
                replica.spawn()
        self._alive.set(self.healthy_count)
        with self._lock:
            if self._probe_handle is None:
                access(self, "_probe_handle")
                self._probe_handle = self.clock.call_later(
                    self._probe_interval, self._probe_tick)
        return self

    def close(self, drain: bool = True) -> None:
        """Disarm the probe and close every replica's service."""
        with self._lock:
            access(self, "_closed")
            self._closed = True
            handle = self._probe_handle
            access(self, "_probe_handle")
            self._probe_handle = None
        if handle is not None:
            self.clock.cancel(handle)
        for replica in self.replicas:
            if replica.service is not None:
                replica.service.close(drain=drain)
        self._alive.set(0)

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- health / supervision ------------------------------------------------

    def _probe_tick(self) -> None:
        with self._lock:
            access(self, "_closed", write=False)
            if self._closed:
                return
            access(self, "_probing")
            self._probing = True
        try:
            self.probe()
        finally:
            with self._lock:
                access(self, "_probing")
                self._probing = False
                if not self._closed:
                    access(self, "_probe_handle")
                    self._probe_handle = self.clock.call_later(
                        self._probe_interval, self._probe_tick)

    def probe(self) -> int:
        """One health sweep; returns how many replicas were respawned.

        An unhealthy replica (dead/partially dead worker pool, or
        closed) is closed without drain — stranding its queue would
        stall those requests forever, while failing them typed lets the
        client retry immediately — then respawned fresh, with its
        breaker reset.
        """
        respawned = 0
        for replica in self.replicas:
            service = replica.service
            if service is not None and service.healthy:
                continue
            if service is not None:
                service.close(drain=False)
            replica.spawn()
            replica.respawns += 1
            replica.breaker.reset()
            self._respawns.inc()
            respawned += 1
        self._alive.set(self.healthy_count)
        return respawned

    @property
    def healthy_count(self) -> int:
        """Replicas currently healthy (live full worker pools)."""
        return sum(1 for replica in self.replicas
                   if replica.service is not None
                   and replica.service.healthy)

    # -- routing -------------------------------------------------------------

    def pick(self, exclude=()) -> Replica | None:
        """The replica to route the next attempt to, or None.

        Healthy replicas outside ``exclude`` are tried least-loaded
        first (ties broken by index, so routing is deterministic);
        the first whose breaker admits the request wins.  If none does,
        excluded replicas are considered as a fallback — retrying on
        the same replica beats failing a request outright when it is
        the only one left.
        """
        if len(self.replicas) == 1:
            # Single-replica fleet: the two-pass preference degenerates
            # to "healthy and the breaker admits" (the fallback pass
            # re-admits an excluded sole replica anyway), so skip the
            # ranking machinery on this hot path.
            replica = self.replicas[0]
            service = replica.service
            if service is not None and service.healthy \
                    and replica.breaker.allow():
                return replica
            return None
        exclude = set(exclude)
        # Sorting (depth, index) tuples keeps the ranking in C — the
        # index is unique, so the replica object itself is never
        # compared.  This runs once per request; no lambdas, no extra
        # property round-trips.
        ranked = sorted(
            (replica.service.queue_depth, replica.index, replica)
            for replica in self.replicas
            if replica.service is not None and replica.service.healthy)
        for preferred in (True, False):
            for _depth, index, replica in ranked:
                if (index not in exclude) is preferred \
                        and replica.breaker.allow():
                    return replica
        return None

    @property
    def total_queue_depth(self) -> int:
        """Queued requests across all live replicas."""
        total = 0
        for replica in self.replicas:
            if replica.service is not None:
                total += replica.service.queue_depth
        return total

    def load(self) -> tuple[int, int]:
        """``(queued, capacity)`` across live replicas in one pass —
        the admission check reads both every request, and two property
        walks over the fleet would double the cost."""
        queued = 0
        capacity = 0
        for replica in self.replicas:
            service = replica.service
            if service is not None:
                queued += service.queue_depth
                capacity += service.config.max_queue
        return queued, capacity

    @property
    def capacity(self) -> int:
        """Fleet-wide queue capacity (sum of ``max_queue``)."""
        return sum(replica.service.config.max_queue
                   for replica in self.replicas
                   if replica.service is not None)

    def drain_hint(self) -> float:
        """Backoff hint when shedding: the fastest replica's estimated
        backlog drain time (mirrors the per-service ``retry_after``)."""
        hints = []
        for replica in self.replicas:
            service = replica.service
            if service is None or not service.healthy:
                continue
            config = service.config
            drains = -(-service.queue_depth // config.max_batch_size)
            hints.append(max(drains, 1) * config.max_wait_ms / 1000.0)
        return min(hints) if hints else self._probe_interval

    @property
    def settled(self) -> bool:
        """Quiescence across the fleet, for the virtual-time driver.

        True when no probe is mid-sweep and every replica's service is
        settled (a service with a dead worker pool counts as settled —
        nothing will react until a timer-driven respawn, and timers are
        the driver's job).
        """
        with self._lock:
            access(self, "_probing", write=False)
            if self._probing:
                return False
        return all(replica.service is None or replica.service.settled
                   for replica in self.replicas)


class _Attempt:
    """One submission of a flight to one replica."""

    __slots__ = ("replica", "is_hedge", "ticket", "finished",
                 "abandoned")

    def __init__(self, replica: Replica, is_hedge: bool):
        self.replica = replica
        self.is_hedge = is_hedge
        self.ticket: MatchTicket | None = None
        #: Completion callback ran (success or failure) — the shared
        #: timeout sweep must not fire for this attempt any more.
        self.finished = False
        self.abandoned = False


class _Flight:
    """One logical request and all its attempts.

    All mutable fields are guarded by the owning client's ``_lock``
    (they are plain attributes here because flights are internal and
    never escape the client).
    """

    __slots__ = ("id", "entity_a", "entity_b", "deadline", "ticket",
                 "serial_attempts", "hedges_launched", "outstanding",
                 "done", "last_error", "last_replica", "retry_handle",
                 "hedge_handle", "deadline_handle")

    def __init__(self, flight_id: int, entity_a, entity_b,
                 submitted_at: float, deadline: float | None):
        self.id = flight_id
        self.entity_a = entity_a
        self.entity_b = entity_b
        self.deadline = deadline
        self.ticket = MatchTicket(flight_id, submitted_at)
        self.serial_attempts = 0
        self.hedges_launched = 0
        self.outstanding: list[_Attempt] = []
        self.done = False
        self.last_error: Exception | None = None
        self.last_replica: int | None = None
        self.retry_handle = None
        self.hedge_handle = None
        self.deadline_handle = None


class ResilientClient:
    """Request-level fault tolerance over a :class:`ReplicaSet`.

    :meth:`submit` returns the same :class:`~repro.serve.MatchTicket`
    future a bare service would — callers keep their code — but behind
    it a *flight* rides out replica failures: attempt timeouts, typed
    service errors and outages are retried with seeded backoff on other
    replicas; stragglers are hedged; saturation is shed.  Everything is
    driven by ticket callbacks and clock timers, so the tier adds no
    threads and (chaos off) only microseconds per request.

    All flight state is guarded by ``_lock``; the lock is never held
    across a service call, a breaker call, or a ticket completion, so
    worker callbacks and timer callbacks cannot deadlock against
    submissions.
    """

    def __init__(self, replicas: ReplicaSet,
                 config: ResilientConfig | None = None, registry=None):
        self.replicas = replicas
        self.config = config or ResilientConfig()
        self.clock = replicas.clock
        self.policy = RetryPolicy(self.config.retry)
        registry = registry if registry is not None \
            else replicas.registry
        self._lock = make_lock("ResilientClient._lock")
        self._flights: dict[int, _Flight] = {}  # guard: _lock
        #: Recent success latencies feeding the hedge percentile.
        self._latency_window: deque = deque(maxlen=256)  # guard: _lock
        #: Shared attempt-timeout queue.  Every attempt uses the same
        #: fixed ``attempt_timeout_ms``, so deadlines arrive in FIFO
        #: order and one timer armed for the head entry replaces a
        #: ``call_later``/``cancel`` pair per request (the classic
        #: single-timer timing queue).  Entries are
        #: ``(deadline, flight, attempt)``; resolved attempts stay in
        #: the queue and are dropped lazily by the sweep.
        self._timeout_queue: deque = deque()    # guard: _lock
        self._timeout_handle = None             # guard: _lock
        self._closed = False                    # guard: _lock
        self._ids = itertools.count()
        self._requests = registry.counter("serve.client.requests")
        self._completed = registry.counter("serve.client.completed")
        self._errors = registry.counter("serve.client.errors")
        self._timeouts = registry.counter("serve.client.timeouts")
        self._shed = registry.counter("serve.client.shed")
        self._retries = registry.counter("serve.client.retries")
        self._attempt_timeouts = registry.counter(
            "serve.client.attempt_timeouts")
        self._budget_exhausted = registry.counter(
            "serve.client.budget_exhausted")
        self._hedge_launched = registry.counter("serve.hedge.launched")
        self._hedge_wins = registry.counter("serve.hedge.wins")
        self._hedge_cancelled = registry.counter("serve.hedge.cancelled")
        self._latency = registry.histogram("serve.client.latency_seconds",
                                           buckets=LATENCY_BUCKETS)
        self._backoff = registry.histogram("serve.client.backoff_seconds",
                                           buckets=LATENCY_BUCKETS)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ResilientClient":
        """Start the replica set (idempotent)."""
        self.replicas.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop admissions, close the fleet, fail leftover flights.

        With ``drain=True`` replicas finish their queues first, which
        resolves most flights normally; flights parked in a backoff or
        stranded by the shutdown fail typed with
        :class:`~repro.serve.ServiceClosed`.
        """
        with self._lock:
            access(self, "_closed")
            self._closed = True
        self.replicas.close(drain=drain)
        with self._lock:
            access(self, "_flights")
            leftovers = list(self._flights.values())
            self._flights.clear()
            cancels: list = [self._timeout_handle]
            self._timeout_handle = None
            self._timeout_queue.clear()
            for flight in leftovers:
                flight.done = True
                cancels.extend([flight.retry_handle, flight.hedge_handle,
                                flight.deadline_handle])
                flight.outstanding = []
        for handle in cancels:
            if handle is not None:
                self.clock.cancel(handle)
        now = self.clock.now()
        for flight in leftovers:
            self._errors.inc()
            flight.ticket._fail(
                ServiceClosed(f"client closed with request {flight.id} "
                              f"unresolved"), now)

    def __enter__(self) -> "ResilientClient":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Unresolved flights (for drain loops and tests)."""
        with self._lock:
            access(self, "_flights", write=False)
            return len(self._flights)

    @property
    def settled(self) -> bool:
        """Fleet quiescence for the deterministic driver.

        The client itself needs no extra bookkeeping: its state only
        changes on the driver thread (submissions, virtual-timer
        callbacks) or inside worker completions, which the replica
        services already report as unsettled.
        """
        return self.replicas.settled

    def submit(self, entity_a, entity_b,
               timeout_ms: float | None = None) -> MatchTicket:
        """Submit one pair with fault tolerance; returns its ticket.

        Raises :class:`~repro.serve.ServiceOverloaded` immediately when
        the fleet is saturated (load shedding — the ``retry_after``
        hint is the fastest replica's drain estimate) and
        :class:`~repro.serve.ServiceClosed` after :meth:`close`.
        ``timeout_ms`` (or the config default) is the *logical*
        deadline across all attempts.
        """
        # Lock-free read: _closed is monotone (False→True, once), and
        # the check-then-insert was never atomic — a submit racing
        # close() is caught by the replica services' own closed checks
        # either way, so the lock here bought cost, not safety.  (The
        # race detector only sees access()-instrumented reads; skipped
        # deliberately.)
        if self._closed:
            raise ServiceClosed("client is closed to new requests")
        depth, capacity = self.replicas.load()
        if capacity and depth >= self.config.shed_queue_factor * capacity:
            self._shed.inc()
            raise ServiceOverloaded(depth, self.replicas.drain_hint())
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        now = self.clock.now()
        deadline = None if timeout_ms is None \
            else now + timeout_ms / 1000.0
        flight = _Flight(next(self._ids), entity_a, entity_b, now,
                         deadline)
        self.policy.budget.note_request()
        self._requests.inc()
        with self._lock:
            access(self, "_flights")
            self._flights[flight.id] = flight
            if deadline is not None:
                flight.deadline_handle = self.clock.call_later(
                    timeout_ms / 1000.0,
                    lambda: self._deadline_fired(flight))
        self._launch(flight)
        return flight.ticket

    # -- attempt machinery ---------------------------------------------------

    def _launch(self, flight: _Flight, is_hedge: bool = False) -> None:
        """Route and submit one attempt (the policy's entry point)."""
        with self._lock:
            if flight.done or self._closed:
                return
            if is_hedge:
                flight.hedges_launched += 1
                self._hedge_launched.inc()
            else:
                flight.serial_attempts += 1
            exclude = {attempt.replica.index
                       for attempt in flight.outstanding}
            if flight.last_replica is not None:
                exclude.add(flight.last_replica)
        replica = self.replicas.pick(exclude)
        if replica is None:
            self._attempt_failed(
                flight,
                ServeError(f"no replica available for request "
                           f"{flight.id} (circuits open or fleet "
                           f"unhealthy)"),
                retry_after=None)
            return
        attempt = _Attempt(replica, is_hedge)
        with self._lock:
            if flight.done:
                stale = True
            else:
                stale = False
                flight.outstanding.append(attempt)
                flight.last_replica = replica.index
                # Enqueued (and, when the queue was idle, armed)
                # *before* the service submit: the worker a submit
                # wakes cannot register its flush timer until after
                # ours, so a timeout deadline that happens to coincide
                # with a flush deadline still fires in a reproducible
                # order.  ``now`` is read under the lock so concurrent
                # launches keep the queue deadline-monotone.
                timeout = self.config.attempt_timeout_ms / 1000.0
                self._timeout_queue.append(
                    (self.clock.now() + timeout, flight, attempt))
                if self._timeout_handle is None:
                    self._timeout_handle = self.clock.call_later(
                        timeout, self._timeout_sweep)
        if stale:
            replica.breaker.release()
            return
        try:
            ticket = replica.service.submit(flight.entity_a,
                                            flight.entity_b)
        except ServeError as exc:
            replica.breaker.record_failure()
            with self._lock:
                attempt.abandoned = True
                if attempt in flight.outstanding:
                    flight.outstanding.remove(attempt)
            self._attempt_failed(flight, exc,
                                 retry_after=getattr(exc, "retry_after",
                                                     None))
            return
        attempt.ticket = ticket
        if not is_hedge:
            self._maybe_arm_hedge(flight)
        ticket.add_done_callback(
            lambda done_ticket: self._attempt_done(flight, attempt,
                                                   done_ticket))

    def _maybe_arm_hedge(self, flight: _Flight) -> None:
        delay = self._hedge_delay()
        if delay is None:
            return
        with self._lock:
            if (flight.done or flight.hedge_handle is not None
                    or flight.hedges_launched
                    >= self.config.hedge.max_hedges):
                return
            flight.hedge_handle = self.clock.call_later(
                delay, lambda: self._hedge_fired(flight))

    def _hedge_delay(self) -> float | None:
        """Seconds before a straggling attempt gets a hedge, or None."""
        config = self.config.hedge
        if not config.enabled or config.max_hedges < 1:
            return None
        if config.delay_ms is not None:
            return max(config.delay_ms, config.min_delay_ms) / 1000.0
        with self._lock:
            access(self, "_latency_window", write=False)
            samples = sorted(self._latency_window)
        if len(samples) < config.min_samples:
            return None
        position = config.percentile * (len(samples) - 1)
        low = int(position)
        high = min(low + 1, len(samples) - 1)
        fraction = position - low
        value = samples[low] * (1 - fraction) + samples[high] * fraction
        # A hedge fires only when an attempt has *strictly* outlived
        # the percentile.  Observed latencies sit exactly on flush-wait
        # boundaries under virtual time, so without this relative bump
        # the hedge timer would land on the same instant as the batch
        # flush that is about to complete the attempt — a structural
        # tie whose firing order would depend on thread timing.
        value *= 1.0 + 1e-6
        return max(value, config.min_delay_ms / 1000.0)

    def _hedge_fired(self, flight: _Flight) -> None:
        with self._lock:
            flight.hedge_handle = None
            if (flight.done or self._closed or not flight.outstanding
                    or flight.hedges_launched
                    >= self.config.hedge.max_hedges):
                return
        self._launch(flight, is_hedge=True)

    def _attempt_done(self, flight: _Flight, attempt: _Attempt,
                      ticket: MatchTicket) -> None:
        """Ticket completion hook — runs on the completing thread."""
        with self._lock:
            attempt.finished = True  # retire its pooled timeout entry
            abandoned = attempt.abandoned or flight.done
        error = ticket.exception()
        if abandoned:
            # The flight moved on (timeout, hedge twin won, deadline).
            # Keep the breaker honest about what the replica did, but a
            # cancellation we issued ourselves is nobody's failure.
            if error is None:
                attempt.replica.breaker.record_success()
            elif not isinstance(error, (RequestCancelled, ServiceClosed)):
                attempt.replica.breaker.record_failure()
            return
        if error is None:
            self._attempt_succeeded(flight, attempt, ticket)
            return
        with self._lock:
            if attempt in flight.outstanding:
                flight.outstanding.remove(attempt)
        attempt.replica.breaker.record_failure()
        self._attempt_failed(flight, error,
                             retry_after=getattr(error, "retry_after",
                                                 None))

    def _attempt_succeeded(self, flight: _Flight, attempt: _Attempt,
                           ticket: MatchTicket) -> None:
        now = self.clock.now()
        latency = now - flight.ticket.submitted_at
        with self._lock:
            if flight.done:
                return
            flight.done = True
            access(self, "_flights")
            self._flights.pop(flight.id, None)
            losers = [other for other in flight.outstanding
                      if other is not attempt]
            flight.outstanding = []
            for loser in losers:
                loser.abandoned = True
            cancels = [flight.retry_handle, flight.hedge_handle,
                       flight.deadline_handle]
            access(self, "_latency_window")
            self._latency_window.append(latency)
        for handle in cancels:
            if handle is not None:
                self.clock.cancel(handle)
        attempt.replica.breaker.record_success()
        if attempt.is_hedge:
            self._hedge_wins.inc()
        for loser in losers:
            if loser.ticket is not None \
                    and loser.replica.service.cancel(loser.ticket):
                self._hedge_cancelled.inc()
        self._completed.inc()
        self._latency.observe(latency)
        flight.ticket._complete(ticket.result(), now)

    def _timeout_sweep(self) -> None:
        """Fire due attempt timeouts from the shared deadline queue.

        The queue is FIFO by deadline (fixed per-attempt timeout), so
        this pops dead heads lazily, times out the live due ones, and
        re-arms one timer for the next head.  A head entry whose
        attempt already resolved leaves the timer armed at a stale
        deadline; the cost is this one spurious sweep, never a missed
        or early timeout.
        """
        due = []
        with self._lock:
            self._timeout_handle = None
            now = self.clock.now()
            queue = self._timeout_queue
            while queue:
                deadline, flight, attempt = queue[0]
                dead = (flight.done or attempt.abandoned
                        or attempt.finished)
                if not dead and deadline > now:
                    break
                queue.popleft()
                if not dead:
                    due.append((flight, attempt))
            if queue:
                self._timeout_handle = self.clock.call_later(
                    max(queue[0][0] - now, 0.0), self._timeout_sweep)
        for flight, attempt in due:
            self._attempt_timed_out(flight, attempt)

    def _attempt_timed_out(self, flight: _Flight,
                           attempt: _Attempt) -> None:
        with self._lock:
            if flight.done or attempt.abandoned or attempt.finished:
                return
            attempt.abandoned = True
            if attempt in flight.outstanding:
                flight.outstanding.remove(attempt)
        self._attempt_timeouts.inc()
        attempt.replica.breaker.record_failure()
        if attempt.ticket is not None:
            attempt.replica.service.cancel(attempt.ticket)
        self._attempt_failed(
            flight,
            RequestTimeout(flight.id,
                           waited=self.config.attempt_timeout_ms
                           / 1000.0),
            retry_after=None)

    def _attempt_failed(self, flight: _Flight, error: Exception,
                        retry_after: float | None) -> None:
        """Decide the flight's fate after one attempt failed."""
        resolve = None
        with self._lock:
            flight.last_error = error
            if flight.done or flight.outstanding:
                return  # a twin attempt still owns the flight
            retry = (not self._closed
                     and self.policy.retryable(error)
                     and flight.serial_attempts
                     < self.config.retry.max_attempts)
            if retry:
                delay = self.policy.backoff(flight.id,
                                            flight.serial_attempts,
                                            retry_after)
                if flight.deadline is not None \
                        and self.clock.now() + delay >= flight.deadline:
                    retry = False  # the backoff lands past the deadline
            if retry and not self.policy.budget.try_spend():
                self._budget_exhausted.inc()
                retry = False
            if retry:
                self._retries.inc()
                self._backoff.observe(delay)
                flight.retry_handle = self.clock.call_later(
                    delay, lambda: self._retry_fired(flight))
                return
            flight.done = True
            access(self, "_flights")
            self._flights.pop(flight.id, None)
            resolve = [flight.hedge_handle, flight.deadline_handle]
        for handle in resolve:
            if handle is not None:
                self.clock.cancel(handle)
        self._errors.inc()
        flight.ticket._fail(error, self.clock.now())

    def _retry_fired(self, flight: _Flight) -> None:
        with self._lock:
            flight.retry_handle = None
            if flight.done or self._closed:
                return
        self._launch(flight)

    def _deadline_fired(self, flight: _Flight) -> None:
        """The logical end-to-end deadline expired: abandon everything."""
        with self._lock:
            flight.deadline_handle = None
            if flight.done:
                return
            flight.done = True
            access(self, "_flights")
            self._flights.pop(flight.id, None)
            losers = flight.outstanding
            flight.outstanding = []
            for loser in losers:
                loser.abandoned = True
            cancels = [flight.retry_handle, flight.hedge_handle]
        for handle in cancels:
            if handle is not None:
                self.clock.cancel(handle)
        for loser in losers:
            if loser.ticket is not None:
                loser.replica.service.cancel(loser.ticket)
        self._timeouts.inc()
        now = self.clock.now()
        flight.ticket._fail(
            RequestTimeout(flight.id,
                           waited=now - flight.ticket.submitted_at),
            now)


def run_resilient_simulation(client: ResilientClient,
                             workload: Workload,
                             timeout_ms: float | None = None) -> SimReport:
    """Replay ``workload`` through a :class:`ResilientClient`.

    The resilient twin of :func:`repro.serve.run_simulation`: open-loop
    arrivals, shed submissions counted as rejections, and — on a
    :class:`~repro.serve.VirtualClock` — settled stepping over the
    *composite* quiescence predicate (every replica plus the
    supervisor), so chaos, failover, hedging and respawns replay
    bit-identically.  The client is closed on return.
    """
    clock = client.clock
    virtual = isinstance(clock, VirtualClock)
    report = SimReport(offered=len(workload))
    start = clock.now()
    client.start()
    tickets = []
    elapsed = 0.0
    for arrival in workload.arrivals:
        if arrival.at > elapsed:
            if virtual:
                _advance_settled(lambda: client.settled, clock,
                                 arrival.at - elapsed)
            else:
                clock.run_for(arrival.at - elapsed)
            elapsed = arrival.at
        try:
            tickets.append(client.submit(arrival.entity_a,
                                         arrival.entity_b,
                                         timeout_ms=timeout_ms))
        except ServiceOverloaded:
            report.rejected += 1
    if virtual:
        # Every flight is bounded (attempt timeouts × retry cap, plus
        # optional deadline), so stepping timer-by-timer terminates.
        clock.settle(lambda: client.settled)
        while client.outstanding:
            deadline = clock.next_deadline()
            if deadline is None:
                break
            clock.advance(max(deadline - clock.now(), 0.0))
            clock.settle(lambda: client.settled)
    else:
        # Real-time drain with a generous safety valve; flights are
        # bounded by the same timeout arithmetic as above.
        limit = clock.now() + 60.0
        while client.outstanding and clock.now() < limit:
            clock.sleep(0.001)
    client.close(drain=True)
    for ticket in tickets:
        error = ticket.exception()
        if error is None:
            outcome = ticket.result()
            report.completed += 1
            report.latencies.append(ticket.latency)
            report.outcomes[ticket.request_id] = outcome
            if outcome.degraded:
                report.degraded += 1
        elif isinstance(error, RequestTimeout):
            report.timeouts += 1
        else:
            report.errors += 1
    report.duration = clock.now() - start
    return report
