"""The serving benchmark behind ``repro bench serve``.

Fits one matcher, measures the serial ``match_many`` baseline, then
replays seeded Poisson workloads through :class:`MatchService` on the
real clock at several offered-load levels (fractions of the measured
serial throughput).  The scorecard — per-level throughput, p50/p95
request latency, rejection/timeout counts, plus the serial baseline —
goes to ``BENCH_serve.json`` at the repo root.

Imports from ``repro.matching`` stay inside the functions for the same
reason as :mod:`repro.perf.bench`: the matching layer imports serving's
sibling packages, and module-level imports here would be circular.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .backends import MatcherBackend
from .clock import SystemClock
from .service import MatchService, ServeConfig
from .sim import generate_workload, run_simulation

__all__ = ["run_serve_benchmark", "write_serve_report",
           "validate_serve_report", "load_serve_report",
           "DEFAULT_LOAD_LEVELS", "EFFICIENCY_FLOOR"]

#: Offered load as fractions of the measured serial throughput.
DEFAULT_LOAD_LEVELS = (0.5, 1.0, 2.0)
#: Acceptance floor: service throughput at the highest load level must
#: reach this fraction of the serial ``match_many`` throughput (the
#: micro-batcher's coalescing overhead must not eat the batching win).
EFFICIENCY_FLOOR = 0.5

_REPORT_KEYS = ("benchmark", "smoke", "config", "baseline", "levels",
                "acceptance")
_LEVEL_KEYS = ("offered_rate", "offered", "completed", "rejected",
               "timeouts", "degraded", "duration_seconds", "throughput",
               "p50_latency_ms", "p95_latency_ms")


def _serial_baseline(matcher, pairs) -> dict:
    start = time.perf_counter()
    outcomes = matcher.match_many(pairs, fast=True)
    seconds = time.perf_counter() - start
    return {
        "pairs": len(pairs),
        "seconds": seconds,
        "pairs_per_sec": len(pairs) / max(seconds, 1e-9),
        "degraded": sum(1 for o in outcomes if o.degraded),
    }


def _run_level(matcher, pairs, level: float, baseline_rate: float,
               seed: int, batch_size: int, max_wait_ms: float) -> dict:
    rate = max(level * baseline_rate, 1e-6)
    workload = generate_workload(pairs, num_requests=len(pairs),
                                 rate=rate, seed=seed,
                                 pattern="poisson")
    from ..obs import MetricsRegistry
    service = MatchService(
        MatcherBackend(matcher, batch_size=batch_size),
        ServeConfig(max_batch_size=batch_size, max_wait_ms=max_wait_ms,
                    max_queue=max(4 * batch_size, len(pairs))),
        clock=SystemClock(), registry=MetricsRegistry())
    report = run_simulation(service, workload)
    return {
        "offered_rate": rate,
        "offered": report.offered,
        "completed": report.completed,
        "rejected": report.rejected,
        "timeouts": report.timeouts,
        "degraded": report.degraded,
        "duration_seconds": report.duration,
        "throughput": report.throughput,
        "p50_latency_ms": report.latency_quantile(0.50) * 1000.0,
        "p95_latency_ms": report.latency_quantile(0.95) * 1000.0,
    }


def run_serve_benchmark(arch: str = "bert", num_pairs: int = 200,
                        seed: int = 0, zoo_dir=None,
                        batch_size: int = 32, max_wait_ms: float = 10.0,
                        load_levels=DEFAULT_LOAD_LEVELS,
                        smoke: bool = False) -> dict:
    """Run the serving benchmark and return the report dict."""
    from ..perf.bench import _build_workload, _fit_matcher
    if smoke:
        num_pairs = min(num_pairs, 24)
    splits, pairs = _build_workload(num_pairs, seed)
    matcher = _fit_matcher(arch, splits, seed, zoo_dir)
    matcher.match_many(pairs[:8], fast=True)  # warm the token cache/JIT
    baseline = _serial_baseline(matcher, pairs)
    levels = {
        f"{level:g}x": _run_level(matcher, pairs, level,
                                  baseline["pairs_per_sec"], seed,
                                  batch_size, max_wait_ms)
        for level in load_levels}
    top = f"{max(load_levels):g}x"
    efficiency = (levels[top]["throughput"]
                  / max(baseline["pairs_per_sec"], 1e-9))
    return {
        "benchmark": "serve",
        "smoke": bool(smoke),
        "config": {"arch": arch, "pairs": num_pairs, "seed": seed,
                   "batch_size": batch_size, "max_wait_ms": max_wait_ms,
                   "load_levels": list(load_levels)},
        "baseline": baseline,
        "levels": levels,
        "acceptance": {
            "efficiency_at_top_load": efficiency,
            "floor": EFFICIENCY_FLOOR,
            # Smoke runs are too small for stable timing; the floor is
            # only enforced on full runs.
            "enforced": not smoke,
            "passed": bool(smoke or efficiency >= EFFICIENCY_FLOOR),
        },
    }


def validate_serve_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in _REPORT_KEYS:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("benchmark") != "serve":
        problems.append("benchmark field must be 'serve'")
    levels = report.get("levels", {})
    if not levels:
        problems.append("no load levels recorded")
    for name, entry in levels.items():
        for key in _LEVEL_KEYS:
            if key not in entry:
                problems.append(f"levels[{name!r}] missing {key!r}")
    acceptance = report.get("acceptance", {})
    for key in ("efficiency_at_top_load", "floor", "enforced", "passed"):
        if key not in acceptance:
            problems.append(f"acceptance missing {key!r}")
    return problems


def write_serve_report(report: dict, path: str | Path) -> Path:
    """Atomically write the report JSON to ``path``."""
    from ..utils import atomic_write_text
    path = Path(path)
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True)
                      + "\n")
    return path


def load_serve_report(path: str | Path) -> dict:
    """Read a report written by :func:`write_serve_report`."""
    return json.loads(Path(path).read_text())
