"""In-process entity-matching service with dynamic micro-batching.

:class:`MatchService` turns the single-caller ``match_many`` batch API
into a request-level serving path: producers submit individual pairs
(or small batches) from any thread and get a :class:`MatchTicket`
(future) back; worker threads coalesce pending requests into
length-bucketed model batches under a ``max_batch_size`` /
``max_wait_ms`` policy and complete the tickets.

The contract, end to end:

* **Equivalence** — scoring runs on the shared
  :class:`repro.matching.MatchEngine`, so a drained chunk produces the
  same floats ``match_many`` would for the same pairs (with
  ``max_batch_size >= len(pairs)`` and a quiet queue, bit-identical).
* **Admission control** — the queue is bounded (``max_queue``); a full
  queue rejects with :class:`ServiceOverloaded`, carrying a
  ``retry_after`` hint, instead of buffering without bound.
* **Deadlines** — a request whose ``timeout_ms`` elapses while queued
  completes with a typed :class:`RequestTimeout`, never a silent drop.
* **Degradation** — a poisoned batch forward degrades only the
  affected requests to the classical-similarity fallback
  (``MatchOutcome.degraded``); batch neighbors are retried and served
  normally (the engine's isolation semantics).
* **Observability** — queue depth gauge, batch-size / batch-wait /
  request-latency histograms, and request/completion/rejection/timeout/
  degradation counters under ``serve.*`` in :mod:`repro.obs`.

All timing goes through :class:`repro.serve.clock.Clock`; with a
:class:`~repro.serve.clock.VirtualClock` the whole service runs in
simulated time for deterministic tests (see :mod:`repro.serve.sim`).
"""

from __future__ import annotations

import inspect
import itertools
import math
import threading
from collections import deque
from dataclasses import dataclass

from ..obs import CallbackList, default_registry
from ..obs.context import BatchStages, RequestTracer, TraceContext
from ..obs.registry import LATENCY_BUCKETS
from ..resilience.chaos import WorkerKilled
from ..utils.concurrency import access, guarded_by
from .clock import Clock, SystemClock

__all__ = ["ServeConfig", "ServeError", "ServiceClosed",
           "ServiceOverloaded", "RequestTimeout", "RequestCancelled",
           "MatchTicket", "MatchService"]


@dataclass
class ServeConfig:
    """Micro-batching and admission-control policy.

    ``max_batch_size`` requests are coalesced per drain; a partial
    batch is flushed once the oldest pending request has waited
    ``max_wait_ms``.  ``forward_batch_size`` bounds the model batches
    *within* a drain (length-bucketed; defaults to ``max_batch_size``).
    ``max_queue`` bounds the pending queue — beyond it submissions are
    rejected with :class:`ServiceOverloaded`.  ``default_timeout_ms``
    applies to requests submitted without an explicit deadline
    (``None`` = no deadline).  ``trace_sample_rate`` is the fraction of
    requests that get a full span tree (deterministic 1-in-N head
    sampling on the request sequence number; 0 disables tracing).
    """

    max_batch_size: int = 32
    max_wait_ms: float = 5.0
    forward_batch_size: int | None = None
    max_queue: int = 256
    default_timeout_ms: float | None = None
    threshold: float = 0.5
    fallback: bool = True
    num_workers: int = 1
    trace_sample_rate: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(f"trace_sample_rate must be in [0, 1], got "
                             f"{self.trace_sample_rate}")
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got "
                             f"{self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got "
                             f"{self.max_wait_ms}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got "
                             f"{self.max_queue}")
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got "
                             f"{self.num_workers}")
        if self.forward_batch_size is None:
            self.forward_batch_size = self.max_batch_size
        if self.forward_batch_size < 1:
            raise ValueError(f"forward_batch_size must be >= 1, got "
                             f"{self.forward_batch_size}")


class ServeError(RuntimeError):
    """Base class for serving-layer failures."""


class ServiceClosed(ServeError):
    """The service is shut down (or was closed before processing)."""


class ServiceOverloaded(ServeError):
    """Admission control: the bounded queue is full.

    ``retry_after`` is a backoff hint in seconds — the estimated time
    for the batcher to drain the current backlog (queue depth over
    batch capacity, one ``max_wait_ms`` flush horizon per drain).
    """

    def __init__(self, depth: int, retry_after: float):
        super().__init__(
            f"queue full ({depth} pending); retry after "
            f"~{retry_after * 1000:.0f} ms")
        self.depth = depth
        self.retry_after = retry_after


class RequestTimeout(ServeError):
    """A request's deadline expired before it reached the model."""

    def __init__(self, request_id: int, waited: float):
        super().__init__(
            f"request {request_id} timed out after queueing "
            f"{waited * 1000:.1f} ms")
        self.request_id = request_id
        self.waited = waited


class RequestCancelled(ServeError):
    """A still-queued request was withdrawn via
    :meth:`MatchService.cancel` (e.g. a hedged duplicate whose twin
    finished first)."""

    def __init__(self, request_id: int):
        super().__init__(f"request {request_id} cancelled while queued")
        self.request_id = request_id


class MatchTicket:
    """Per-request future returned by :meth:`MatchService.submit`.

    ``result()`` blocks until the batcher completes the request and
    returns its :class:`repro.resilience.MatchOutcome` (with ``index``
    set to this ticket's ``request_id``) — or raises the typed error
    (:class:`RequestTimeout`, :class:`ServiceClosed`) the request
    failed with.  The optional ``timeout`` is *real* seconds (a safety
    valve for callers), not clock time.
    """

    def __init__(self, request_id: int, submitted_at: float):
        self.request_id = request_id
        self.submitted_at = submitted_at
        self.completed_at: float | None = None
        self.trace_id: str | None = None
        # Written under _cb_lock; read lock-free (a bool flip is a
        # valid snapshot).  The wait Event is allocated lazily by the
        # first blocking waiter: most tickets — resilient-tier
        # attempts, post-drain inspection — are consumed via callbacks
        # or after completion and never pay for a Condition.
        self._done = False
        self._event: threading.Event | None = None  # guard: _cb_lock
        self._outcome = None
        self._error: Exception | None = None
        self._cb_lock = threading.Lock()
        self._callbacks: list = []  # guard: _cb_lock

    def done(self) -> bool:
        return self._done

    def _wait(self, timeout: float | None) -> bool:
        if self._done:
            return True
        with self._cb_lock:
            if self._done:
                return True
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        return event.wait(timeout)

    def add_done_callback(self, fn) -> None:
        """Invoke ``fn(ticket)`` when the ticket completes or fails.

        Runs on the completing thread (a service worker, or
        :meth:`MatchService.cancel`'s caller); if the ticket is already
        done it runs immediately on the registering thread.  The
        resilient tier is built on this hook — retries, hedging and
        breaker accounting all react to completions without polling.
        """
        with self._cb_lock:
            if not self._done:
                access(self, "_callbacks")
                self._callbacks.append(fn)
                return
        fn(self)

    def result(self, timeout: float | None = None):
        if not self._wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still pending after "
                f"{timeout}s (real time)")
        if self._error is not None:
            raise self._error
        return self._outcome

    def exception(self, timeout: float | None = None) -> Exception | None:
        """The typed failure, if any, without raising it."""
        if not self._wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still pending after "
                f"{timeout}s (real time)")
        return self._error

    @property
    def latency(self) -> float | None:
        """Submit-to-completion clock seconds (None while pending)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def _complete(self, outcome, now: float) -> None:
        self._outcome = outcome
        self.completed_at = now
        self._settle()

    def _fail(self, error: Exception, now: float) -> None:
        self._error = error
        self.completed_at = now
        self._settle()

    def _settle(self) -> None:
        with self._cb_lock:
            self._done = True
            if self._event is not None:
                self._event.set()
            access(self, "_callbacks")
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _Request:
    """Internal queue entry: one pair plus its routing/deadline state.

    ``ctx`` / ``span`` / ``wait_span`` are None for unsampled requests;
    for sampled ones the queue entry itself carries the trace context
    across the producer -> worker thread boundary — explicit
    propagation, no thread-locals to leak between requests.
    """

    __slots__ = ("id", "entity_a", "entity_b", "enqueued_at", "deadline",
                 "ticket", "ctx", "span", "wait_span")

    def __init__(self, request_id: int, entity_a, entity_b,
                 enqueued_at: float, deadline: float | None):
        self.id = request_id
        self.entity_a = entity_a
        self.entity_b = entity_b
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.ticket = MatchTicket(request_id, enqueued_at)
        self.ctx: TraceContext | None = None
        self.span = None
        self.wait_span = None


class MatchService:
    """Thread-safe micro-batching front end over a scoring backend.

    ``backend`` is any object with the :class:`repro.serve.backends`
    ``score(pairs, keys, threshold, fallback, forward_hook, cb)``
    signature — :class:`~repro.serve.backends.MatcherBackend` for the
    transformer matcher, :class:`~repro.serve.backends
    .DeepMatcherBackend` for the baseline, or a custom scorer.

    Usage::

        with MatchService(MatcherBackend(matcher)) as service:
            ticket = service.submit(record_a, record_b)
            outcome = ticket.result()

    ``chaos`` accepts a :class:`repro.resilience.ChaosMonkey`; its
    ``maybe_fail_forward`` runs before every model forward so tests can
    inject batch failures deterministically.
    """

    def __init__(self, backend, config: ServeConfig | None = None,
                 clock: Clock | None = None, registry=None, chaos=None,
                 callbacks=None, tracer: RequestTracer | None = None):
        self._backend = backend
        self.config = config or ServeConfig()
        self.clock = clock or SystemClock()
        self._chaos = chaos
        self._cb = CallbackList.resolve(callbacks, None)
        self._cond = self.clock.condition()
        self._pending: deque[_Request] = deque()  # guard: _cond
        self._inflight = 0                        # guard: _cond
        self._sleeping = 0                        # guard: _cond
        #: Wake callbacks of workers parked in a chaos slow-forward
        #: sleep; ``close`` fires them so shutdown cuts injected
        #: latency short instead of joining a worker whose (possibly
        #: virtual) wake timer will never fire.
        self._sleepers: list = []                 # guard: _cond
        #: Flush deadlines of workers parked in the timed coalescing
        #: wait; the ``settled`` probe treats a worker as quiescent
        #: only while its deadline is still in the future.
        self._flush_parked: list[float] = []      # guard: _cond
        self._ids = itertools.count()
        self._closed = False                      # guard: _cond
        self._workers: list[threading.Thread] = []  # guard: _cond
        #: Workers whose loop has exited (chaos kill, crash, or normal
        #: close).  Written under _cond; read lock-free by the hot
        #: routing path — a monotone int flip is a valid snapshot, and
        #: it flips *before* the thread object reports dead.
        self._dead_workers = 0                    # guard: _cond
        if tracer is None:
            tracer = RequestTracer(
                clock=self.clock,
                sample_rate=self.config.trace_sample_rate)
        else:
            tracer.bind_clock(self.clock)
        self.tracer = tracer
        # Stage recording needs backend cooperation; older/custom
        # backends without a ``stages`` parameter still serve fine —
        # their traces just lack tokenize/forward children.
        self._backend_stages = "stages" in inspect.signature(
            backend.score).parameters
        registry = registry if registry is not None else default_registry()
        self._registry = registry
        self._queue_depth = registry.gauge("serve.queue.depth")
        self._requests = registry.counter("serve.requests")
        self._completed = registry.counter("serve.completed")
        self._rejected = registry.counter("serve.rejected")
        self._timeouts = registry.counter("serve.timeouts")
        self._degraded = registry.counter("serve.degraded")
        self._cancelled = registry.counter("serve.cancelled")
        self._batch_size = registry.histogram("serve.batch.size")
        self._batch_wait = registry.histogram("serve.batch.wait_seconds",
                                              buckets=LATENCY_BUCKETS)
        self._latency = registry.histogram("serve.latency_seconds",
                                           buckets=LATENCY_BUCKETS)
        # Every rejection's backoff hint goes here, so dashboards see
        # shed pressure, not just a rejection count.
        self._retry_after_hist = registry.histogram(
            "serve.retry_after_seconds", buckets=LATENCY_BUCKETS)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MatchService":
        """Spawn the worker pool (idempotent)."""
        with self._cond:
            if self._closed:
                raise ServiceClosed("cannot start a closed service")
            if self._workers:
                return self
            access(self, "_workers")
            self._workers = [
                threading.Thread(
                    target=self._worker_loop, daemon=True,
                    name=f"repro-serve-worker-{worker_id}")
                for worker_id in range(self.config.num_workers)]
            workers = list(self._workers)
        # Threads start outside the critical section: a worker's first
        # act is taking the same condition.
        for thread in workers:
            thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Shut down: stop admissions, flush (or fail) the queue, join.

        With ``drain=True`` (default) workers process everything still
        pending before exiting; with ``drain=False`` pending requests
        fail immediately with :class:`ServiceClosed`.
        """
        with self._cond:
            access(self, "_closed")
            self._closed = True
            workers = list(self._workers)
            abandoned: list[_Request] = []
            if not drain or not workers:
                access(self, "_pending")
                abandoned = list(self._pending)
                self._pending.clear()
                self._queue_depth.set(0)
            self._cond.notify_all()
            sleepers = list(self._sleepers)
        # Cut injected slow-forward latency short: a parked worker's
        # wake timer may be virtual (never firing again once drivers
        # stop advancing), and the joins below must not wait on it.
        for wake in sleepers:
            wake()
        now = self.clock.now()
        for request in abandoned:
            request.ticket._fail(
                ServiceClosed(f"service closed before request "
                              f"{request.id} was processed"), now)
            if request.span is not None:
                self.tracer.end(request.wait_span, end=now)
                self.tracer.finish(request.span, end=now,
                                   outcome="closed")
        # Joins happen unlocked (a worker draining the queue needs the
        # condition), but the list write goes back under it.
        for thread in workers:
            thread.join()
        with self._cond:
            access(self, "_workers")
            self._workers = []
            access(self, "_pending")
            leftover = list(self._pending)
            self._pending.clear()
            if leftover:
                self._queue_depth.set(0)
        # A dead worker pool (chaos kills) can leave requests queued
        # even on a drain close; fail them typed rather than letting
        # their tickets hang forever.
        now = self.clock.now()
        for request in leftover:
            request.ticket._fail(
                ServiceClosed(f"service closed with request "
                              f"{request.id} still queued (no live "
                              f"workers to drain it)"), now)
            if request.span is not None:
                self.tracer.end(request.wait_span, end=now)
                self.tracer.finish(request.span, end=now,
                                   outcome="closed")

    def __enter__(self) -> "MatchService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting to be batched.

        A lock-free snapshot (``len`` of the deque is atomic), like
        ``queue.Queue.qsize``: approximate while workers are actively
        draining, exact whenever the settled protocol holds.  The
        resilient router reads this once per replica per request, so
        it must not contend with the worker condition.
        """
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Batches currently being scored by workers."""
        with self._cond:
            access(self, "_inflight", write=False)
            return self._inflight

    def workers_alive(self) -> int:
        """Worker threads still running (chaos can kill them)."""
        with self._cond:
            access(self, "_workers", write=False)
            workers = list(self._workers)
        return sum(1 for thread in workers if thread.is_alive())

    @property
    def healthy(self) -> bool:
        """Started, accepting, and with a full worker pool.

        The :class:`~repro.serve.ReplicaSet` health probe keys off
        this: a dead worker (chaos ``maybe_kill_worker``, or a real
        crash) leaves queued requests stranded, so a partially dead
        pool already counts as unhealthy.
        """
        # Lock-free flag reads: the router consults this per replica
        # per request, and each flag is written once in a monotone
        # direction (closed False→True, dead-worker count up), so a
        # torn snapshot can only report unhealthy early — never
        # healthy late.
        return (bool(self._workers) and not self._closed
                and self._dead_workers == 0)

    @guarded_by("_cond")
    def _workers_alive_locked(self) -> bool:
        access(self, "_workers", write=False)
        return any(thread.is_alive() for thread in self._workers)

    @property
    def settled(self) -> bool:
        """True when workers have fully reacted to everything visible.

        The quiescence probe behind deterministic simulation
        (:func:`repro.serve.sim.run_simulation`): virtual time may only
        advance when nothing is mid-scoring and the queue is either
        empty or parked behind an armed flush timer (with room to
        spare — a full batch is about to be drained without any timer,
        so it counts as unsettled until the drain happens).  The probe
        uses only service-local bookkeeping (``_flush_waiters``,
        ``_sleeping``) rather than the clock's global timer count, so
        unrelated timers on a shared clock — the resilient tier's
        health probes, hedges and backoffs — cannot make a mid-reaction
        service look quiescent.  A dead worker pool counts as settled:
        nothing will ever react, and only a supervisor respawn (itself
        timer-driven) changes that.
        """
        with self._cond:
            access(self, "_inflight", write=False)
            access(self, "_pending", write=False)
            if self._inflight:
                # A worker mid-scoring is unsettled — unless every
                # inflight worker is parked on a chaos slow-forward
                # timer, in which case only advancing time frees it.
                return self._inflight <= self._sleeping
            if not self._pending:
                return True
            if len(self._pending) >= self.config.max_batch_size \
                    or not self._flush_parked:
                # A live worker is about to drain (full batch needs no
                # timer) or has not parked on its flush timer yet.
                return not self._workers_alive_locked()
            # Parked workers whose flush deadline already passed are
            # runnable (mid-wakeup), not quiescent.
            now = self.clock.now()
            return all(deadline > now for deadline in self._flush_parked)

    @guarded_by("_cond")
    def _retry_after_locked(self) -> float:
        """Backoff hint for a rejection: drain time for the backlog.

        Non-negative and monotone non-decreasing in the queue depth
        (``ceil(depth / batch) * flush-horizon``, floored at one
        horizon) — :class:`repro.serve.RetryPolicy` consumes it as a
        lower bound on its backoff delay.
        """
        drains = math.ceil(len(self._pending)
                           / self.config.max_batch_size)
        hint = max(drains, 1) * self.config.max_wait_ms / 1000.0
        assert hint >= 0.0, f"retry_after hint went negative: {hint}"
        return hint

    @guarded_by("_cond")
    def _reject_locked(self, count: int) -> ServiceOverloaded:
        self._rejected.inc(count)
        hint = self._retry_after_locked()
        self._retry_after_hist.observe(hint)
        return ServiceOverloaded(len(self._pending), hint)

    @guarded_by("_cond")
    def _admit_locked(self, entity_a, entity_b,
                      timeout_ms: float | None) -> _Request:
        now = self.clock.now()
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        deadline = None if timeout_ms is None \
            else now + timeout_ms / 1000.0
        request = _Request(next(self._ids), entity_a, entity_b, now,
                           deadline)
        access(self, "_pending")
        self._pending.append(request)
        self._requests.inc()
        if self.tracer.sampled(request.id):
            root = self.tracer.begin_request(start=now,
                                             request_id=request.id)
            request.span = root
            request.ctx = TraceContext(root.trace_id, root.span_id,
                                       {"request_id": request.id})
            request.ticket.trace_id = root.trace_id
            self.tracer.attach(root, "enqueue", start=now, end=now,
                               queue_depth=len(self._pending))
            request.wait_span = self.tracer.child(root, "queue_wait",
                                                  start=now)
        return request

    def submit(self, entity_a, entity_b,
               timeout_ms: float | None = None) -> MatchTicket:
        """Enqueue one pair; returns its :class:`MatchTicket`.

        Raises :class:`ServiceOverloaded` when the queue is full and
        :class:`ServiceClosed` after :meth:`close`.
        """
        with self._cond:
            access(self, "_closed", write=False)
            if self._closed:
                raise ServiceClosed("service is closed to new requests")
            if len(self._pending) >= self.config.max_queue:
                raise self._reject_locked(1)
            request = self._admit_locked(entity_a, entity_b, timeout_ms)
            self._queue_depth.set(len(self._pending))
            self._cond.notify_all()
            return request.ticket

    def submit_many(self, pairs,
                    timeout_ms: float | None = None) -> list[MatchTicket]:
        """Atomically enqueue a batch of ``(entity_a, entity_b)`` pairs.

        All-or-nothing admission: if the batch does not fit in the
        remaining queue space, the whole batch is rejected with
        :class:`ServiceOverloaded` (partial admission would complete a
        random prefix, which no caller can reason about).
        """
        pairs = list(pairs)
        with self._cond:
            access(self, "_closed", write=False)
            if self._closed:
                raise ServiceClosed("service is closed to new requests")
            if len(self._pending) + len(pairs) > self.config.max_queue:
                raise self._reject_locked(len(pairs))
            tickets = [
                self._admit_locked(entity_a, entity_b, timeout_ms).ticket
                for entity_a, entity_b in pairs]
            self._queue_depth.set(len(self._pending))
            self._cond.notify_all()
            return tickets

    def cancel(self, ticket: MatchTicket) -> bool:
        """Withdraw a still-queued request; True if it was removed.

        The request fails with :class:`RequestCancelled` (its done
        callbacks fire).  Returns False when the ticket is already
        completed or claimed by a worker — an inflight score cannot be
        recalled, only its result ignored.  The resilient tier uses
        this to cancel the losing leg of a hedged request.
        """
        found: _Request | None = None
        with self._cond:
            access(self, "_pending")
            for index, request in enumerate(self._pending):
                if request.ticket is ticket:
                    del self._pending[index]
                    self._queue_depth.set(len(self._pending))
                    found = request
                    break
        if found is None:
            return False
        self._cancelled.inc()
        now = self.clock.now()
        if found.span is not None:
            self.tracer.end(found.wait_span, end=now)
            self.tracer.finish(found.span, end=now, outcome="cancelled")
        found.ticket._fail(RequestCancelled(found.id), now)
        return True

    # -- the micro-batcher ---------------------------------------------------

    def _worker_loop(self) -> None:
        try:
            self._worker_run()
        finally:
            # Any exit — normal close, chaos kill, or a crash — marks
            # the pool degraded before the thread object reports dead,
            # so ``healthy`` needs no per-thread liveness poll.
            with self._cond:
                access(self, "_dead_workers")
                self._dead_workers += 1

    def _worker_run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            try:
                self._process(batch)
            finally:
                with self._cond:
                    access(self, "_inflight")
                    self._inflight -= 1
            if self._chaos is not None:
                try:
                    self._chaos.maybe_kill_worker()
                except WorkerKilled:
                    # Abrupt thread death, after the batch's tickets
                    # completed: the queue keeps accepting but nothing
                    # drains it until a supervisor respawns the pool.
                    return

    def _next_batch(self) -> list[_Request] | None:
        """Block until a batch is due; None when closed and drained.

        Coalescing policy: once the queue is non-empty, wait until
        either ``max_batch_size`` requests are pending or the oldest
        has waited ``max_wait_ms``, then drain up to
        ``max_batch_size`` in FIFO order.
        """
        config = self.config
        max_wait = config.max_wait_ms / 1000.0
        full = lambda: (len(self._pending) >= config.max_batch_size
                        or self._closed)
        with self._cond:
            while True:
                self._cond.wait_for(
                    lambda: self._pending or self._closed)
                if self._pending:
                    flush_at = self._pending[0].enqueued_at + max_wait
                    while not full():
                        remaining = flush_at - self.clock.now()
                        if remaining <= 0:
                            break
                        # The parked-deadline list is what ``settled``
                        # keys on: the entry is only visible while this
                        # worker is actually inside the timed wait (the
                        # lock is held everywhere else in this loop).
                        access(self, "_flush_parked")
                        self._flush_parked.append(flush_at)
                        try:
                            self._cond.wait_for(full, timeout=remaining)
                        finally:
                            access(self, "_flush_parked")
                            self._flush_parked.remove(flush_at)
                    if not self._pending:
                        continue  # another worker drained it
                    count = min(len(self._pending),
                                config.max_batch_size)
                    access(self, "_pending")
                    batch = [self._pending.popleft()
                             for _ in range(count)]
                    self._queue_depth.set(len(self._pending))
                    access(self, "_inflight")
                    self._inflight += 1
                    return batch
                if self._closed:
                    return None

    def _forward_hook(self, keys) -> None:
        if self._chaos is not None:
            self._chaos.maybe_fail_forward(keys)

    def _chaos_sleep(self, seconds: float) -> None:
        """Park this worker for ``seconds`` of injected latency.

        Uses a clock timer rather than ``clock.sleep`` so the
        ``_sleeping`` bookkeeping is decremented *by the timer callback*
        (the driver thread, under a virtual clock) — the instant the
        delay elapses the service reads as unsettled again, and the sim
        driver waits for the woken worker to finish scoring before
        advancing further.  That keeps slow-forward chaos inside the
        deterministic settle protocol.
        """
        woken = threading.Event()
        state = {"woken": False}

        def wake() -> None:
            # Idempotent: both the clock timer and ``close`` may call
            # this; only the first firing flips the bookkeeping.
            with self._cond:
                if state["woken"]:
                    return
                state["woken"] = True
                access(self, "_sleeping")
                self._sleeping -= 1
                access(self, "_sleepers")
                self._sleepers.remove(wake)
            woken.set()

        with self._cond:
            access(self, "_sleeping")
            self._sleeping += 1
            access(self, "_sleepers")
            self._sleepers.append(wake)
            # Registered under the lock so the sleep bookkeeping and
            # the wake timer become visible to ``settled`` atomically —
            # a driver can never observe the sleeper without the timer
            # that frees it.
            handle = self.clock.call_later(seconds, wake)
        woken.wait()
        self.clock.cancel(handle)  # no-op unless close() won the race

    def _process(self, batch: list[_Request]) -> None:
        now = self.clock.now()
        self._batch_size.observe(len(batch))
        self._batch_wait.observe(
            now - batch[0].enqueued_at,
            exemplar=batch[0].ticket.trace_id)
        for request in batch:
            if request.span is not None:
                self.tracer.end(request.wait_span, end=now,
                                waited=now - request.enqueued_at)
        live: list[_Request] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                self._timeouts.inc()
                request.ticket._fail(
                    RequestTimeout(request.id,
                                   waited=now - request.enqueued_at),
                    now)
                if request.span is not None:
                    self.tracer.finish(
                        request.span, end=now, outcome="timeout",
                        reason=f"deadline expired after "
                               f"{(now - request.enqueued_at) * 1000:.1f}"
                               f" ms queued")
            else:
                live.append(request)
        if not live:
            return
        if self._chaos is not None:
            delay = self._chaos.maybe_delay_forward(
                [request.id for request in live])
            if delay > 0.0:
                self._chaos_sleep(delay)
        stages = (BatchStages(self.clock.now)
                  if self._backend_stages
                  and any(r.span is not None for r in live) else None)
        extra = {"stages": stages} if stages is not None else {}
        assembled = self.clock.now()
        try:
            outcomes = self._backend.score(
                [(r.entity_a, r.entity_b) for r in live],
                keys=[r.id for r in live],
                threshold=self.config.threshold,
                fallback=self.config.fallback,
                forward_hook=self._forward_hook,
                cb=self._cb, **extra)
        except Exception as exc:  # noqa: BLE001 — backends isolate; this
            # is the last-resort boundary keeping tickets from hanging.
            done = self.clock.now()
            for request in live:
                request.ticket._fail(
                    ServeError(f"backend failed wholesale: "
                               f"{type(exc).__name__}: {exc}"), done)
                if request.span is not None:
                    self.tracer.finish(
                        request.span, end=done, outcome="error",
                        reason=f"{type(exc).__name__}: {exc}")
            return
        done = self.clock.now()
        for request, outcome in zip(live, outcomes):
            self._completed.inc()
            if outcome.degraded:
                self._degraded.inc()
            self._latency.observe(done - request.enqueued_at,
                                  exemplar=request.ticket.trace_id)
            request.ticket._complete(outcome, done)
            if request.span is not None:
                self._close_trace(request, outcome, now, assembled, done,
                                  len(batch), stages)

    def _close_trace(self, request: _Request, outcome, drained: float,
                     assembled: float, done: float, batch_size: int,
                     stages: BatchStages | None) -> None:
        """Graft the shared batch stages into one request's span tree.

        The batch work (assembly, tokenize, forward) happened once for
        the whole drain, but causally belongs to every member request —
        each gets its own copies (fresh span ids, shared timestamps).
        """
        root = request.span
        self.tracer.attach(root, "batch_assembly", start=drained,
                           end=assembled, batch_size=batch_size)
        if stages is not None:
            for record in stages.records:
                self.tracer.attach(root, record.name, start=record.start,
                                   end=record.end, **record.attrs)
        self.tracer.attach(root, "postprocess", start=done, end=done)
        attrs = {"outcome": "degraded" if outcome.degraded else "ok",
                 "probability": outcome.probability}
        if outcome.degraded and outcome.error:
            attrs["reason"] = outcome.error
        self.tracer.finish(root, end=done, **attrs)
