"""The resilience benchmark behind ``repro bench resilient``.

Two questions, one scorecard (``BENCH_resilient.json``):

* **What does the tier cost when nothing fails?**  A burst workload is
  drained twice — once through a bare :class:`MatchService`, once
  through a single-replica :class:`ResilientClient` with hedging off —
  and the throughput ratio is the tier's overhead (budget: ≤ 2%).
* **What does the tier buy when things fail?**  The same seeded chaos
  (worker kills, slow forwards, poisoned forwards) is injected into a
  naive single service and into a three-replica resilient tier, both
  at 1× the measured serial offered load.  Availability is the
  fraction of offered requests that complete non-error (matched or
  degraded).  The naive client must measurably lose requests
  (< 99%); the resilient tier must sustain ≥ 99.9%.

Imports from ``repro.matching`` stay inside the functions for the same
reason as :mod:`repro.perf.bench`: the matching layer imports serving's
sibling packages, and module-level imports here would be circular.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..resilience.chaos import ChaosConfig, ChaosMonkey
from .backends import MatcherBackend
from .breaker import BreakerConfig
from .clock import SystemClock
from .resilient import (HedgeConfig, ReplicaSet, ResilientClient,
                        ResilientConfig, run_resilient_simulation)
from .retry import RetryConfig
from .service import MatchService, ServeConfig
from .sim import SimReport, generate_workload, run_simulation

__all__ = ["run_resilient_benchmark", "write_resilient_report",
           "validate_resilient_report", "load_resilient_report",
           "OVERHEAD_BUDGET", "AVAILABILITY_FLOOR", "NAIVE_CEILING"]

#: Chaos-off tier overhead budget: resilient throughput on the burst
#: drain must stay within this fraction of the bare service's.
OVERHEAD_BUDGET = 0.02
#: Under seeded chaos at 1× offered load the resilient tier must keep
#: this fraction of requests completing non-error (matched or degraded).
AVAILABILITY_FLOOR = 0.999
#: ...while the naive client must land measurably below this, or the
#: injected chaos was too soft to prove anything.
NAIVE_CEILING = 0.99

_REPORT_KEYS = ("benchmark", "smoke", "config", "baseline", "overhead",
                "chaos", "acceptance")
_STATS_KEYS = ("offered", "completed", "rejected", "timeouts",
               "degraded", "errors", "duration_seconds", "throughput",
               "availability", "p50_latency_ms", "p95_latency_ms")


def _sim_stats(report: SimReport) -> dict:
    failed = report.rejected + report.timeouts + report.errors
    return {
        "offered": report.offered,
        "completed": report.completed,
        "rejected": report.rejected,
        "timeouts": report.timeouts,
        "degraded": report.degraded,
        "errors": report.errors,
        "failed": failed,
        "duration_seconds": report.duration,
        "throughput": report.throughput,
        "availability": report.completed / max(report.offered, 1),
        "p50_latency_ms": report.latency_quantile(0.50) * 1000.0,
        "p95_latency_ms": report.latency_quantile(0.95) * 1000.0,
    }


def _serve_config(batch_size: int, max_wait_ms: float,
                  max_queue: int) -> ServeConfig:
    return ServeConfig(max_batch_size=batch_size, max_wait_ms=max_wait_ms,
                       max_queue=max_queue)


def _overhead_phase(matcher, pairs, rate: float, seed: int,
                    batch_size: int, max_wait_ms: float,
                    cycles: int = 5) -> dict:
    """Burst-drain the same workload bare and through the tier.

    The burst arrives far above capacity, so the run time is the drain
    time and throughput measures capacity — the regime where a
    per-request tier tax would actually show up (at 1× offered load the
    service idles and overhead hides in the gaps).

    A single before/after pair mostly measures scheduler and
    CPU-frequency noise, not the tier tax, so the two sides run
    interleaved for ``cycles`` back-to-back (naive, resilient) pairs
    and the gate takes the *best paired cycle*: a structural
    per-request tax slows the resilient side of every cycle, while
    noise is one-sided and lands on whichever side it lands — the
    cycle it spared on both sides shows the true floor (same
    reasoning as ``bench_lockset_overhead``; pairing matters because
    an unpaired best-vs-best can compare a lucky naive run against an
    unlucky resilient one and report noise as tax).
    """
    from ..obs import MetricsRegistry
    burst_rate = max(rate, 1.0) * 50.0
    # Three passes over the pair set per drain: each drain saturates
    # for a few hundred ms, so per-cycle scheduler noise amortizes to
    # well under the budget being gated.
    num_requests = 3 * len(pairs)
    max_queue = max(4 * batch_size, 2 * num_requests)
    workload = generate_workload(pairs, num_requests=num_requests,
                                 rate=burst_rate, seed=seed,
                                 pattern="poisson")

    def _drain_naive() -> SimReport:
        service = MatchService(
            MatcherBackend(matcher, batch_size=batch_size),
            _serve_config(batch_size, max_wait_ms, max_queue),
            clock=SystemClock(), registry=MetricsRegistry())
        return run_simulation(service, workload)

    def _drain_resilient() -> SimReport:
        registry = MetricsRegistry()
        clock = SystemClock()
        replicas = ReplicaSet(
            lambda index: MatchService(
                MatcherBackend(matcher, batch_size=batch_size),
                _serve_config(batch_size, max_wait_ms, max_queue),
                clock=clock, registry=registry),
            num_replicas=1, clock=clock, registry=registry)
        client = ResilientClient(
            replicas,
            ResilientConfig(hedge=HedgeConfig(enabled=False),
                            attempt_timeout_ms=120_000.0,
                            shed_queue_factor=1.0),
            registry=registry)
        return run_resilient_simulation(client, workload)

    _drain_naive()       # warm thread pools, allocator, token cache
    _drain_resilient()
    naive_runs = []
    resilient_runs = []
    for _ in range(max(cycles, 1)):
        naive_runs.append(_drain_naive())
        resilient_runs.append(_drain_resilient())

    per_cycle = sorted(
        1.0 - res.throughput / max(nav.throughput, 1e-9)
        for nav, res in zip(naive_runs, resilient_runs))
    best = min(
        range(len(naive_runs)),
        key=lambda i: 1.0 - resilient_runs[i].throughput
        / max(naive_runs[i].throughput, 1e-9))
    naive = naive_runs[best]
    resilient = resilient_runs[best]
    return {
        "naive": _sim_stats(naive),
        "resilient": _sim_stats(resilient),
        "overhead_fraction": per_cycle[0],
        "cycles": len(naive_runs),
        "per_cycle_overhead": per_cycle,
        "median_overhead_fraction": per_cycle[len(per_cycle) // 2],
        "budget": OVERHEAD_BUDGET,
    }


def _chaos_monkey(seed: int, num_requests: int, batch_size: int,
                  kill_fraction: float, delay_seconds: float) -> ChaosMonkey:
    """The per-service fault schedule used by both clients.

    Keyed off the service-local request sequence, so the same faults
    hit the naive service and the resilient tier's replica 0: a worker
    kill once ``kill_fraction`` of the load has been batched, poisoned
    forwards for three spread-out request keys (degradation, not
    error), and a seeded trickle of slow forwards.
    """
    kill_batch = max(2, int(kill_fraction * num_requests / batch_size))
    poison = frozenset({num_requests // 10, num_requests // 2,
                        (9 * num_requests) // 10})
    return ChaosMonkey(ChaosConfig(
        poison_forward_rows=poison,
        delay_forward_rows=frozenset(),
        delay_forward_seconds=delay_seconds,
        delay_forward_rate=0.05,
        kill_worker_batches=frozenset({kill_batch}),
        seed=seed))


def _chaos_phase(matcher, pairs, rate: float, seed: int,
                 batch_size: int, max_wait_ms: float,
                 num_requests: int) -> dict:
    """Seeded chaos at 1× offered load: naive vs resilient."""
    from ..obs import MetricsRegistry
    workload = generate_workload(pairs, num_requests=num_requests,
                                 rate=rate, seed=seed,
                                 pattern="poisson")
    max_queue = max(4 * batch_size, num_requests)
    delay_seconds = 0.25

    naive_service = MatchService(
        MatcherBackend(matcher, batch_size=batch_size),
        _serve_config(batch_size, max_wait_ms, max_queue),
        clock=SystemClock(), registry=MetricsRegistry(),
        chaos=_chaos_monkey(seed, num_requests, batch_size,
                            kill_fraction=0.4,
                            delay_seconds=delay_seconds))
    naive = run_simulation(naive_service, workload)

    registry = MetricsRegistry()
    clock = SystemClock()
    # One fault schedule per replica *slot* — shared across respawns,
    # so a respawned replica is not instantly re-killed.  Replica 0
    # takes the early kill; the others only see slow/poisoned forwards.
    monkeys = [
        _chaos_monkey(seed + index, num_requests, batch_size,
                      kill_fraction=0.1 if index == 0 else 10.0,
                      delay_seconds=delay_seconds)
        for index in range(3)]
    replicas = ReplicaSet(
        lambda index: MatchService(
            MatcherBackend(matcher, batch_size=batch_size),
            _serve_config(batch_size, max_wait_ms, max_queue),
            clock=clock, registry=registry, chaos=monkeys[index]),
        num_replicas=3, clock=clock, registry=registry,
        breaker_config=BreakerConfig(window_seconds=10.0, min_volume=4,
                                     cooldown_seconds=0.5),
        probe_interval_ms=50.0)
    client = ResilientClient(
        replicas,
        ResilientConfig(retry=RetryConfig(max_attempts=4,
                                          base_delay_ms=5.0,
                                          max_delay_ms=200.0,
                                          budget_ratio=0.5,
                                          seed=seed),
                        hedge=HedgeConfig(enabled=True, min_samples=20),
                        attempt_timeout_ms=2000.0,
                        shed_queue_factor=1.0),
        registry=registry)
    resilient = run_resilient_simulation(client, workload)
    respawns = sum(replica.respawns for replica in replicas.replicas)

    result = {
        "naive": _sim_stats(naive),
        "resilient": _sim_stats(resilient),
        "respawns": respawns,
        "retries": client.policy.budget.retries,
        "availability_floor": AVAILABILITY_FLOOR,
        "naive_ceiling": NAIVE_CEILING,
    }
    return result


def run_resilient_benchmark(arch: str = "bert", num_pairs: int = 200,
                            seed: int = 0, zoo_dir=None,
                            batch_size: int = 32,
                            max_wait_ms: float = 10.0,
                            num_requests: int = 1000,
                            smoke: bool = False) -> dict:
    """Run the resilience benchmark and return the report dict."""
    from ..perf.bench import _build_workload, _fit_matcher
    if smoke:
        num_pairs = min(num_pairs, 24)
        num_requests = min(num_requests, 32)
    splits, pairs = _build_workload(num_pairs, seed)
    matcher = _fit_matcher(arch, splits, seed, zoo_dir)
    matcher.match_many(pairs[:8], fast=True)  # warm the token cache/JIT
    import time
    start = time.perf_counter()
    outcomes = matcher.match_many(pairs, fast=True)
    seconds = time.perf_counter() - start
    baseline = {
        "pairs": len(pairs),
        "seconds": seconds,
        "pairs_per_sec": len(pairs) / max(seconds, 1e-9),
        "degraded": sum(1 for outcome in outcomes if outcome.degraded),
    }
    rate = baseline["pairs_per_sec"]
    overhead = _overhead_phase(matcher, pairs, rate, seed, batch_size,
                               max_wait_ms, cycles=2 if smoke else 5)
    chaos = _chaos_phase(matcher, pairs, rate, seed, batch_size,
                         max_wait_ms, num_requests)
    resilient_availability = chaos["resilient"]["availability"]
    naive_availability = chaos["naive"]["availability"]
    passed = (overhead["overhead_fraction"] <= OVERHEAD_BUDGET
              and resilient_availability >= AVAILABILITY_FLOOR
              and naive_availability < NAIVE_CEILING)
    return {
        "benchmark": "resilient",
        "smoke": bool(smoke),
        "config": {"arch": arch, "pairs": num_pairs, "seed": seed,
                   "batch_size": batch_size, "max_wait_ms": max_wait_ms,
                   "num_requests": num_requests},
        "baseline": baseline,
        "overhead": overhead,
        "chaos": chaos,
        "acceptance": {
            "overhead_fraction": overhead["overhead_fraction"],
            "overhead_budget": OVERHEAD_BUDGET,
            "resilient_availability": resilient_availability,
            "availability_floor": AVAILABILITY_FLOOR,
            "naive_availability": naive_availability,
            "naive_ceiling": NAIVE_CEILING,
            # Smoke runs are too small for stable timing or for the
            # 99.9% resolution (32 requests); floors are only enforced
            # on full runs.
            "enforced": not smoke,
            "passed": bool(smoke or passed),
        },
    }


def validate_resilient_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in _REPORT_KEYS:
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    if report.get("benchmark") != "resilient":
        problems.append("benchmark field must be 'resilient'")
    for phase in ("overhead", "chaos"):
        entry = report.get(phase, {})
        for side in ("naive", "resilient"):
            stats = entry.get(side)
            if stats is None:
                problems.append(f"{phase} missing {side!r} stats")
                continue
            for key in _STATS_KEYS:
                if key not in stats:
                    problems.append(f"{phase}[{side!r}] missing {key!r}")
    acceptance = report.get("acceptance", {})
    for key in ("overhead_fraction", "overhead_budget",
                "resilient_availability", "availability_floor",
                "naive_availability", "naive_ceiling", "enforced",
                "passed"):
        if key not in acceptance:
            problems.append(f"acceptance missing {key!r}")
    return problems


def write_resilient_report(report: dict, path: str | Path) -> Path:
    """Atomically write the report JSON to ``path``."""
    from ..utils import atomic_write_text
    path = Path(path)
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True)
                      + "\n")
    return path


def load_resilient_report(path: str | Path) -> dict:
    """Read a report written by :func:`write_resilient_report`."""
    return json.loads(Path(path).read_text())
