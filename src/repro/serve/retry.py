"""Retry policy: seeded exponential backoff, budgets, deadlines.

The resilient tier never retries blindly.  Three mechanisms bound the
amplification a retry storm could otherwise inflict on an overloaded
service:

* **Backoff schedule** — delay before attempt ``k+1`` grows
  geometrically (``base * multiplier**(k-1)``, capped at
  ``max_delay_ms``) with *seeded* jitter: the jitter draw is keyed by
  ``(seed, request_id, attempt)`` through
  :func:`repro.utils.child_rng`, so two runs of the same workload
  produce bit-identical schedules regardless of thread timing, yet
  different requests decorrelate (no thundering herd).
* **Retry budget** — a deterministic token account: retries are allowed
  while ``retries <= max(min_retries, budget_ratio * requests)``.
  When the budget is dry the caller fails fast instead of doubling the
  offered load on a service that is already drowning.
* **Deadline propagation** — a retry whose backoff would land past the
  logical request deadline is pointless; :meth:`RetryPolicy.backoff`
  reports the delay and the caller checks it against the remaining
  deadline before scheduling.

``ServiceOverloaded.retry_after`` (the service's own drain estimate) is
honored as a *lower bound* on the computed backoff — the service knows
its backlog better than any client-side schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import child_rng
from ..utils.concurrency import make_lock
from .service import RequestCancelled, ServeError

__all__ = ["RetryConfig", "RetryBudget", "RetryPolicy"]


@dataclass
class RetryConfig:
    """Backoff schedule and budget knobs for :class:`RetryPolicy`.

    ``max_attempts`` counts the first try: 3 means at most two retries.
    ``jitter`` is the relative half-width of the jitter envelope — a
    delay of ``d`` becomes ``d * (1 + jitter * u)`` with ``u`` uniform
    in ``[-1, 1)``.  ``budget_ratio`` / ``min_retries`` parameterise
    the :class:`RetryBudget` (a ratio of 0.2 means at most one retry
    per five logical requests, once past the ``min_retries`` floor).
    """

    max_attempts: int = 3
    base_delay_ms: float = 10.0
    multiplier: float = 2.0
    max_delay_ms: float = 1000.0
    jitter: float = 0.5
    budget_ratio: float = 0.2
    min_retries: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got "
                             f"{self.max_attempts}")
        if self.base_delay_ms < 0:
            raise ValueError(f"base_delay_ms must be >= 0, got "
                             f"{self.base_delay_ms}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got "
                             f"{self.multiplier}")
        if self.max_delay_ms < self.base_delay_ms:
            raise ValueError(f"max_delay_ms ({self.max_delay_ms}) must "
                             f"be >= base_delay_ms "
                             f"({self.base_delay_ms})")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got "
                             f"{self.jitter}")
        if self.budget_ratio < 0:
            raise ValueError(f"budget_ratio must be >= 0, got "
                             f"{self.budget_ratio}")
        if self.min_retries < 0:
            raise ValueError(f"min_retries must be >= 0, got "
                             f"{self.min_retries}")


class RetryBudget:
    """Deterministic retry accounting shared across a client's requests.

    Pure counter arithmetic — no clocks, no decay — so the same
    admission sequence always produces the same allow/deny decisions,
    which is what makes chaos-recovery tests bit-reproducible.
    """

    def __init__(self, ratio: float, min_retries: int):
        self.ratio = float(ratio)
        self.min_retries = int(min_retries)
        self._lock = make_lock("RetryBudget._lock")
        self._requests = 0  # guard: _lock
        self._retries = 0   # guard: _lock

    @property
    def requests(self) -> int:
        with self._lock:
            return self._requests

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    @property
    def allowance(self) -> int:
        """Retries permitted so far, given the requests seen."""
        with self._lock:
            return self._allowance_locked()

    def _allowance_locked(self) -> int:
        return max(self.min_retries, int(self.ratio * self._requests))

    def note_request(self) -> None:
        """Record one logical (first-attempt) request."""
        with self._lock:
            self._requests += 1

    def try_spend(self) -> bool:
        """Consume one retry token; False when the budget is dry."""
        with self._lock:
            if self._retries + 1 > self._allowance_locked():
                return False
            self._retries += 1
            return True


class RetryPolicy:
    """Computes deterministic backoff schedules and owns the budget.

    Attempts are numbered from 1 (the first try);
    ``backoff(request_id, attempt)`` is the delay to wait *after*
    attempt ``attempt`` fails, before launching attempt
    ``attempt + 1``.
    """

    def __init__(self, config: RetryConfig | None = None, **kwargs):
        self.config = config or RetryConfig(**kwargs)
        self.budget = RetryBudget(self.config.budget_ratio,
                                  self.config.min_retries)

    def base_delay(self, attempt: int) -> float:
        """Unjittered backoff after ``attempt``, in seconds.

        Monotone non-decreasing in ``attempt`` and capped at
        ``max_delay_ms`` — the properties the hypothesis suite pins.
        """
        if attempt < 1:
            raise ValueError(f"attempt numbering starts at 1, got "
                             f"{attempt}")
        config = self.config
        delay_ms = min(config.base_delay_ms
                       * config.multiplier ** (attempt - 1),
                       config.max_delay_ms)
        return delay_ms / 1000.0

    def backoff(self, request_id: int, attempt: int,
                retry_after: float | None = None) -> float:
        """Jittered backoff after ``attempt`` of ``request_id`` fails.

        Deterministic: the jitter draw is keyed by
        ``(seed, request_id, attempt)``, so identical seeds produce
        identical schedules.  A server-supplied ``retry_after`` hint
        (from :class:`~repro.serve.ServiceOverloaded`) acts as a lower
        bound — never retry sooner than the service said its backlog
        needs.
        """
        base = self.base_delay(attempt)
        jitter = self.config.jitter
        if jitter > 0.0:
            draw = child_rng(self.config.seed, "retry-backoff",
                             int(request_id), int(attempt)).random()
            base *= 1.0 + jitter * (2.0 * draw - 1.0)
        if retry_after is not None:
            base = max(base, float(retry_after))
        return max(base, 0.0)

    def schedule(self, request_id: int) -> list[float]:
        """The full backoff schedule for one request (for tests/docs):
        delays after attempts ``1 .. max_attempts - 1``."""
        return [self.backoff(request_id, attempt)
                for attempt in range(1, self.config.max_attempts)]

    @staticmethod
    def retryable(error: Exception | None) -> bool:
        """Typed serving failures are retryable; cancellations are not
        (a cancelled attempt was withdrawn on purpose), and foreign
        exceptions signal bugs, not transient faults."""
        return isinstance(error, ServeError) \
            and not isinstance(error, RequestCancelled)
