"""Scoring backends pluggable into :class:`repro.serve.MatchService`.

A backend is anything with::

    score(pairs, keys, threshold, fallback, forward_hook=None, cb=None,
          stages=None) -> list[MatchOutcome]   # in order, index = key

``stages`` (a :class:`repro.obs.context.BatchStages`, or None when the
drained chunk contains no sampled request) lets the backend report
clock-timed tokenize/forward stage records that the service grafts into
each member request's span tree; the parameter is optional in the
protocol — the service detects support by signature and simply omits
stage records for backends that predate it.

The service drains a chunk of queued requests and hands the whole chunk
to the backend; the backend owns batching within the chunk, per-pair
failure isolation, and degradation semantics.  Three implementations:

* :class:`MatcherBackend` — the real thing: a fitted
  :class:`repro.matching.EntityMatcher` scored through its shared
  :class:`~repro.matching.MatchEngine`, so service probabilities are
  bit-identical to ``match_many``;
* :class:`DeepMatcherBackend` — the DeepMatcher baseline behind the
  same interface, proving the service is architecture-agnostic;
* :class:`CallableBackend` — wraps a plain ``f(entity_a, entity_b) ->
  probability`` function; used by the queueing/timeout/backpressure
  tests, which need deterministic scores without model weights.
"""

from __future__ import annotations

from contextlib import ExitStack

from ..data import EMDataset, EntityPair, Record
from ..resilience import MatchOutcome, fallback_probability

__all__ = ["MatcherBackend", "CascadeBackend", "DeepMatcherBackend",
           "CallableBackend"]


def _as_record(entity) -> Record:
    return entity if isinstance(entity, Record) else Record(dict(entity))


class MatcherBackend:
    """Serve a fitted :class:`repro.matching.EntityMatcher`.

    Built once per service: :meth:`~repro.matching.EntityMatcher.engine`
    snapshots the fitted classifier/tokenizer into a
    :class:`~repro.matching.MatchEngine`, the exact scorer behind
    ``match_many(fast=True)`` — which is what makes the service's
    decision-equivalence guarantee hold.
    """

    def __init__(self, matcher, batch_size: int = 64):
        self._engine = matcher.engine()
        self._batch_size = batch_size

    def score(self, pairs, keys, threshold: float, fallback: bool,
              forward_hook=None, cb=None,
              stages=None) -> list[MatchOutcome]:
        return self._engine.score_pairs(
            pairs, threshold=threshold, fallback=fallback, cb=cb,
            batch_size=self._batch_size, keys=keys,
            forward_hook=forward_hook, stages=stages)


class CascadeBackend:
    """Serve a :class:`repro.matching.CascadeEngine`.

    The cascade follows the engine's ``score_pairs`` protocol exactly,
    so the serving, resilience and tracing tiers compose with it
    unchanged: chunk probabilities are bit-identical to calling the
    cascade directly, escalated requests pick up an ``escalate`` trace
    stage, and ``cascade.*`` escalation counters accumulate in the
    cascade's metrics registry.
    """

    def __init__(self, cascade, batch_size: int = 64):
        self._cascade = cascade
        self._batch_size = batch_size

    def score(self, pairs, keys, threshold: float, fallback: bool,
              forward_hook=None, cb=None,
              stages=None) -> list[MatchOutcome]:
        return self._cascade.score_pairs(
            pairs, threshold=threshold, fallback=fallback, cb=cb,
            batch_size=self._batch_size, keys=keys,
            forward_hook=forward_hook, stages=stages)


class DeepMatcherBackend:
    """Serve the fitted DeepMatcher baseline.

    Wraps request pairs into a throwaway :class:`~repro.data.EMDataset`
    (labels are placeholders — only ``predict_proba`` is used) and
    applies the same isolation contract as the engine: a failed chunk
    forward is retried pair by pair, and pairs that still fail degrade
    to the classical-similarity fallback.
    """

    def __init__(self, deepmatcher, schema: list[str],
                 text_attributes: list[str] | None = None,
                 domain: str = "serve"):
        self._dm = deepmatcher
        self._schema = list(schema)
        self._text_attributes = (list(text_attributes)
                                 if text_attributes else None)
        self._domain = domain

    def _dataset(self, pairs) -> EMDataset:
        return EMDataset(
            name="serve-chunk", domain=self._domain,
            schema=list(self._schema),
            pairs=[EntityPair(_as_record(a), _as_record(b), 0)
                   for a, b in pairs],
            text_attributes=self._text_attributes)

    def _degraded(self, key, entity_a, entity_b, error: str,
                  threshold: float, fallback: bool, cb) -> MatchOutcome:
        probability = 0.0
        if fallback:
            attributes = self._text_attributes or self._schema
            try:
                probability = fallback_probability(
                    _as_record(entity_a).text_blob(attributes),
                    _as_record(entity_b).text_blob(attributes))
            except Exception as exc:  # noqa: BLE001
                error += f"; fallback failed too ({exc})"
        if cb:
            cb.on_recovery({
                "phase": "serve", "reason": "pair_failure",
                "action": ("similarity_fallback" if fallback
                           else "skipped"),
                "index": key, "error": error})
        return MatchOutcome(
            index=key, probability=probability,
            matched=fallback and probability >= threshold,
            degraded=True, error=error)

    def _score_one(self, key, entity_a, entity_b, threshold: float,
                   fallback: bool, forward_hook, cb) -> MatchOutcome:
        try:
            if forward_hook is not None:
                forward_hook([key])
            probability = float(self._dm.predict_proba(
                self._dataset([(entity_a, entity_b)]))[0])
        except Exception as exc:  # noqa: BLE001 — isolation point
            return self._degraded(key, entity_a, entity_b,
                                  f"{type(exc).__name__}: {exc}",
                                  threshold, fallback, cb)
        return MatchOutcome(index=key, probability=probability,
                            matched=probability >= threshold)

    def score(self, pairs, keys, threshold: float, fallback: bool,
              forward_hook=None, cb=None,
              stages=None) -> list[MatchOutcome]:
        pairs = list(pairs)
        keys = list(keys)
        if len(keys) != len(pairs):
            raise ValueError(f"{len(pairs)} pairs but {len(keys)} keys")
        with ExitStack() as scope:
            if stages is not None:
                scope.enter_context(stages.stage("forward",
                                                 rows=len(pairs)))
            try:
                if forward_hook is not None:
                    forward_hook(keys)
                probabilities = self._dm.predict_proba(
                    self._dataset(pairs))
            except Exception:  # noqa: BLE001 — retry singly, like the
                # engine
                return [self._score_one(key, entity_a, entity_b,
                                        threshold, fallback,
                                        forward_hook, cb)
                        for key, (entity_a, entity_b) in zip(keys, pairs)]
        return [MatchOutcome(index=key, probability=float(p),
                             matched=float(p) >= threshold)
                for key, p in zip(keys, probabilities)]


class CallableBackend:
    """Adapt ``f(entity_a, entity_b) -> probability`` to the interface.

    The workhorse of the deterministic service tests: scoring is
    instant and exact, so tests exercise pure queueing behavior
    (coalescing, deadlines, backpressure) without fitting a model.  A
    raised scoring function (or a poisoned forward hook) degrades that
    pair with probability 0.0.
    """

    def __init__(self, fn):
        self._fn = fn

    def _score_one(self, key, entity_a, entity_b, threshold: float,
                   fallback: bool, forward_hook, cb) -> MatchOutcome:
        try:
            if forward_hook is not None:
                forward_hook([key])
            probability = float(self._fn(entity_a, entity_b))
        except Exception as exc:  # noqa: BLE001 — isolation point
            if cb:
                cb.on_recovery({
                    "phase": "serve", "reason": "pair_failure",
                    "action": "skipped", "index": key,
                    "error": f"{type(exc).__name__}: {exc}"})
            return MatchOutcome(
                index=key, probability=0.0, matched=False,
                degraded=True, error=f"{type(exc).__name__}: {exc}")
        return MatchOutcome(index=key, probability=probability,
                            matched=probability >= threshold)

    def score(self, pairs, keys, threshold: float, fallback: bool,
              forward_hook=None, cb=None,
              stages=None) -> list[MatchOutcome]:
        pairs = list(pairs)
        keys = list(keys)
        if len(keys) != len(pairs):
            raise ValueError(f"{len(pairs)} pairs but {len(keys)} keys")
        with ExitStack() as scope:
            if stages is not None:
                scope.enter_context(stages.stage("forward",
                                                 rows=len(pairs)))
            try:
                if forward_hook is not None:
                    forward_hook(keys)
                return [MatchOutcome(index=key,
                                     probability=float(self._fn(a, b)),
                                     matched=float(self._fn(a, b))
                                     >= threshold)
                        for key, (a, b) in zip(keys, pairs)]
            except Exception:  # noqa: BLE001 — retry singly, like the
                # engine
                return [self._score_one(key, a, b, threshold, fallback,
                                        forward_hook, cb)
                        for key, (a, b) in zip(keys, pairs)]
