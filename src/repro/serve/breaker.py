"""Per-replica circuit breaker: closed → open → half-open.

A replica that keeps failing (dead workers, poisoned model, chaos
outage) should stop receiving traffic *before* every request pays its
timeout.  Each :class:`~repro.serve.MatchService` replica gets one
:class:`CircuitBreaker`; the :class:`~repro.serve.ReplicaSet` router
consults :meth:`CircuitBreaker.allow` when picking a replica and
reports every attempt outcome back via :meth:`record_success` /
:meth:`record_failure`.

State machine (DESIGN.md §15)::

    closed ──(failure rate ≥ threshold over window,
              volume ≥ min_volume)──▶ open
    open ──(cooldown elapsed, next allow())──▶ half_open
    half_open ──(close_after successes)──▶ closed
    half_open ──(any failure)──▶ open        (cooldown restarts)

All timing runs on the injected :class:`~repro.serve.Clock`, so under a
:class:`~repro.serve.VirtualClock` the cooldown and the sliding
failure-rate window are exactly reproducible.  The ``transitions``
audit trail records ``(state, clock time)`` for every change — the
property-test suite uses it to prove a breaker never reaches
``half_open`` before ``cooldown_seconds`` of open time elapsed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..utils.concurrency import guarded_by, make_lock
from .clock import Clock

__all__ = ["BreakerConfig", "CircuitBreaker"]

#: Gauge encoding of breaker state for ``serve.breaker.state``.
_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


@dataclass
class BreakerConfig:
    """Trip/recovery knobs for :class:`CircuitBreaker`."""

    #: Sliding window (clock seconds) over which the failure rate is
    #: computed; outcomes older than this are pruned.
    window_seconds: float = 30.0
    #: Minimum outcomes inside the window before the breaker may trip —
    #: one unlucky failure on a cold replica must not open it.
    min_volume: int = 8
    #: Failure fraction (0..1] at or above which a closed breaker opens.
    failure_threshold: float = 0.5
    #: Open dwell time before the first half-open probe is admitted.
    cooldown_seconds: float = 5.0
    #: Concurrent probe requests admitted while half-open.
    half_open_probes: int = 1
    #: Consecutive half-open successes required to close again.
    close_after: int = 2

    def __post_init__(self):
        if self.window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got "
                             f"{self.window_seconds}")
        if self.min_volume < 1:
            raise ValueError(f"min_volume must be >= 1, got "
                             f"{self.min_volume}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got "
                             f"{self.failure_threshold}")
        if self.cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got "
                             f"{self.cooldown_seconds}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got "
                             f"{self.half_open_probes}")
        if self.close_after < 1:
            raise ValueError(f"close_after must be >= 1, got "
                             f"{self.close_after}")


class CircuitBreaker:
    """Failure-rate breaker for one replica, timed by a :class:`Clock`.

    Thread-safe; all three routing-path methods (:meth:`allow`,
    :meth:`record_success`, :meth:`record_failure`) are lock-cheap and
    never block on the clock.
    """

    def __init__(self, name: str, config: BreakerConfig | None = None,
                 clock: Clock | None = None, registry=None):
        from .clock import SystemClock
        self.name = str(name)
        self.config = config or BreakerConfig()
        self.clock = clock or SystemClock()
        self._lock = make_lock(f"CircuitBreaker[{self.name}]._lock")
        self._state = "closed"        # guard: _lock
        self._opened_at = 0.0         # guard: _lock
        self._window: deque = deque()  # guard: _lock — (ts, ok) pairs
        self._probes_inflight = 0     # guard: _lock
        self._half_open_successes = 0  # guard: _lock
        #: Audit trail of (state, clock time); starts with the initial
        #: closed state so tests can assert on dwell times.
        self.transitions: list[tuple[str, float]] = [
            ("closed", self.clock.now())]  # guard: _lock
        if registry is not None:
            labels = {"replica": self.name}
            self._state_gauge = registry.gauge("serve.breaker.state",
                                               labels=labels)
            self._transitions_counter = registry.counter(
                "serve.breaker.transitions", labels=labels)
            self._short_circuited = registry.counter(
                "serve.breaker.short_circuited", labels=labels)
            self._state_gauge.set(0)
        else:
            self._state_gauge = None
            self._transitions_counter = None
            self._short_circuited = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @guarded_by("_lock")
    def _set_state_locked(self, state: str, now: float) -> None:
        if state == self._state:
            return
        self._state = state
        self.transitions.append((state, now))
        if state == "open":
            self._opened_at = now
        if state in ("open", "half_open"):
            self._probes_inflight = 0
            self._half_open_successes = 0
        if state == "closed":
            self._window.clear()
        if self._state_gauge is not None:
            self._state_gauge.set(_STATE_CODES[state])
            self._transitions_counter.inc()

    @guarded_by("_lock")
    def _prune_locked(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def allow(self) -> bool:
        """May a request be routed to this replica right now?

        Closed: always.  Open: no — unless ``cooldown_seconds`` have
        elapsed, in which case the breaker moves to half-open and this
        call claims the first probe slot.  Half-open: only while probe
        slots (``half_open_probes`` minus in-flight probes) remain.
        """
        now = self.clock.now()
        with self._lock:
            if self._state == "open":
                if now - self._opened_at >= self.config.cooldown_seconds:
                    self._set_state_locked("half_open", now)
                else:
                    if self._short_circuited is not None:
                        self._short_circuited.inc()
                    return False
            if self._state == "half_open":
                if self._probes_inflight >= self.config.half_open_probes:
                    if self._short_circuited is not None:
                        self._short_circuited.inc()
                    return False
                self._probes_inflight += 1
                return True
            return True

    def record_success(self) -> None:
        """An attempt routed to this replica completed."""
        now = self.clock.now()
        with self._lock:
            if self._state == "half_open":
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._half_open_successes += 1
                if self._half_open_successes >= self.config.close_after:
                    self._set_state_locked("closed", now)
                return
            self._window.append((now, True))
            self._prune_locked(now)

    def record_failure(self) -> None:
        """An attempt routed to this replica failed or timed out."""
        now = self.clock.now()
        with self._lock:
            if self._state == "half_open":
                # A failed probe reopens immediately; cooldown restarts.
                self._set_state_locked("open", now)
                return
            if self._state == "open":
                return
            self._window.append((now, False))
            self._prune_locked(now)
            if len(self._window) < self.config.min_volume:
                return
            failures = sum(1 for _, ok in self._window if not ok)
            if failures / len(self._window) \
                    >= self.config.failure_threshold:
                self._set_state_locked("open", now)

    def release(self) -> None:
        """Return an :meth:`allow`-claimed half-open probe slot without
        recording an outcome (the routed attempt was abandoned before
        it was ever submitted — e.g. its flight completed on another
        replica between routing and submission)."""
        with self._lock:
            if self._state == "half_open":
                self._probes_inflight = max(0, self._probes_inflight - 1)

    def reset(self) -> None:
        """Force-close (used after a supervisor respawns the replica —
        the new process shares the old breaker identity but none of its
        failure history)."""
        with self._lock:
            self._set_state_locked("closed", self.clock.now())
