"""Entity-matching as a service: dynamic micro-batching over the engine.

The paper's numbers come from offline batch evaluation, but the
north-star use case — matching at data-integration scale — is a
service: requests trickle in one pair at a time, and per-pair forwards
waste the throughput the length-bucketed batch path buys.  This layer
closes that gap in-process:

* :mod:`~repro.serve.service` — :class:`MatchService`, a thread-safe
  bounded queue + worker pool that coalesces pending requests into
  model batches (``max_batch_size`` / ``max_wait_ms`` policy), with
  per-request futures, deadline timeouts, typed backpressure
  (:class:`ServiceOverloaded`) and per-request degradation on model
  failure;
* :mod:`~repro.serve.backends` — pluggable scorers: the transformer
  :class:`~repro.matching.EntityMatcher` (bit-identical to
  ``match_many``), the DeepMatcher baseline, or any callable;
* :mod:`~repro.serve.clock` — the :class:`Clock` abstraction
  (:class:`SystemClock` / :class:`VirtualClock`) that makes every
  queueing test deterministic and sleep-free;
* :mod:`~repro.serve.sim` — the seeded load generator and open-loop
  simulation driver behind both the tests and ``repro bench serve``;
* :mod:`~repro.serve.bench` — throughput/latency benchmark versus the
  serial baseline at several offered-load levels;
* :mod:`~repro.serve.retry` / :mod:`~repro.serve.breaker` /
  :mod:`~repro.serve.resilient` — the fault-tolerance tier
  (DESIGN.md §15): seeded-backoff retries with budgets and deadline
  propagation, per-replica circuit breakers, hedged requests, load
  shedding, and the :class:`ReplicaSet` supervisor that respawns
  chaos-killed replicas — all deterministic under a
  :class:`VirtualClock`;
* :mod:`~repro.serve.bench_resilient` — availability under seeded
  chaos (naive client vs resilient tier) plus the tier's chaos-off
  overhead, behind ``repro bench resilient``.
"""

from .backends import (CallableBackend, CascadeBackend, DeepMatcherBackend,
                       MatcherBackend)
from .bench import (load_serve_report, run_serve_benchmark,
                    validate_serve_report, write_serve_report)
from .bench_resilient import (load_resilient_report,
                              run_resilient_benchmark,
                              validate_resilient_report,
                              write_resilient_report)
from .breaker import BreakerConfig, CircuitBreaker
from .clock import Clock, ClockCondition, SystemClock, VirtualClock
from .resilient import (HedgeConfig, Replica, ReplicaSet,
                        ResilientClient, ResilientConfig,
                        run_resilient_simulation)
from .retry import RetryBudget, RetryConfig, RetryPolicy
from .service import (MatchService, MatchTicket, RequestCancelled,
                      RequestTimeout, ServeConfig, ServeError,
                      ServiceClosed, ServiceOverloaded)
from .sim import (Arrival, SimReport, Workload, generate_workload,
                  run_simulation)

__all__ = [
    "MatchService", "MatchTicket", "ServeConfig", "ServeError",
    "ServiceClosed", "ServiceOverloaded", "RequestTimeout",
    "RequestCancelled",
    "MatcherBackend", "CascadeBackend", "DeepMatcherBackend",
    "CallableBackend",
    "Clock", "ClockCondition", "SystemClock", "VirtualClock",
    "Arrival", "Workload", "SimReport", "generate_workload",
    "run_simulation",
    "RetryConfig", "RetryBudget", "RetryPolicy",
    "BreakerConfig", "CircuitBreaker",
    "HedgeConfig", "ResilientConfig", "Replica", "ReplicaSet",
    "ResilientClient", "run_resilient_simulation",
    "run_serve_benchmark", "validate_serve_report",
    "write_serve_report", "load_serve_report",
    "run_resilient_benchmark", "validate_resilient_report",
    "write_resilient_report", "load_resilient_report",
]
