"""Deterministic load simulation for :class:`repro.serve.MatchService`.

Two halves:

* :func:`generate_workload` — a seeded workload generator producing a
  fixed arrival schedule over a pool of record pairs.  Patterns:
  ``"poisson"`` (exponential inter-arrivals at the offered rate, the
  classic open-loop model), ``"burst"`` (whole groups arriving at the
  same instant, stressing coalescing and backpressure), and
  ``"adversarial"`` (Poisson arrivals but pairs reordered into an
  alternating shortest/longest length mix, stressing the length
  bucketer with maximally heterogeneous batches).  Same seed, same
  schedule — byte for byte.
* :func:`run_simulation` — an open-loop driver that replays a workload
  against a service on *any* clock.  On a
  :class:`~repro.serve.clock.VirtualClock` the whole run is simulated:
  ``clock.run_for`` advances virtual time between arrivals, worker
  wake-ups fire deterministically, and a ten-minute soak completes in
  milliseconds of wall time with zero real sleeps.  On a
  :class:`~repro.serve.clock.SystemClock` the same driver becomes a
  real load benchmark (``repro bench serve``).

The resulting :class:`SimReport` carries exact latency samples (clock
seconds, submit to complete) plus the rejection/timeout/degradation
tallies, so tests can assert on precise counts rather than statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils import child_rng
from .clock import VirtualClock
from .service import MatchService, RequestTimeout, ServiceOverloaded

__all__ = ["Arrival", "Workload", "SimReport", "generate_workload",
           "run_simulation"]

PATTERNS = ("poisson", "burst", "adversarial")


@dataclass
class Arrival:
    """One scheduled request: offset seconds from workload start."""

    at: float
    entity_a: object
    entity_b: object


@dataclass
class Workload:
    """A fixed, seeded arrival schedule (sorted by time)."""

    arrivals: list[Arrival]
    pattern: str
    rate: float
    seed: int

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        """Offset of the last arrival (seconds)."""
        return self.arrivals[-1].at if self.arrivals else 0.0


def _pair_length(pair) -> int:
    total = 0
    for entity in pair:
        if hasattr(entity, "text_blob"):  # a repro.data.Record
            total += len(entity.text_blob())
        else:
            total += len(" ".join(str(v) for v in dict(entity).values()))
    return total


def _adversarial_order(pairs: list) -> list:
    """Alternate shortest / longest — worst case for length bucketing."""
    ranked = sorted(range(len(pairs)),
                    key=lambda i: (_pair_length(pairs[i]), i))
    order = []
    lo, hi = 0, len(ranked) - 1
    while lo <= hi:
        order.append(ranked[lo])
        if lo != hi:
            order.append(ranked[hi])
        lo += 1
        hi -= 1
    return [pairs[i] for i in order]


def generate_workload(pairs, num_requests: int, rate: float,
                      seed: int = 0, pattern: str = "poisson",
                      burst_size: int = 8) -> Workload:
    """A seeded schedule of ``num_requests`` arrivals at ``rate`` req/s.

    ``pairs`` is the pool of ``(entity_a, entity_b)`` tuples to draw
    from (cycled if shorter than ``num_requests``).  ``burst_size``
    only applies to the ``"burst"`` pattern: that many requests land at
    the same instant, with bursts spaced to preserve the average rate.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; "
                         f"choose from {PATTERNS}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    pairs = list(pairs)
    if not pairs:
        raise ValueError("need at least one pair to build a workload")
    rng = child_rng(seed, "serve-workload", pattern)
    if pattern == "burst":
        times = []
        gap = burst_size / rate
        for index in range(num_requests):
            times.append((index // burst_size) * gap)
    else:
        gaps = rng.exponential(1.0 / rate, size=num_requests)
        gaps[0] = 0.0  # first request arrives at t=0
        times = list(gaps.cumsum())
    if pattern == "adversarial":
        pairs = _adversarial_order(pairs)
    arrivals = [
        Arrival(at=float(times[index]),
                entity_a=pairs[index % len(pairs)][0],
                entity_b=pairs[index % len(pairs)][1])
        for index in range(num_requests)]
    return Workload(arrivals=arrivals, pattern=pattern, rate=float(rate),
                    seed=seed)


@dataclass
class SimReport:
    """What happened when a workload ran against a service."""

    offered: int
    completed: int = 0
    rejected: int = 0
    timeouts: int = 0
    degraded: int = 0
    errors: int = 0
    duration: float = 0.0
    #: Submit-to-complete clock seconds, one per completed request,
    #: in submission order.
    latencies: list[float] = field(default_factory=list)
    #: MatchOutcomes of completed requests keyed by request id.
    outcomes: dict[int, object] = field(default_factory=dict)

    def latency_quantile(self, q: float) -> float:
        """Exact linear-interpolation quantile of completed latencies."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        ordered = sorted(self.latencies)
        if not ordered:
            return 0.0
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    @property
    def throughput(self) -> float:
        """Completed requests per clock second."""
        return self.completed / self.duration if self.duration else 0.0


def _advance_settled(settled, clock: VirtualClock, gap: float) -> None:
    """Advance virtual time by ``gap`` — one timer firing at a time,
    letting worker threads settle (react, drain, re-arm) in between, so
    the same workload replays the same batch schedule every run.

    ``settled`` is a zero-argument quiescence predicate —
    ``MatchService.settled`` for the plain sim,
    ``ResilientClient.settled`` (all replicas plus the supervisor) for
    the resilient one.
    """
    target = clock.now() + gap
    while True:
        clock.settle(settled)
        now = clock.now()
        if now >= target:
            return
        deadline = clock.next_deadline()
        if deadline is None or deadline >= target:
            step = target - now
        else:
            step = max(deadline - now, 0.0)
        clock.advance(step)


def run_simulation(service: MatchService, workload: Workload,
                   timeout_ms: float | None = None) -> SimReport:
    """Replay ``workload`` against ``service`` on the service's clock.

    Open-loop: arrivals are submitted on schedule whether or not
    earlier requests finished; a full queue counts a rejection and the
    driver moves on (the client got its :class:`ServiceOverloaded`).
    On a :class:`~repro.serve.clock.VirtualClock` the driver advances
    in settled steps — no virtual time passes while a worker is
    mid-reaction — so the run is deterministic end to end.  After the
    last arrival the service is closed with ``drain=True``, which
    flushes the residual queue at the final instant.  Returns the
    :class:`SimReport`; the service is closed on return.
    """
    clock = service.clock
    virtual = isinstance(clock, VirtualClock)
    report = SimReport(offered=len(workload))
    start = clock.now()
    service.start()
    tickets = []
    elapsed = 0.0
    for arrival in workload.arrivals:
        if arrival.at > elapsed:
            if virtual:
                _advance_settled(lambda: service.settled, clock,
                                 arrival.at - elapsed)
            else:
                clock.run_for(arrival.at - elapsed)
            elapsed = arrival.at
        try:
            tickets.append(service.submit(arrival.entity_a,
                                          arrival.entity_b,
                                          timeout_ms=timeout_ms))
        except ServiceOverloaded:
            report.rejected += 1
    if virtual:
        # Play the tail out timer by timer until the queue is dry, so
        # flush deadlines (and request timeouts) fire on schedule.
        clock.settle(lambda: service.settled)
        while service.queue_depth or service.inflight:
            deadline = clock.next_deadline()
            if deadline is None:
                break  # close() flushes whatever is left synchronously
            clock.advance(max(deadline - clock.now(), 0.0))
            clock.settle(lambda: service.settled)
    service.close(drain=True)
    for ticket in tickets:
        error = ticket.exception()
        if error is None:
            outcome = ticket.result()
            report.completed += 1
            report.latencies.append(ticket.latency)
            report.outcomes[ticket.request_id] = outcome
            if outcome.degraded:
                report.degraded += 1
        elif isinstance(error, RequestTimeout):
            report.timeouts += 1
        else:
            report.errors += 1
    report.duration = clock.now() - start
    return report
