"""Clock abstraction: the only place serving code may touch time.

Everything in :mod:`repro.serve` that waits, sleeps, stamps a deadline
or measures a latency does it through a :class:`Clock`, never through
``time.sleep`` / ``time.monotonic`` directly (lint rule RA111 enforces
this).  Two implementations share the interface:

* :class:`SystemClock` — real wall-clock time, for production serving
  and the ``repro bench serve`` load benchmark;
* :class:`VirtualClock` — a deterministic simulated clock for the test
  harness (:mod:`repro.serve.sim`): time only moves when the driver
  calls :meth:`~VirtualClock.advance`, which fires registered timers in
  strict deadline order.  Queueing, timeout and backpressure behavior
  becomes exactly reproducible — no real sleeps, no wall-clock
  flakiness, and a "ten minute" soak finishes in milliseconds.

Worker threads block on :class:`ClockCondition` — a
``threading.Condition`` whose *timeout* is interpreted by the owning
clock.  On the system clock it is a plain timed wait; on the virtual
clock the wait parks on a real (untimed) condition and a virtual timer
wakes it when simulated time passes the deadline.  Notifications
(``notify_all``) are real in both cases, so producer/consumer wakeups
work identically whichever clock is plugged in.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from ..utils.concurrency import make_condition

__all__ = ["Clock", "ClockCondition", "SystemClock", "VirtualClock"]


class ClockCondition:
    """A condition variable whose wait timeouts run on a :class:`Clock`.

    Use like ``threading.Condition``::

        with cond:
            cond.wait_for(lambda: queue or closed, timeout=0.005)

    ``notify_all`` must be called with the lock held, as usual.
    """

    def __init__(self, clock: "Clock"):
        self._clock = clock
        # Through the factory: under an active RaceDetector the inner
        # condition is a traced wrapper, so service lock acquisitions
        # feed the lockset algorithm; normally it is a plain
        # threading.Condition.
        self._cond = make_condition("ClockCondition")

    def __enter__(self):
        self._cond.__enter__()
        return self

    def __exit__(self, *exc):
        return self._cond.__exit__(*exc)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def wait_for(self, predicate, timeout: float | None = None) -> bool:
        """Block until ``predicate()`` is true or ``timeout`` clock
        seconds elapse; returns the final predicate value."""
        if timeout is None:
            return self._cond.wait_for(predicate)
        return self._clock._wait_for(self._cond, predicate, timeout)


class Clock:
    """Interface: monotonic time, sleeping, timers, and conditions."""

    def now(self) -> float:
        """Monotonic seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds`` of clock time."""
        raise NotImplementedError

    def call_later(self, delay: float, callback):
        """Schedule ``callback()`` to fire after ``delay`` clock seconds
        without blocking the caller; returns a handle accepted by
        :meth:`cancel`.  The resilient tier runs on these timers
        (backoff, hedges, attempt timeouts, health probes), so both
        clocks must implement them.
        """
        raise NotImplementedError

    def cancel(self, handle) -> None:
        """Deactivate a timer returned by :meth:`call_later`."""
        raise NotImplementedError

    def condition(self) -> ClockCondition:
        """A condition variable whose timeouts run on this clock."""
        return ClockCondition(self)

    def run_for(self, seconds: float) -> None:
        """Driver-side time passage: let ``seconds`` of clock time play
        out.  On the system clock that is just sleeping; the virtual
        clock overrides it with :meth:`VirtualClock.advance`, which
        *causes* time to pass.  Load generators call this between
        arrivals so one loop drives either clock.
        """
        self.sleep(seconds)

    def _wait_for(self, cond: threading.Condition, predicate,
                  timeout: float) -> bool:
        raise NotImplementedError


class SystemClock(Clock):
    """Real time: ``time.monotonic`` / ``time.sleep``.

    This class is the single sanctioned blocking-sleep site in the
    serving stack (RA111 exempts it); every other module must take a
    ``Clock`` so the virtual implementation can substitute.

    Timers (:meth:`call_later`) share one lazily started daemon thread
    per clock instance — a heap-ordered timer wheel, not a
    thread-per-timer ``threading.Timer``, so the resilient tier can arm
    one timeout per attempt without spawning a thread per request.
    """

    def __init__(self):
        self._timer_cond = threading.Condition()
        self._timers: list[list] = []   # guard: _timer_cond
        self._sequence = itertools.count()
        self._timer_thread: threading.Thread | None = None

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def call_later(self, delay: float, callback) -> list:
        entry = [self.now() + max(float(delay), 0.0),
                 next(self._sequence), callback]
        with self._timer_cond:
            heapq.heappush(self._timers, entry)
            # The wheel thread never exits its loop (callbacks that
            # raise are swallowed), so one None check replaces a
            # per-call Thread.is_alive poll on the hot path.
            if self._timer_thread is None:
                self._timer_thread = threading.Thread(
                    target=self._timer_loop, daemon=True,
                    name="repro-serve-timer")
                self._timer_thread.start()
            # Wake the wheel only when the new timer preempts the
            # deadline it is sleeping toward.  The common case — one
            # fixed-delay attempt timeout per request, registered in
            # arrival order — pushes monotonically later deadlines, and
            # an unconditional notify would context-switch the timer
            # thread on every request.  Pushing behind a stale
            # (cancelled) head costs at most one spurious wake at the
            # stale deadline.
            if self._timers[0] is entry:
                self._timer_cond.notify_all()
        return entry

    def cancel(self, handle: list) -> None:
        with self._timer_cond:
            handle[2] = None

    def _timer_loop(self) -> None:
        while True:
            fire = None
            with self._timer_cond:
                while fire is None:
                    while self._timers and self._timers[0][2] is None:
                        heapq.heappop(self._timers)
                    if not self._timers:
                        self._timer_cond.wait()
                        continue
                    delay = self._timers[0][0] - self.now()
                    if delay <= 0:
                        fire = heapq.heappop(self._timers)
                    else:
                        self._timer_cond.wait(delay)
            callback = fire[2]
            if callback is None:
                continue
            try:
                callback()
            except Exception:  # noqa: BLE001 — a raising timer callback
                # must not kill the shared wheel; callbacks own their
                # error handling.
                pass

    def _wait_for(self, cond: threading.Condition, predicate,
                  timeout: float) -> bool:
        return cond.wait_for(predicate, timeout=max(timeout, 0.0))


class VirtualClock(Clock):
    """Deterministic simulated time, advanced explicitly by a driver.

    Threads that ``sleep`` or ``wait_for`` with a timeout register a
    timer; :meth:`advance` moves simulated time forward, firing due
    timers in ``(deadline, registration order)`` — so two timers due at
    the same instant always fire in the order they were created, and a
    run with the same schedule wakes the same waiters in the same
    order every time.
    """

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._now = float(start)  # guard: _lock
        self._sequence = itertools.count()
        #: Heap of (deadline, sequence, callback | None); a cancelled
        #: timer keeps its slot with callback=None (lazy deletion).
        self._timers: list[list] = []  # guard: _lock

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Block until another thread advances past ``now + seconds``."""
        if seconds <= 0:
            return
        woken = threading.Event()
        self.call_at(self.now() + seconds, woken.set)
        woken.wait()

    # -- timers --------------------------------------------------------------

    def call_at(self, deadline: float, callback) -> list:
        """Register ``callback`` to fire when time reaches ``deadline``.

        Returns a handle accepted by :meth:`cancel`.  A deadline at or
        before the current time fires on the *next* :meth:`advance`
        (time never moves inside ``call_at`` — only the driver moves
        it), which keeps registration side-effect free.
        """
        with self._lock:
            entry = [float(deadline), next(self._sequence), callback]
            heapq.heappush(self._timers, entry)
            return entry

    def call_later(self, delay: float, callback) -> list:
        """:meth:`call_at` relative to now (the :class:`Clock` timer
        interface shared with :class:`SystemClock`)."""
        return self.call_at(self.now() + max(float(delay), 0.0), callback)

    def cancel(self, handle: list) -> None:
        """Deactivate a timer registered with :meth:`call_at`."""
        with self._lock:
            handle[2] = None

    def pending_timers(self) -> int:
        """Active (non-cancelled) timers — the sim's quiescence probe."""
        with self._lock:
            return sum(1 for entry in self._timers if entry[2] is not None)

    def next_deadline(self) -> float | None:
        """Earliest active timer deadline, or None when no timers wait.

        Lets a driver advance in *steps* — up to one firing at a time,
        settling worker threads in between — instead of blowing through
        a whole window at once.
        """
        with self._lock:
            while self._timers and self._timers[0][2] is None:
                heapq.heappop(self._timers)
            return self._timers[0][0] if self._timers else None

    def settle(self, predicate, spin: float = 0.0005,
               timeout: float = 5.0) -> bool:
        """Yield *real* time until ``predicate()`` is true (bounded).

        Virtual time is deterministic but the threads it coordinates are
        real: after a submit or a timer firing, a worker needs actual
        CPU time to wake up, drain the queue, and park on its next
        deadline.  Drivers call ``settle`` before advancing so the
        system is quiescent at every step — this is the one sanctioned
        real-time wait in the simulation path, and it never adds
        virtual time.  Returns the final predicate value (False only on
        the ``timeout`` safety valve, e.g. a dead worker).
        """
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() >= deadline:
                return bool(predicate())
            time.sleep(spin)
        return True

    def advance(self, seconds: float) -> None:
        """Move time forward, firing due timers in deadline order.

        Each timer fires with the clock set exactly to its deadline
        (never beyond), so a callback reading :meth:`now` observes the
        instant it was scheduled for.  Callbacks run on the driver
        thread with no clock lock held — they may notify conditions and
        schedule new timers, but new timers inside the advanced window
        fire within this same call.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}; time only "
                             f"moves forward")
        with self._lock:
            target = self._now + float(seconds)
        while True:
            callback = None
            with self._lock:
                while self._timers and self._timers[0][2] is None:
                    heapq.heappop(self._timers)  # lazily drop cancelled
                if self._timers and self._timers[0][0] <= target:
                    entry = heapq.heappop(self._timers)
                    self._now = max(self._now, entry[0])
                    callback = entry[2]
                else:
                    self._now = target
                    break
            if callback is not None:
                callback()

    def run_for(self, seconds: float) -> None:
        self.advance(seconds)

    def _wait_for(self, cond: threading.Condition, predicate,
                  timeout: float) -> bool:
        expired = [False]

        def fire(cond=cond, expired=expired):
            with cond:
                expired[0] = True
                cond.notify_all()

        handle = self.call_at(self.now() + max(timeout, 0.0), fire)
        try:
            # Caller already holds ``cond``; the untimed wait releases
            # it, so ``fire`` (driven from advance()) can get in.
            cond.wait_for(lambda: predicate() or expired[0])
            return bool(predicate())
        finally:
            self.cancel(handle)
