"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that every
model in the repository is fully reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ACC_DTYPE", "DTYPE", "normal", "uniform", "xavier_uniform",
           "kaiming_uniform", "zeros", "ones"]

# All trainable weights use float32: at the model sizes of this
# reproduction it halves memory traffic and roughly doubles throughput
# with no measurable effect on training quality.
DTYPE = np.float32

# Accumulation dtype for the int8 quantized kernels (repro.nn.quant /
# repro.nn.fused q-kernels).  int8 payloads must be cast to this before
# any arithmetic: under NEP 50 an int8 array mixed with a python float
# promotes to float64, silently breaking the float32-accumulation
# contract (lint rule RA119 guards call sites).  Defined here because
# this module is the single sanctioned home for concrete float dtypes
# (RA102).
ACC_DTYPE = np.float32


def normal(rng: np.random.Generator, shape: tuple[int, ...],
           std: float = 0.02) -> np.ndarray:
    """Truncated-free normal init; BERT uses std=0.02 for all weights."""
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def uniform(rng: np.random.Generator, shape: tuple[int, ...],
            bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)


def xavier_uniform(rng: np.random.Generator,
                   shape: tuple[int, ...]) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)


def kaiming_uniform(rng: np.random.Generator,
                    shape: tuple[int, ...]) -> np.ndarray:
    fan_in, _ = _fans(shape)
    bound = np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=DTYPE)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        return shape[0], shape[0]
    return shape[0], shape[1]
