"""Checkpoint (de)serialization for module state dicts.

Checkpoints are plain ``.npz`` archives mapping parameter names to arrays,
so they are portable, diffable with numpy, and need no pickle.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_module", "load_module"]

_META_KEY = "__meta__"


def save_checkpoint(path: str | Path, state: dict,
                    metadata: dict | None = None) -> None:
    """Write a name->array state dict (plus JSON metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.asarray(value) for name, value in state.items()}
    if metadata is not None:
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> tuple[dict, dict | None]:
    """Read a checkpoint; returns (state_dict, metadata_or_None)."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _META_KEY}
        metadata = None
        if _META_KEY in archive.files:
            metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    return state, metadata


def save_module(path: str | Path, module: Module,
                metadata: dict | None = None) -> None:
    """Save a module's state dict as a checkpoint file."""
    save_checkpoint(path, module.state_dict(), metadata=metadata)


def load_module(path: str | Path, module: Module) -> dict | None:
    """Load a checkpoint into ``module``; returns its metadata if any."""
    state, metadata = load_checkpoint(path)
    module.load_state_dict(state)
    return metadata
