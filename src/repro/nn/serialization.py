"""Checkpoint (de)serialization for module state dicts.

Checkpoints are plain ``.npz`` archives mapping parameter names to arrays,
so they are portable, diffable with numpy, and need no pickle.

Since format version 2 every archive additionally carries a JSON
*manifest* (under the ``__manifest__`` key) recording the format version,
the list of saved arrays and a per-array SHA-256 content checksum.
:func:`load_checkpoint` verifies the manifest on read, so a truncated
file, a flipped byte, or a missing array surfaces as a single
:class:`CheckpointError` naming the file and the offending keys instead
of a raw ``zipfile.BadZipFile``/``KeyError`` deep inside numpy.  Archives
written before the manifest existed still load (with a best-effort
integrity check from the zip layer only).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["CheckpointError", "FORMAT_VERSION", "save_checkpoint",
           "load_checkpoint", "save_module", "load_module",
           "apply_state_dict", "array_checksum"]

_META_KEY = "__meta__"
_MANIFEST_KEY = "__manifest__"

#: Current checkpoint format version (bumped when the manifest changes).
FORMAT_VERSION = 2


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, verified, or applied.

    Attributes
    ----------
    path:
        The checkpoint file involved ('' when not file-backed).
    keys:
        The offending array/parameter names, when the failure is
        attributable to specific keys (corrupt arrays, shape or name
        mismatches); empty for whole-file failures.
    """

    def __init__(self, message: str, path: str | Path = "",
                 keys: list[str] | None = None):
        super().__init__(message)
        self.path = str(path)
        self.keys = list(keys or [])


def array_checksum(value: np.ndarray) -> str:
    """Stable content hash of an array (shape/dtype/bytes)."""
    value = np.ascontiguousarray(value)
    digest = hashlib.sha256()
    digest.update(str(value.dtype).encode())
    digest.update(str(value.shape).encode())
    digest.update(value.tobytes())
    return digest.hexdigest()[:16]


def _json_to_array(payload) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"),
                         dtype=np.uint8)


def save_checkpoint(path: str | Path, state: dict,
                    metadata: dict | None = None) -> None:
    """Write a name->array state dict (plus JSON metadata) to ``path``.

    The write is atomic (temp file + ``os.replace``) and stamps a
    format-v2 manifest with per-array checksums.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.asarray(value) for name, value in state.items()}
    manifest = {
        "format_version": FORMAT_VERSION,
        "keys": sorted(arrays),
        "checksums": {name: array_checksum(value)
                      for name, value in arrays.items()},
    }
    arrays[_MANIFEST_KEY] = _json_to_array(manifest)
    if metadata is not None:
        arrays[_META_KEY] = _json_to_array(metadata)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
    os.replace(tmp, path)


def _read_json_member(archive, name: str, path: Path) -> dict:
    try:
        return json.loads(archive[name].tobytes().decode("utf-8"))
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt {name!r} record: {exc}",
            path=path, keys=[name]) from exc


def load_checkpoint(path: str | Path,
                    verify: bool = True) -> tuple[dict, dict | None]:
    """Read a checkpoint; returns (state_dict, metadata_or_None).

    Raises :class:`CheckpointError` — never a raw ``zipfile`` or ``KeyError``
    — when the file is missing, truncated, fails its manifest checksums,
    or lacks arrays the manifest promises.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file does not exist: {path}",
                              path=path)
    try:
        archive = np.load(path)
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is not a readable .npz archive "
            f"(truncated or corrupt): {exc}", path=path) from exc
    with archive:
        state: dict[str, np.ndarray] = {}
        bad_keys: list[str] = []
        for name in archive.files:
            if name in (_META_KEY, _MANIFEST_KEY):
                continue
            try:
                state[name] = archive[name]
            except Exception:
                bad_keys.append(name)
        if bad_keys:
            raise CheckpointError(
                f"checkpoint {path} has unreadable arrays (corrupt "
                f"members): {sorted(bad_keys)}", path=path, keys=bad_keys)
        metadata = None
        if _META_KEY in archive.files:
            metadata = _read_json_member(archive, _META_KEY, path)
        manifest = None
        if _MANIFEST_KEY in archive.files:
            manifest = _read_json_member(archive, _MANIFEST_KEY, path)
    if manifest is not None and verify:
        _verify_manifest(path, state, manifest)
    return state, metadata


def _verify_manifest(path: Path, state: dict, manifest: dict) -> None:
    expected = manifest.get("keys", [])
    missing = sorted(set(expected) - set(state))
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing arrays its manifest promises: "
            f"{missing}", path=path, keys=missing)
    checksums = manifest.get("checksums", {})
    mismatched = sorted(
        name for name, digest in checksums.items()
        if name in state and array_checksum(state[name]) != digest)
    if mismatched:
        raise CheckpointError(
            f"checkpoint {path} failed checksum verification for "
            f"{mismatched} — the file was corrupted after writing",
            path=path, keys=mismatched)


def save_module(path: str | Path, module: Module,
                metadata: dict | None = None) -> None:
    """Save a module's state dict as a checkpoint file."""
    save_checkpoint(path, module.state_dict(), metadata=metadata)


def load_module(path: str | Path, module: Module) -> dict | None:
    """Load a checkpoint into ``module``; returns its metadata if any.

    Key or shape mismatches between the checkpoint and the module raise
    :class:`CheckpointError` naming the file and the offending parameters.
    """
    state, metadata = load_checkpoint(path)
    apply_state_dict(module, state, source=path)
    return metadata


def apply_state_dict(module: Module, state: dict,
                     source: str | Path = "<state dict>") -> None:
    """``module.load_state_dict`` with failures normalized to
    :class:`CheckpointError` (naming ``source`` and the offending keys)."""
    own = dict(module.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        raise CheckpointError(
            f"checkpoint {source} does not match the module: "
            f"missing={missing} unexpected={unexpected}",
            path=source, keys=missing + unexpected)
    bad_shapes = [
        f"{name} (checkpoint {np.asarray(state[name]).shape} vs model "
        f"{param.data.shape})"
        for name, param in own.items()
        if np.asarray(state[name]).shape != param.data.shape]
    if bad_shapes:
        names = [entry.split(" ", 1)[0] for entry in bad_shapes]
        raise CheckpointError(
            f"checkpoint {source} has shape mismatches: "
            f"{'; '.join(bad_shapes)}", path=source, keys=names)
    module.load_state_dict(state)
