"""int8 per-channel post-training quantization for the fused path.

The quantization scheme is symmetric per-output-channel for weights and
symmetric per-tensor for activations, the standard recipe for
transformer inference (DESIGN.md §16):

* each Linear weight row ``W[o, :]`` is stored as int8 with a float
  scale ``s_o = absmax(W[o, :]) / 127`` so ``W ≈ q * s_o``;
* activation ranges come from a *calibration sweep*: representative
  pairs run through the fused path under
  :func:`repro.nn.fused.record_activations`, which records the
  per-input-channel absmax seen at every fused linear call site; the
  per-tensor activation scale is ``max(range) / 127``;
* at inference the input is fake-quantized to the int8 grid, the
  contraction accumulates in ``ACC_DTYPE`` (float32), and the output is
  rescaled by ``s_o * s_x`` — see :func:`repro.nn.fused.qlinear`.

The calibrated artifact is a :class:`QuantizedWeights`: a name-keyed
set of :class:`QuantizedLinear` payloads saved atomically through the
format-v2 checkpoint writer (manifest + per-array checksums), so a
truncated or bit-flipped artifact fails loudly.  Acceptance is gated on
*decision consistency*: :func:`decision_consistency` compares match
decisions between the float and quantized paths on a held-out split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from .init import ACC_DTYPE
from .serialization import CheckpointError, load_checkpoint, save_checkpoint

__all__ = ["QMAX", "QuantizedLinear", "QuantizedWeights",
           "ConsistencyReport", "quantize_per_channel", "dequantize",
           "calibrate_quantization", "decision_consistency"]

#: Symmetric int8 grid half-width: payload values live in [-127, 127]
#: (the -128 code is unused so the grid is symmetric around zero).
QMAX = 127

# Activation ranges can be all-zero for a dead channel set (e.g. a
# padding-only calibration batch); the scale floor keeps the divide
# finite and maps such inputs to zero codes.
_RANGE_FLOOR = 1e-12


@dataclass(eq=False)
class QuantizedLinear:
    """One Linear layer's int8 payload plus calibration scales.

    ``q`` is the int8 weight matrix (out, in); ``scale`` the
    per-output-channel weight scales (out,); ``bias`` the float bias
    copy (or None); ``act_range`` the calibrated per-input-channel
    activation absmax (in,) and ``act_scale`` the per-tensor activation
    scale derived from it.  ``q32`` caches the ``ACC_DTYPE`` copy of the
    payload that the fused q-kernels contract against — int8 arrays must
    never enter arithmetic directly (RA119/NEP 50 float64 promotion).
    """

    q: np.ndarray
    scale: np.ndarray
    bias: np.ndarray | None
    act_range: np.ndarray
    act_scale: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.q.dtype != np.int8:
            raise ValueError(
                f"quantized payload must be int8, got {self.q.dtype}")
        if not self.act_scale:
            self.act_scale = (
                max(float(self.act_range.max()), _RANGE_FLOOR) / QMAX)

    @cached_property
    def q32(self) -> np.ndarray:
        """``ACC_DTYPE`` copy of the int8 payload, cached for reuse."""
        return self.q.astype(ACC_DTYPE)

    @cached_property
    def out_scale(self) -> np.ndarray:
        """Combined per-channel rescale ``scale * act_scale``, cached so
        the hot kernel skips the per-call vector multiply."""
        return self.scale * self.act_scale

    @property
    def nbytes(self) -> int:
        """Bytes held by the quantized representation (payload+scales)."""
        total = self.q.nbytes + self.scale.nbytes + self.act_range.nbytes
        if self.bias is not None:
            total += self.bias.nbytes
        return total

    def dequantized(self) -> np.ndarray:
        """Float reconstruction ``q * scale`` of the weight matrix."""
        return dequantize(self.q, self.scale)


def quantize_per_channel(
        weight: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of a (out, in) weight.

    Returns ``(q, scale)`` with ``q`` int8 and ``scale`` the per-row
    float scales such that ``q * scale[:, None]`` reconstructs the
    weight to within half a step (``scale / 2``) per channel.  All-zero
    rows get a unit-range scale so they round-trip exactly.
    """
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError(
            f"per-channel quantization expects a 2-D (out, in) weight, "
            f"got shape {weight.shape}")
    absmax = np.abs(weight).max(axis=1)
    safe = np.where(absmax > 0, absmax, 1.0)
    scale = np.asarray(safe / QMAX, dtype=ACC_DTYPE)
    grid = np.clip(np.rint(weight / scale[:, None]), -QMAX, QMAX)
    return grid.astype(np.int8), scale


def dequantize(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Reconstruct the float weight from an int8 payload and row scales."""
    return q.astype(ACC_DTYPE) * np.asarray(scale,
                                            dtype=ACC_DTYPE)[:, None]


class QuantizedWeights:
    """A calibrated set of int8 layers for one classifier.

    Maps parameter base names (e.g.
    ``backbone.layers.0.attention.q_proj``) to
    :class:`QuantizedLinear` payloads.  Built by
    :func:`calibrate_quantization`, persisted atomically with
    :meth:`save`/:meth:`load` (format-v2 checkpoint manifest), and bound
    to a live module with :meth:`overlay_for`, whose result feeds
    :func:`repro.nn.fused.quantized_inference`.
    """

    def __init__(self, layers: Mapping[str, QuantizedLinear],
                 metadata: dict | None = None):
        if not layers:
            raise ValueError("QuantizedWeights needs at least one layer")
        self.layers = dict(layers)
        self.metadata = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def nbytes(self) -> int:
        """Total bytes across all quantized layers."""
        return sum(ql.nbytes for ql in self.layers.values())

    def overlay_for(self, module) -> dict[int, QuantizedLinear]:
        """Bind the artifact to a live module by parameter name.

        Returns the ``{id(weight array): QuantizedLinear}`` mapping the
        fused dispatch keys on.  Raises :class:`CheckpointError` when a
        calibrated layer is missing from the module or its shape
        changed — an artifact must never silently half-apply.
        """
        params = dict(module.named_parameters())
        overlay: dict[int, QuantizedLinear] = {}
        bad: list[str] = []
        for name, quantized in self.layers.items():
            param = params.get(name + ".weight")
            if param is None or param.data.shape != quantized.q.shape:
                bad.append(name)
                continue
            overlay[id(param.data)] = quantized
        if bad:
            raise CheckpointError(
                f"quantized weights do not match the module (missing or "
                f"reshaped layers): {sorted(bad)}", keys=sorted(bad))
        return overlay

    def save(self, path: str | Path) -> None:
        """Atomically persist the artifact as a manifest-checked .npz."""
        state: dict[str, np.ndarray] = {}
        for name, quantized in self.layers.items():
            state[f"{name}.q"] = quantized.q
            state[f"{name}.scale"] = quantized.scale
            state[f"{name}.act_range"] = quantized.act_range
            if quantized.bias is not None:
                state[f"{name}.bias"] = quantized.bias
        metadata = dict(self.metadata)
        metadata.update({
            "kind": "quantized-weights",
            "qmax": QMAX,
            "layers": sorted(self.layers),
        })
        save_checkpoint(path, state, metadata=metadata)

    @classmethod
    def load(cls, path: str | Path) -> "QuantizedWeights":
        """Load and verify an artifact written by :meth:`save`."""
        state, metadata = load_checkpoint(path)
        if not metadata or metadata.get("kind") != "quantized-weights":
            raise CheckpointError(
                f"{path} is not a quantized-weights artifact", path=path)
        layers: dict[str, QuantizedLinear] = {}
        for name in metadata.get("layers", []):
            try:
                payload = state[f"{name}.q"]
                scale = state[f"{name}.scale"]
                act_range = state[f"{name}.act_range"]
            except KeyError as exc:
                raise CheckpointError(
                    f"quantized-weights artifact {path} is missing arrays "
                    f"for layer {name!r}", path=path, keys=[name]) from exc
            bias = state.get(f"{name}.bias")
            layers[name] = QuantizedLinear(
                q=payload, scale=scale, bias=bias, act_range=act_range)
        extra = {key: value for key, value in metadata.items()
                 if key not in ("kind", "qmax", "layers")}
        return cls(layers, metadata=extra)


def calibrate_quantization(module, sweep: Callable[[], object],
                           metadata: dict | None = None) -> QuantizedWeights:
    """Calibrate int8 quantization for every fused linear ``module`` runs.

    ``sweep`` is a zero-argument callable that pushes representative
    inputs through the model's *fused* forward path (tape off, fused
    kernels on) — typically a closure over
    :meth:`repro.matching.MatchEngine.score_pairs` on calibration
    pairs.  The sweep runs under
    :func:`repro.nn.fused.record_activations`; every weight the fused
    path touched is then quantized per-channel and paired with its
    recorded activation range.  Weights the sweep never exercised stay
    float — quantization only ever applies where calibration data
    exists.
    """
    from .fused import record_activations

    with record_activations() as ranges:
        sweep()
    if not ranges:
        raise ValueError(
            "calibration sweep recorded no fused linear calls — it must "
            "run with gradients off and fused kernels enabled")
    params = dict(module.named_parameters())
    by_id = {id(param.data): name for name, param in params.items()}
    layers: dict[str, QuantizedLinear] = {}
    for weight_id, act_range in ranges.items():
        name = by_id.get(weight_id)
        if name is None or not name.endswith(".weight"):
            continue
        base = name[:-len(".weight")]
        grid, scale = quantize_per_channel(params[name].data)
        bias_param = params.get(base + ".bias")
        bias = (np.asarray(bias_param.data, dtype=ACC_DTYPE)
                if bias_param is not None else None)
        layers[base] = QuantizedLinear(
            q=grid, scale=scale, bias=bias,
            act_range=np.asarray(act_range, dtype=ACC_DTYPE))
    return QuantizedWeights(layers, metadata=metadata)


@dataclass(frozen=True)
class ConsistencyReport:
    """Decision agreement between the float and quantized paths.

    ``consistency`` is the fraction of held-out pairs whose boolean
    match decision is identical; ``max_probability_delta`` the largest
    absolute probability difference observed.  The acceptance gate is
    :meth:`passed` against a configured floor (1.0 = every decision
    must agree).
    """

    pairs: int
    agreements: int
    consistency: float
    max_probability_delta: float

    def passed(self, floor: float = 1.0) -> bool:
        """True when the agreement fraction meets ``floor``."""
        return self.consistency >= floor


def decision_consistency(reference: Iterable,
                         quantized: Iterable) -> ConsistencyReport:
    """Compare two outcome lists (``.matched``/``.probability`` duck type).

    ``reference`` is the float path, ``quantized`` the int8 path over
    the same pairs in the same order.  Used as the acceptance gate after
    calibration: quantization ships only if held-out decisions agree.
    """
    reference = list(reference)
    quantized = list(quantized)
    if len(reference) != len(quantized):
        raise ValueError(
            f"outcome lists differ in length: {len(reference)} vs "
            f"{len(quantized)}")
    agreements = sum(
        1 for ref, quant in zip(reference, quantized)
        if ref.matched == quant.matched)
    deltas = [abs(ref.probability - quant.probability)
              for ref, quant in zip(reference, quantized)]
    total = len(reference)
    return ConsistencyReport(
        pairs=total, agreements=agreements,
        consistency=agreements / total if total else 1.0,
        max_probability_delta=max(deltas) if deltas else 0.0)
