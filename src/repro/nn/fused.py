"""Fused no-tape inference kernels for the hot op chains.

Pure-numpy forward kernels for the sequences that dominate inference
cost: the affine map, GELU, softmax, layer norm, the feed-forward block
and the scaled-dot-product attention core (QK^T -> bias -> mask ->
softmax -> V).  Each kernel replicates the differentiable ``Tensor``
path's numpy arithmetic operation for operation, so fused outputs are
bit-identical to the op-by-op path; the equivalence is pinned by the
bit-identity tests in ``tests/test_perf.py``.

The kernels never allocate intermediate :class:`Tensor` objects and are
only engaged while the tape is off (see
:func:`repro.nn.is_fused_enabled`): modules check that flag and fall
back to the differentiable path whenever gradients are required.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

__all__ = ["linear", "gelu", "softmax", "layer_norm", "feed_forward",
           "split_heads", "merge_heads", "attention_core",
           "count_kernels"]

# Thread-local kernel observation hook: when the tracing layer wants to
# know which fused kernels a forward pass engaged (and how often), it
# installs a callback for the duration of the pass.  Thread-local so
# concurrent serving workers never see each other's counts; the
# disabled path costs one getattr + falsy check per kernel call.
_HOOK = threading.local()


def _notify(kind: str) -> None:
    fn = getattr(_HOOK, "fn", None)
    if fn is not None:
        fn(kind)


@contextmanager
def count_kernels():
    """Count fused-kernel invocations on this thread inside the block.

    Yields a ``{kernel name: calls}`` dict that fills in as kernels run;
    used by the serving trace layer to attach kernel mix to forward
    spans.  Nests: the previous hook is restored on exit.
    """
    counts: dict[str, int] = {}

    def bump(kind: str) -> None:
        counts[kind] = counts.get(kind, 0) + 1

    previous = getattr(_HOOK, "fn", None)
    _HOOK.fn = bump
    try:
        yield counts
    finally:
        _HOOK.fn = previous


def linear(x: np.ndarray, weight: np.ndarray,
           bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ W^T + b`` with ``W`` stored (out, in)."""
    _notify("linear")
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU, tanh approximation — same arithmetic as :meth:`Tensor.gelu`."""
    _notify("gelu")
    c = float(np.sqrt(2.0 / np.pi))
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    return 0.5 * x * (1.0 + t)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shift-stabilized softmax — same arithmetic as :meth:`Tensor.softmax`."""
    _notify("softmax")
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    """Layer norm over the last axis — same arithmetic as
    :meth:`Tensor.layer_norm`."""
    _notify("layer_norm")
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    return (x - mu) * inv * weight + bias


def feed_forward(x: np.ndarray, w_in: np.ndarray, b_in: np.ndarray,
                 w_out: np.ndarray, b_out: np.ndarray) -> np.ndarray:
    """The transformer FF block ``linear -> gelu -> linear``, fused."""
    _notify("feed_forward")
    return linear(gelu(linear(x, w_in, b_in)), w_out, b_out)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(B, T, D) -> (B, H, T, D/H) without a Tensor wrapper."""
    batch, seq, dim = x.shape
    return x.reshape(batch, seq, num_heads,
                     dim // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(B, H, T, D/H) -> (B, T, D) without a Tensor wrapper."""
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


def attention_core(q: np.ndarray | None, k: np.ndarray | None,
                   v: np.ndarray, scale: float,
                   attention_mask: np.ndarray | None = None,
                   score_bias: np.ndarray | None = None,
                   mask_value: float = -1e9,
                   scores: np.ndarray | None = None) -> np.ndarray:
    """The QK^T -> bias -> mask -> softmax -> V core on (B, H, T, Dh).

    Replicates the differentiable path op for op: scaled scores, optional
    additive ``score_bias`` (the lexical match bias), boolean
    ``attention_mask`` (True = masked) filled with ``mask_value``, then
    softmax over keys and the value contraction.  Dropout is omitted —
    the kernel only runs with the tape off, where dropout is identity.
    Callers with a non-standard score map (XLNet's relative-position
    scores) pass pre-scaled ``scores`` directly and may leave ``q``/``k``
    as None; only the bias -> mask -> softmax -> V tail runs then.
    """
    _notify("attention_core")
    if scores is None:
        # float() strips numpy scalar types: they are not "weak" under
        # NEP 50 and would silently upcast float32 scores to float64,
        # breaking bit-identity with the Tensor path (whose scalar ops
        # coerce the same way).
        scores = (q @ np.swapaxes(k, -1, -2)) * float(scale)
    if score_bias is not None:
        scores = scores + score_bias
    if attention_mask is not None:
        scores = np.where(np.asarray(attention_mask, dtype=bool),
                          mask_value, scores)
    probs = softmax(scores, axis=-1)
    return probs @ v
