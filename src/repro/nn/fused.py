"""Fused no-tape inference kernels for the hot op chains.

Pure-numpy forward kernels for the sequences that dominate inference
cost: the affine map, GELU, softmax, layer norm, the feed-forward block
and the scaled-dot-product attention core (QK^T -> bias -> mask ->
softmax -> V).  Each kernel replicates the differentiable ``Tensor``
path's numpy arithmetic operation for operation, so fused outputs are
bit-identical to the op-by-op path; the equivalence is pinned by the
bit-identity tests in ``tests/test_perf.py``.

The kernels never allocate intermediate :class:`Tensor` objects and are
only engaged while the tape is off (see
:func:`repro.nn.is_fused_enabled`): modules check that flag and fall
back to the differentiable path whenever gradients are required.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np

from .init import ACC_DTYPE

__all__ = ["linear", "gelu", "softmax", "layer_norm", "feed_forward",
           "split_heads", "merge_heads", "attention_core",
           "count_kernels", "qlinear", "qfeed_forward",
           "qattention_core", "quantized_inference",
           "record_activations"]

# Thread-local kernel observation hook: when the tracing layer wants to
# know which fused kernels a forward pass engaged (and how often), it
# installs a callback for the duration of the pass.  Thread-local so
# concurrent serving workers never see each other's counts; the
# disabled path costs one getattr + falsy check per kernel call.
_HOOK = threading.local()


def _notify(kind: str) -> None:
    fn = getattr(_HOOK, "fn", None)
    if fn is not None:
        fn(kind)


@contextmanager
def count_kernels():
    """Count fused-kernel invocations on this thread inside the block.

    Yields a ``{kernel name: calls}`` dict that fills in as kernels run;
    used by the serving trace layer to attach kernel mix to forward
    spans.  Nests: the previous hook is restored on exit.
    """
    counts: dict[str, int] = {}

    def bump(kind: str) -> None:
        counts[kind] = counts.get(kind, 0) + 1

    previous = getattr(_HOOK, "fn", None)
    _HOOK.fn = bump
    try:
        yield counts
    finally:
        _HOOK.fn = previous


# Thread-local quantization state.  ``overlay`` maps id(weight array) ->
# QuantizedLinear and reroutes fused linear calls through the int8
# kernels; ``record`` accumulates per-channel activation absmax during a
# calibration sweep.  Both piggyback on the same dispatch point so the
# model code needs zero changes: the fused path already funnels every
# encoder linear through :func:`linear`.  Thread-local for the same
# reason as ``_HOOK`` — concurrent serving workers must not see each
# other's overlays.
_QUANT = threading.local()


@contextmanager
def quantized_inference(overlay):
    """Route fused linears through the int8 kernels inside the block.

    ``overlay`` maps ``id(weight array) -> QuantizedLinear`` (built by
    :meth:`repro.nn.QuantizedWeights.overlay_for`).  Calls whose weight
    is not in the overlay keep the float path.  Nests: the previous
    overlay is restored on exit.  Thread-local, like the kernel hook.
    """
    previous = getattr(_QUANT, "overlay", None)
    _QUANT.overlay = dict(overlay)
    try:
        yield
    finally:
        _QUANT.overlay = previous


@contextmanager
def record_activations():
    """Record per-channel input absmax of every fused linear call.

    Yields a ``{id(weight array): absmax per input channel}`` dict that
    fills in as the calibration sweep runs; maxima accumulate across
    calls so one sweep over representative pairs yields the activation
    range of each call site.  Only meaningful while the fused path is
    engaged (tape off).
    """
    previous = getattr(_QUANT, "record", None)
    ranges: dict[int, np.ndarray] = {}
    _QUANT.record = ranges
    try:
        yield ranges
    finally:
        _QUANT.record = previous


def _record_absmax(ranges: dict[int, np.ndarray], weight: np.ndarray,
                   x: np.ndarray) -> None:
    absmax = np.abs(x).reshape(-1, x.shape[-1]).max(axis=0)
    prior = ranges.get(id(weight))
    if prior is not None:
        absmax = np.maximum(prior, absmax)
    ranges[id(weight)] = absmax


def linear(x: np.ndarray, weight: np.ndarray,
           bias: np.ndarray | None = None) -> np.ndarray:
    """Affine map ``x @ W^T + b`` with ``W`` stored (out, in)."""
    overlay = getattr(_QUANT, "overlay", None)
    if overlay is not None:
        quantized = overlay.get(id(weight))
        if quantized is not None:
            return qlinear(x, quantized)
    ranges = getattr(_QUANT, "record", None)
    if ranges is not None:
        _record_absmax(ranges, weight, x)
    _notify("linear")
    out = x @ weight.T
    if bias is not None:
        out += bias  # matmul output is owned; += is bitwise a + b
    return out


def qlinear(x: np.ndarray, quantized) -> np.ndarray:
    """int8 per-channel affine map with float32 accumulation.

    ``quantized`` is a :class:`repro.nn.QuantizedLinear`: int8 weight
    payload ``q`` with per-output-channel scales and a calibrated
    per-tensor activation scale.  The input is fake-quantized to the
    int8 grid (round + clip at ±127), the contraction runs in
    ``ACC_DTYPE`` over the cached float copy of the payload (NEP 50
    would promote a raw int8 operand mixed with python floats to
    float64 — RA119 guards that), and the result is rescaled by the
    product of the two scales before the float bias is added.
    """
    _notify("qlinear")
    x32 = np.asarray(x, dtype=ACC_DTYPE)
    xq = x32 * ACC_DTYPE(1.0 / quantized.act_scale)
    np.rint(xq, out=xq)
    np.clip(xq, -127.0, 127.0, out=xq)
    out = xq @ quantized.q32.T
    out *= quantized.out_scale
    if quantized.bias is not None:
        out += quantized.bias
    return out


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU, tanh approximation — same arithmetic as :meth:`Tensor.gelu`."""
    _notify("gelu")
    c = float(np.sqrt(2.0 / np.pi))
    # x * x * x matches Tensor.gelu exactly (and avoids the pow ufunc,
    # ~100x slower than two multiplies).  In-place chain: every step is
    # a commutative twin of the Tensor-path expression, so the bits
    # match with four fewer activation-sized temporaries.
    t = x * x
    t *= x
    t *= 0.044715
    t += x
    t *= c
    np.tanh(t, out=t)
    t += 1.0
    half_x = 0.5 * x
    half_x *= t
    return half_x


def softmax(x: np.ndarray, axis: int = -1,
            out: np.ndarray | None = None) -> np.ndarray:
    """Shift-stabilized softmax — same arithmetic as :meth:`Tensor.softmax`.

    Pass ``out=x`` only when the caller owns ``x``: the input is then
    consumed in place and no shifted copy is allocated at all.
    """
    _notify("softmax")
    # Same op order as the Tensor path (subtract max, exp, divide by
    # sum), in place on the shifted copy — attention scores are
    # (B, H, T, T), the largest arrays in the forward.
    if out is x:
        shifted = x
        shifted -= x.max(axis=axis, keepdims=True)
    else:
        shifted = x - x.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def layer_norm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
               eps: float = 1e-5) -> np.ndarray:
    """Layer norm over the last axis — same arithmetic as
    :meth:`Tensor.layer_norm`."""
    _notify("layer_norm")
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    out = x - mu
    out *= inv
    out *= weight
    out += bias
    return out


def feed_forward(x: np.ndarray, w_in: np.ndarray, b_in: np.ndarray,
                 w_out: np.ndarray, b_out: np.ndarray) -> np.ndarray:
    """The transformer FF block ``linear -> gelu -> linear``, fused."""
    overlay = getattr(_QUANT, "overlay", None)
    if overlay is not None:
        q_in = overlay.get(id(w_in))
        q_out = overlay.get(id(w_out))
        if q_in is not None and q_out is not None:
            return qfeed_forward(x, q_in, q_out)
    _notify("feed_forward")
    return linear(gelu(linear(x, w_in, b_in)), w_out, b_out)


def qfeed_forward(x: np.ndarray, q_in, q_out) -> np.ndarray:
    """The FF block over int8 weights: ``qlinear -> gelu -> qlinear``.

    ``q_in`` / ``q_out`` are :class:`repro.nn.QuantizedLinear` payloads
    for the expand and project weights; GELU runs in ``ACC_DTYPE``
    between the two quantized contractions.
    """
    _notify("qfeed_forward")
    return qlinear(gelu(qlinear(x, q_in)), q_out)


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """(B, T, D) -> (B, H, T, D/H) without a Tensor wrapper."""
    batch, seq, dim = x.shape
    return x.reshape(batch, seq, num_heads,
                     dim // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """(B, H, T, D/H) -> (B, T, D) without a Tensor wrapper."""
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


def attention_core(q: np.ndarray | None, k: np.ndarray | None,
                   v: np.ndarray, scale: float,
                   attention_mask: np.ndarray | None = None,
                   score_bias: np.ndarray | None = None,
                   mask_value: float = -1e9,
                   scores: np.ndarray | None = None) -> np.ndarray:
    """The QK^T -> bias -> mask -> softmax -> V core on (B, H, T, Dh).

    Replicates the differentiable path op for op: scaled scores, optional
    additive ``score_bias`` (the lexical match bias), boolean
    ``attention_mask`` (True = masked) filled with ``mask_value``, then
    softmax over keys and the value contraction.  Dropout is omitted —
    the kernel only runs with the tape off, where dropout is identity.
    Callers with a non-standard score map (XLNet's relative-position
    scores) pass pre-scaled ``scores`` directly and may leave ``q``/``k``
    as None; only the bias -> mask -> softmax -> V tail runs then.
    """
    if getattr(_QUANT, "overlay", None) is not None:
        return qattention_core(q, k, v, scale,
                               attention_mask=attention_mask,
                               score_bias=score_bias,
                               mask_value=mask_value, scores=scores)
    _notify("attention_core")
    return _attention_math(q, k, v, scale, attention_mask, score_bias,
                           mask_value, scores)


def qattention_core(q: np.ndarray | None, k: np.ndarray | None,
                    v: np.ndarray, scale: float,
                    attention_mask: np.ndarray | None = None,
                    score_bias: np.ndarray | None = None,
                    mask_value: float = -1e9,
                    scores: np.ndarray | None = None) -> np.ndarray:
    """:func:`attention_core` pinned to the quantized accumulation dtype.

    Under a quantized overlay Q/K/V arrive from :func:`qlinear` already
    in ``ACC_DTYPE``; this kernel forces the score and value
    contractions to stay there so the quantized forward keeps the
    float32-accumulation contract end to end even if the surrounding
    model dtype drifts.  Same arithmetic as the float core otherwise.
    """
    _notify("qattention_core")
    if scores is None:
        q = np.asarray(q, dtype=ACC_DTYPE)
        k = np.asarray(k, dtype=ACC_DTYPE)
    else:
        scores = np.asarray(scores, dtype=ACC_DTYPE)
    v = np.asarray(v, dtype=ACC_DTYPE)
    return _attention_math(q, k, v, scale, attention_mask, score_bias,
                           mask_value, scores)


def _attention_math(q, k, v, scale, attention_mask, score_bias,
                    mask_value, scores):
    owned = scores is None
    if owned:
        # float() strips numpy scalar types: they are not "weak" under
        # NEP 50 and would silently upcast float32 scores to float64,
        # breaking bit-identity with the Tensor path (whose scalar ops
        # coerce the same way).
        scores = q @ np.swapaxes(k, -1, -2)
        scores *= float(scale)
    if score_bias is not None:
        # Mutate in place only when this frame owns the scores array;
        # a caller-provided scores buffer must stay untouched.
        if owned:
            scores += score_bias
        else:
            scores = scores + score_bias
            owned = True
    if attention_mask is not None:
        mask = np.asarray(attention_mask, dtype=bool)
        if owned:
            np.copyto(scores, mask_value, where=mask)
        else:
            scores = np.where(mask, mask_value, scores)
            owned = True
    probs = softmax(scores, axis=-1, out=scores if owned else None)
    return probs @ v
