"""Minimal numpy-based deep learning substrate (autodiff, layers, optim).

This package replaces PyTorch for the reproduction: a reverse-mode
autodiff :class:`Tensor`, module system, the layers needed by transformer
encoders and RNN baselines, losses, and optimizers.
"""

from .attention import MultiHeadAttention, padding_attention_mask
from .fused import quantized_inference, record_activations
from .init import ACC_DTYPE, DTYPE
from .layers import (Dropout, Embedding, GELU, LayerNorm, Linear, ReLU,
                     Sequential, Tanh)
from .losses import (binary_cross_entropy_with_logits, cosine_embedding_loss,
                     cross_entropy, distillation_loss, mse_loss)
from .module import Module, ModuleList, Parameter
from .optim import (Adam, ConstantSchedule, LinearSchedule, SGD,
                    clip_grad_norm)
from .quant import (ConsistencyReport, QuantizedLinear, QuantizedWeights,
                    calibrate_quantization, decision_consistency,
                    dequantize, quantize_per_channel)
from .rnn import BiRNN, GRUCell, LSTMCell
from .serialization import (CheckpointError, apply_state_dict,
                            array_checksum, load_checkpoint, load_module,
                            save_checkpoint, save_module)
from .tensor import (Tensor, fused_kernels, inference_mode, is_fused_enabled,
                     is_grad_enabled, no_grad)

__all__ = [
    "Tensor", "no_grad", "inference_mode", "fused_kernels",
    "is_grad_enabled", "is_fused_enabled", "DTYPE", "ACC_DTYPE",
    "Module", "ModuleList", "Parameter",
    "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential",
    "GELU", "ReLU", "Tanh",
    "MultiHeadAttention", "padding_attention_mask",
    "GRUCell", "LSTMCell", "BiRNN",
    "cross_entropy", "binary_cross_entropy_with_logits",
    "distillation_loss", "cosine_embedding_loss", "mse_loss",
    "SGD", "Adam", "LinearSchedule", "ConstantSchedule", "clip_grad_norm",
    "save_checkpoint", "load_checkpoint", "save_module", "load_module",
    "CheckpointError", "apply_state_dict", "array_checksum",
    "QuantizedLinear", "QuantizedWeights", "ConsistencyReport",
    "quantize_per_channel", "dequantize", "calibrate_quantization",
    "decision_consistency", "quantized_inference", "record_activations",
]
