"""Module system: parameter containers with named traversal.

Mirrors the small subset of ``torch.nn.Module`` semantics that the
reproduction needs: attribute-based registration of parameters and
submodules, recursive iteration, train/eval mode, and a state dict for
checkpointing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a trainable leaf of a module tree."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even when created under no_grad.
        self.requires_grad = True


class Module:
    """Base class for all neural network components."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- attribute-based registration ---------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module tree."""
        return sum(p.size for p in self.parameters())

    # -- train / eval -----------------------------------------------------------

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(
            (name, param.data.copy()) for name, param in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}")
            param.data = value.astype(param.data.dtype)

    # -- calling --------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable list of submodules registered under their index."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
