"""Core neural network layers built on the autodiff tensor."""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "Sequential",
           "GELU", "ReLU", "Tanh"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` on the last axis.

    Weights are stored as (out_features, in_features), matching the usual
    transformer checkpoint convention.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True,
                 std: float = 0.02):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.normal(rng, (out_features, in_features),
                                            std=std))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator, std: float = 0.02):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, embedding_dim),
                                            std=std))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}")
        return self.weight.embedding(ids)


class LayerNorm(Module):
    """Layer normalization over the trailing feature axis."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return x.layer_norm(self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        return x.dropout(self.p, self._rng)


class Sequential(Module):
    """Run submodules in order, feeding each the previous output."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, module in enumerate(modules):
            self._modules[str(i)] = module

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
