"""Multi-head scaled dot-product attention (Vaswani et al., 2017)."""

from __future__ import annotations

import numpy as np

from . import fused
from .init import DTYPE
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor, is_fused_enabled

__all__ = ["MultiHeadAttention", "split_heads", "merge_heads",
           "padding_attention_mask"]

_NEG_INF = -1e9


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """(B, T, D) -> (B, H, T, D/H)."""
    batch, seq, dim = x.shape
    head_dim = dim // num_heads
    return x.reshape(batch, seq, num_heads, head_dim).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """(B, H, T, D/H) -> (B, T, D)."""
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


class MultiHeadAttention(Module):
    """Self- or cross-attention with optional additive masking.

    Parameters
    ----------
    d_model:
        Model width; must be divisible by ``num_heads``.
    num_heads:
        Number of attention heads.
    dropout:
        Dropout applied to the attention probabilities.
    """

    def __init__(self, d_model: int, num_heads: int,
                 rng: np.random.Generator, dropout: float = 0.1,
                 match_bias: bool = False):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(
                f"d_model={d_model} not divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.q_proj = Linear(d_model, d_model, rng)
        self.k_proj = Linear(d_model, d_model, rng)
        self.v_proj = Linear(d_model, d_model, rng)
        self.out_proj = Linear(d_model, d_model, rng)
        self.attn_dropout = Dropout(dropout, rng)
        # Lexical match bias (scale-bridging adaptation, see DESIGN.md):
        # per-head gains on a token-similarity score added to the logits.
        # Large pre-trained models grow such "matching heads" during
        # pre-training; at this reproduction's scale they are seeded.
        self.match_gain = None
        if match_bias:
            from .module import Parameter
            self.match_gain = Parameter(
                np.full((num_heads,), 2.0, dtype=DTYPE))

    def forward(self, query: Tensor, key: Tensor | None = None,
                value: Tensor | None = None,
                attention_mask: np.ndarray | None = None,
                match_scores: np.ndarray | None = None) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (defaulting to self-attention).

        ``attention_mask`` is a boolean array broadcastable to
        (B, H, T_q, T_k); True entries are *masked out* (ignored).
        ``match_scores`` is an optional (B, T_q, T_k) token-similarity
        matrix added to the attention logits through the learnable
        per-head ``match_gain``.
        """
        key = query if key is None else key
        value = key if value is None else value
        if is_fused_enabled():
            return Tensor(self.fused_forward(
                query.data, key.data, value.data,
                attention_mask=attention_mask, match_scores=match_scores))

        q = split_heads(self.q_proj(query), self.num_heads)
        k = split_heads(self.k_proj(key), self.num_heads)
        v = split_heads(self.v_proj(value), self.num_heads)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if match_scores is not None and self.match_gain is not None:
            gain = self.match_gain.reshape(1, self.num_heads, 1, 1)
            scores = scores + gain * Tensor(match_scores[:, None, :, :])
        if attention_mask is not None:
            scores = scores.masked_fill(attention_mask, _NEG_INF)
        probs = scores.softmax(axis=-1)
        probs = self.attn_dropout(probs)
        context = merge_heads(probs @ v)
        return self.out_proj(context)

    def fused_forward(self, query: np.ndarray, key: np.ndarray,
                      value: np.ndarray,
                      attention_mask: np.ndarray | None = None,
                      match_scores: np.ndarray | None = None) -> np.ndarray:
        """No-tape array path: the whole QKV -> core -> output-projection
        chain as fused numpy kernels, bit-identical to :meth:`forward`.
        Attention dropout is identity here because the tape is off."""
        q = fused.split_heads(fused.linear(query, self.q_proj.weight.data,
                                           self.q_proj.bias.data),
                              self.num_heads)
        k = fused.split_heads(fused.linear(key, self.k_proj.weight.data,
                                           self.k_proj.bias.data),
                              self.num_heads)
        v = fused.split_heads(fused.linear(value, self.v_proj.weight.data,
                                           self.v_proj.bias.data),
                              self.num_heads)
        score_bias = None
        if match_scores is not None and self.match_gain is not None:
            score_bias = (self.match_gain.data.reshape(1, self.num_heads,
                                                       1, 1)
                          * match_scores[:, None, :, :])
        context = fused.attention_core(
            q, k, v, 1.0 / np.sqrt(self.head_dim),
            attention_mask=attention_mask, score_bias=score_bias,
            mask_value=_NEG_INF)
        return fused.linear(fused.merge_heads(context),
                            self.out_proj.weight.data,
                            self.out_proj.bias.data)


def padding_attention_mask(pad_mask: np.ndarray) -> np.ndarray:
    """Turn a (B, T) key padding mask (True = pad) into (B, 1, 1, T)."""
    pad_mask = np.asarray(pad_mask, dtype=bool)
    return pad_mask[:, None, None, :]
