"""Recurrent cells and bidirectional wrappers for the DeepMatcher baseline.

The paper's baseline (Mudgal et al., SIGMOD 2018) summarizes attribute
token sequences with bidirectional GRUs/LSTMs.  Both cell types are
implemented; sequences are processed step by step on the autodiff tape,
which is slow but exactly the sequential dependency the paper contrasts
transformers against.
"""

from __future__ import annotations

import numpy as np

from .init import DTYPE
from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["GRUCell", "LSTMCell", "BiRNN"]


class GRUCell(Module):
    """Gated recurrent unit cell (Cho et al., 2014)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        std = 1.0 / np.sqrt(hidden_size)
        self.x2h = Linear(input_size, 3 * hidden_size, rng, std=std)
        self.h2h = Linear(hidden_size, 3 * hidden_size, rng, std=std)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        gx = self.x2h(x)
        gh = self.h2h(h)
        H = self.hidden_size
        r = (gx[:, 0:H] + gh[:, 0:H]).sigmoid()
        z = (gx[:, H:2 * H] + gh[:, H:2 * H]).sigmoid()
        n = (gx[:, 2 * H:] + r * gh[:, 2 * H:]).tanh()
        return (1.0 - z) * n + z * h

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size), dtype=DTYPE))


class LSTMCell(Module):
    """Long short-term memory cell with forget-gate bias of 1."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        std = 1.0 / np.sqrt(hidden_size)
        self.x2h = Linear(input_size, 4 * hidden_size, rng, std=std)
        self.h2h = Linear(hidden_size, 4 * hidden_size, rng, std=std)
        # Standard trick: bias the forget gate open at initialization.
        self.x2h.bias.data[hidden_size:2 * hidden_size] = 1.0

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]
                ) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = self.x2h(x) + self.h2h(h)
        H = self.hidden_size
        i = gates[:, 0:H].sigmoid()
        f = gates[:, H:2 * H].sigmoid()
        g = gates[:, 2 * H:3 * H].tanh()
        o = gates[:, 3 * H:].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size), dtype=DTYPE)
        return Tensor(zeros), Tensor(zeros.copy())


class BiRNN(Module):
    """Bidirectional recurrent encoder returning per-step hidden states.

    Output width is ``2 * hidden_size`` (forward and backward states
    concatenated), matching the DeepMatcher summarizer.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, cell: str = "gru"):
        super().__init__()
        if cell not in ("gru", "lstm"):
            raise ValueError(f"unknown cell type: {cell!r}")
        cell_cls = GRUCell if cell == "gru" else LSTMCell
        self.cell_type = cell
        self.forward_cell = cell_cls(input_size, hidden_size, rng)
        self.backward_cell = cell_cls(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def _run(self, cell: Module, steps: list[Tensor], batch: int) -> list[Tensor]:
        outputs = []
        if self.cell_type == "gru":
            h = cell.initial_state(batch)
            for x in steps:
                h = cell(x, h)
                outputs.append(h)
        else:
            state = cell.initial_state(batch)
            for x in steps:
                state = cell(x, state)
                outputs.append(state[0])
        return outputs

    def forward(self, x: Tensor) -> Tensor:
        """Encode (B, T, D) -> (B, T, 2H)."""
        batch, seq, _ = x.shape
        steps = [x[:, t, :] for t in range(seq)]
        fwd = self._run(self.forward_cell, steps, batch)
        bwd = self._run(self.backward_cell, steps[::-1], batch)[::-1]
        combined = [Tensor.concat([f, b], axis=-1) for f, b in zip(fwd, bwd)]
        return Tensor.stack(combined, axis=1)
