"""Reverse-mode automatic differentiation on numpy arrays.

This module is the substrate that replaces PyTorch in the reproduction: a
small, dependency-free tensor library with a dynamic tape.  Every operation
records a backward closure on the :class:`Tensor` it produces; calling
:meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients into ``.grad``.

Only the operations needed by the transformer architectures, the RNN
baseline and their training loops are implemented, but each is implemented
fully (broadcasting-aware, batched where applicable).
"""

from __future__ import annotations

import functools

import numpy as np

from .init import DTYPE

__all__ = ["Tensor", "no_grad", "inference_mode", "fused_kernels",
           "is_grad_enabled", "is_fused_enabled"]

_GRAD_ENABLED = True
# Fused no-tape kernels (repro.nn.fused) are bit-identical to the op-by-op
# path, so they default on; they only ever engage while the tape is off.
_FUSED_ENABLED = True


class no_grad:
    """Disable tape recording (used at inference).

    Usable as a context manager (``with no_grad():``) or as a decorator
    (``@no_grad()``).  Nesting is safe — including re-entering the *same*
    instance — because each ``__enter__`` pushes the previous state onto
    a stack that ``__exit__`` pops, and the ``with`` protocol guarantees
    the pop runs even when an exception escapes the block.
    """

    def __init__(self):
        self._saved: list[bool] = []

    def _state(self) -> bool:
        return _GRAD_ENABLED

    def _apply(self, entering: bool) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = False if entering else self._saved.pop()

    def __enter__(self):
        self._saved.append(self._state())
        self._apply(entering=True)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._apply(entering=False)
        return False

    def __call__(self, func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            # A fresh instance per call keeps the decorated function
            # reentrant; the try/finally restores the saved state even
            # when the wrapped call raises.
            ctx = type(self)()
            ctx.__enter__()
            try:
                return func(*args, **kwargs)
            finally:
                ctx.__exit__(None, None, None)
        return wrapper


class inference_mode(no_grad):
    """``no_grad`` plus the fused no-tape kernels, in one block.

    The strongest inference setting: the tape is off, ``Tensor._make``
    short-circuits graph construction, and the hot op chains (attention
    core, feed-forward, softmax/gelu/layer-norm) run as single fused
    numpy kernels with no intermediate ``Tensor`` allocations.  Outputs
    are bit-identical to the unfused path.
    """

    def _state(self) -> tuple[bool, bool]:
        return (_GRAD_ENABLED, _FUSED_ENABLED)

    def _apply(self, entering: bool) -> None:
        global _GRAD_ENABLED, _FUSED_ENABLED
        if entering:
            _GRAD_ENABLED, _FUSED_ENABLED = False, True
        else:
            _GRAD_ENABLED, _FUSED_ENABLED = self._saved.pop()


class fused_kernels(no_grad):
    """Toggle the fused no-tape kernels without touching the tape flag.

    ``with fused_kernels(False):`` forces the op-by-op reference path
    even under ``no_grad`` — used by the bit-identity tests and by
    ``repro match --no-fast``.  Fusion still only engages while
    gradients are disabled, whatever this flag says.
    """

    def __init__(self, enabled: bool = True):
        super().__init__()
        self._enabled = bool(enabled)

    def _state(self) -> bool:
        return _FUSED_ENABLED

    def _apply(self, entering: bool) -> None:
        global _FUSED_ENABLED
        _FUSED_ENABLED = self._enabled if entering else self._saved.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record backward closures."""
    return _GRAD_ENABLED


def is_fused_enabled() -> bool:
    """Whether the fused no-tape kernels are active *right now*.

    True only when fusion is switched on **and** the tape is off: fused
    kernels never run where gradients are required.
    """
    return _FUSED_ENABLED and not _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    """Coerce to a float array, defaulting to the canonical DTYPE.

    Float arrays pass through untouched (gradcheck tests run the whole
    tape in float64 by constructing float64 inputs); everything else —
    python scalars, lists, integer arrays — lands on ``repro.nn.DTYPE``
    so models train in one precision.
    """
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            return value
        return value.astype(DTYPE)
    if isinstance(value, np.floating):
        # Numpy float scalars (e.g. a full reduction) keep their own
        # precision, like float arrays do.
        return np.asarray(value)
    return np.asarray(value, dtype=DTYPE)


class Tensor:
    """A numpy array with an optional gradient tape.

    Parameters
    ----------
    data:
        Array-like payload; converted to the canonical ``repro.nn.DTYPE``
        unless already a float numpy array.
    requires_grad:
        Whether gradients should flow into this tensor.  Intermediate
        tensors inherit this from their parents.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DTYPE),
                      requires_grad=requires_grad)

    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...]) -> "Tensor":
        if not _GRAD_ENABLED:
            # No-tape fast path: every op result is a bare array wrapper —
            # no dtype coercion (op outputs are already float arrays), no
            # parent scan, no closure slots to populate.
            out = Tensor.__new__(Tensor)
            out.data = data
            out.grad = None
            out.requires_grad = False
            out._backward = None
            out._parents = ()
            return out
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
        return out

    # -- basic properties ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy, detached from the tape)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_note})"

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            # Scalar fast path: keeps dtype (NEP 50 weak promotion) and
            # skips a tape node for the constant.  float() strips numpy
            # scalar types, which are not "weak" and would upcast.
            other = float(other)
            out = self._make(self.data + other, (self,))
            if out.requires_grad:
                def _backward(grad, a=self):
                    a._accumulate(grad)
                out._backward = _backward
            return out
        other = Tensor._wrap(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def _backward(grad, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad, a.data.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad, b.data.shape))
            out._backward = _backward
        return out

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self):
                a._accumulate(-grad)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self.__add__(-other)
        return self.__add__(-Tensor._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            other = float(other)
            out = self._make(other - self.data, (self,))
            if out.requires_grad:
                def _backward(grad, a=self):
                    a._accumulate(-grad)
                out._backward = _backward
            return out
        return Tensor._wrap(other).__add__(-self)

    def __mul__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            other = float(other)
            out = self._make(self.data * other, (self,))
            if out.requires_grad:
                def _backward(grad, a=self, s=other):
                    a._accumulate(grad * s)
                out._backward = _backward
            return out
        other = Tensor._wrap(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            def _backward(grad, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad * b.data, a.data.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(grad * a.data, b.data.shape))
            out._backward = _backward
        return out

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            return self.__mul__(1.0 / other)
        other = Tensor._wrap(other)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:
            def _backward(grad, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(_unbroadcast(grad / b.data, a.data.shape))
                if b.requires_grad:
                    b._accumulate(_unbroadcast(
                        -grad * a.data / (b.data * b.data), b.data.shape))
            out._backward = _backward
        return out

    def __rtruediv__(self, other) -> "Tensor":
        if isinstance(other, (int, float)):
            data = float(other) / self.data
            out = self._make(data, (self,))
            if out.requires_grad:
                def _backward(grad, a=self, d=data):
                    a._accumulate(-grad * d / a.data)
                out._backward = _backward
            return out
        return Tensor._wrap(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, n=exponent):
                a._accumulate(grad * n * a.data ** (n - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._wrap(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            def _backward(grad, a=self, b=other):
                if a.requires_grad:
                    ga = grad @ np.swapaxes(b.data, -1, -2)
                    a._accumulate(_unbroadcast(ga, a.data.shape))
                if b.requires_grad:
                    gb = np.swapaxes(a.data, -1, -2) @ grad
                    b._accumulate(_unbroadcast(gb, b.data.shape))
            out._backward = _backward
        return out

    # -- elementwise functions -------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, d=data):
                a._accumulate(grad * d)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward(grad, a=self):
                a._accumulate(grad / a.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, d=data):
                a._accumulate(grad * (1.0 - d * d))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, d=data):
                a._accumulate(grad * d * (1.0 - d))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make(self.data * mask, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, m=mask):
                a._accumulate(grad * m)
            out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in BERT)."""
        x = self.data
        c = float(np.sqrt(2.0 / np.pi))
        # x * x * x, not x ** 3: numpy's pow ufunc is ~100x slower than
        # two multiplies and GELU sits on the inference hot path.  The
        # fused kernel (repro.nn.fused.gelu) uses the identical
        # expression so the two paths stay bit-identical.
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, t=t, inner_c=c):
                x = a.data
                dt = (1.0 - t * t) * inner_c * (1.0 + 3 * 0.044715 * (x * x))
                a._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))
            out._backward = _backward
        return out

    # -- reductions --------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _backward(grad, a=self, axis=axis, keepdims=keepdims):
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                a._accumulate(np.broadcast_to(g, a.data.shape).copy())
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[i] for i in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, axis=axis, keepdims=keepdims, d=data):
                g = grad
                m = d
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                    m = np.expand_dims(m, axis=axis)
                mask = (a.data == m).astype(a.data.dtype)
                # Split gradient evenly among ties to keep it well-defined.
                mask /= np.maximum(
                    mask.sum(axis=axis, keepdims=True) if axis is not None
                    else mask.sum(), 1.0)
                a._accumulate(g * mask)
            out._backward = _backward
        return out

    # -- shape manipulation --------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _backward(grad, a=self):
                a._accumulate(grad.reshape(a.data.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))
            def _backward(grad, a=self, inv=inverse):
                a._accumulate(grad.transpose(inv))
            out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out = self._make(self.data[index], (self,))
        if out.requires_grad:
            def _backward(grad, a=self, idx=index):
                full = np.zeros_like(a.data)
                np.add.at(full, idx, grad)
                a._accumulate(full)
            out._backward = _backward
        return out

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        out = tensors[0]._make(data, tuple(tensors))
        if out.requires_grad:
            sizes = [t.data.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)
            def _backward(grad, ts=tensors, offs=offsets, axis=axis):
                for t, start, stop in zip(ts, offs[:-1], offs[1:]):
                    if t.requires_grad:
                        sl = [slice(None)] * grad.ndim
                        sl[axis] = slice(start, stop)
                        t._accumulate(grad[tuple(sl)])
            out._backward = _backward
        return out

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._wrap(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)
        out = tensors[0]._make(data, tuple(tensors))
        if out.requires_grad:
            def _backward(grad, ts=tensors, axis=axis):
                pieces = np.split(grad, len(ts), axis=axis)
                for t, piece in zip(ts, pieces):
                    if t.requires_grad:
                        t._accumulate(np.squeeze(piece, axis=axis))
            out._backward = _backward
        return out

    # -- structured operations -------------------------------------------------------

    def embedding(self, ids: np.ndarray) -> "Tensor":
        """Row lookup ``self[ids]`` where ``self`` is a (V, D) table."""
        ids = np.asarray(ids)
        out = self._make(self.data[ids], (self,))
        if out.requires_grad:
            def _backward(grad, a=self, ids=ids):
                full = np.zeros_like(a.data)
                np.add.at(full, ids.reshape(-1),
                          grad.reshape(-1, a.data.shape[-1]))
                a._accumulate(full)
            out._backward = _backward
        return out

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a copy with entries where ``mask`` is true set to ``value``."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, m=mask):
                a._accumulate(np.where(m, 0.0, grad))
            out._backward = _backward
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, s=data, axis=axis):
                dot = (grad * s).sum(axis=axis, keepdims=True)
                a._accumulate(s * (grad - dot))
            out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_z
        out = self._make(data, (self,))
        if out.requires_grad:
            softmax = np.exp(data)
            def _backward(grad, a=self, s=softmax, axis=axis):
                a._accumulate(grad - s * grad.sum(axis=axis, keepdims=True))
            out._backward = _backward
        return out

    def dropout(self, p: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout; identity when grad is disabled (inference)."""
        if not _GRAD_ENABLED or p <= 0.0:
            return self
        keep = 1.0 - p
        mask = ((rng.random(self.data.shape) < keep) / keep).astype(
            self.data.dtype)
        out = self._make(self.data * mask, (self,))
        if out.requires_grad:
            def _backward(grad, a=self, m=mask):
                a._accumulate(grad * m)
            out._backward = _backward
        return out

    def layer_norm(self, weight: "Tensor", bias: "Tensor",
                   eps: float = 1e-5) -> "Tensor":
        """Fused layer normalization over the last axis."""
        mu = self.data.mean(axis=-1, keepdims=True)
        var = self.data.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        x_hat = (self.data - mu) * inv
        data = x_hat * weight.data + bias.data
        out = self._make(data, (self, weight, bias))
        if out.requires_grad:
            def _backward(grad, a=self, w=weight, b=bias, x_hat=x_hat, inv=inv):
                if w.requires_grad:
                    axes = tuple(range(grad.ndim - 1))
                    w._accumulate((grad * x_hat).sum(axis=axes))
                if b.requires_grad:
                    axes = tuple(range(grad.ndim - 1))
                    b._accumulate(grad.sum(axis=axes))
                if a.requires_grad:
                    n = a.data.shape[-1]
                    g = grad * w.data
                    term1 = g
                    term2 = g.mean(axis=-1, keepdims=True)
                    term3 = x_hat * (g * x_hat).mean(axis=-1, keepdims=True)
                    a._accumulate(inv * (term1 - term2 - term3))
            out._backward = _backward
        return out

    # -- autograd ----------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradients eagerly; keep leaves.
                if node._parents:
                    node.grad = None

    def zero_grad(self) -> None:
        self.grad = None
