"""Optimizers and learning-rate schedules.

The paper fine-tunes with Adam and a linear learning-rate schedule, the
standard recipe for BERT-style classification heads (Devlin et al., 2018).
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LinearSchedule",
           "ConstantSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with decoupled weight decay (AdamW-style)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


class LinearSchedule:
    """Linear warmup to ``base_lr`` then linear decay to zero.

    Drives an optimizer's ``lr`` attribute; call :meth:`step` once per
    optimizer step.
    """

    def __init__(self, optimizer: Optimizer, base_lr: float,
                 total_steps: int, warmup_steps: int = 0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self._step_count = 0
        self.optimizer.lr = self.current_lr()

    def current_lr(self) -> float:
        t = self._step_count
        if self.warmup_steps and t < self.warmup_steps:
            return self.base_lr * (t + 1) / self.warmup_steps
        remaining = max(self.total_steps - t, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denom

    def step(self) -> None:
        self._step_count += 1
        self.optimizer.lr = self.current_lr()


class ConstantSchedule:
    """No-op schedule with the same interface as :class:`LinearSchedule`."""

    def __init__(self, optimizer: Optimizer, base_lr: float):
        self.optimizer = optimizer
        self.optimizer.lr = base_lr

    def step(self) -> None:
        pass
