"""Optimizers and learning-rate schedules.

The paper fine-tunes with Adam and a linear learning-rate schedule, the
standard recipe for BERT-style classification heads (Devlin et al., 2018).
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LinearSchedule",
           "ConstantSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm."""
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """Name->array snapshot of the optimizer's internal state.

        Keys are flat strings (``"m.3"``, ``"step_count"``); scalars are
        stored as 0-d arrays so the dict round-trips through
        :func:`repro.nn.save_checkpoint` unchanged.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no state but the "
                f"checkpoint provides keys {sorted(state)}")

    def _load_slot_arrays(self, state: dict, name: str,
                          slots: list[np.ndarray]) -> None:
        """Copy ``state[f"{name}.{i}"]`` into per-parameter buffers."""
        for i, slot in enumerate(slots):
            key = f"{name}.{i}"
            if key not in state:
                raise ValueError(
                    f"optimizer state missing key {key!r} "
                    f"(expected {len(slots)} {name!r} buffers)")
            value = np.asarray(state[key])
            if value.shape != slot.shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {key!r}: "
                    f"checkpoint {value.shape} vs live {slot.shape}")
            slot[...] = value.astype(slot.dtype)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        state = {f"velocity.{i}": v.copy()
                 for i, v in enumerate(self._velocity)}
        state["lr"] = np.asarray(self.lr)
        return state

    def load_state_dict(self, state: dict) -> None:
        self._load_slot_arrays(state, "velocity", self._velocity)
        if "lr" in state:
            self.lr = float(np.asarray(state["lr"]))


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with decoupled weight decay (AdamW-style)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update

    def state_dict(self) -> dict:
        state = {}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        state["step_count"] = np.asarray(self._step_count)
        state["lr"] = np.asarray(self.lr)
        return state

    def load_state_dict(self, state: dict) -> None:
        self._load_slot_arrays(state, "m", self._m)
        self._load_slot_arrays(state, "v", self._v)
        if "step_count" not in state:
            raise ValueError("Adam state missing 'step_count'")
        self._step_count = int(np.asarray(state["step_count"]))
        if "lr" in state:
            self.lr = float(np.asarray(state["lr"]))


class LinearSchedule:
    """Linear warmup to ``base_lr`` then linear decay to zero.

    Drives an optimizer's ``lr`` attribute; call :meth:`step` once per
    optimizer step.
    """

    def __init__(self, optimizer: Optimizer, base_lr: float,
                 total_steps: int, warmup_steps: int = 0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self._step_count = 0
        self.optimizer.lr = self.current_lr()

    def current_lr(self) -> float:
        t = self._step_count
        if self.warmup_steps and t < self.warmup_steps:
            return self.base_lr * (t + 1) / self.warmup_steps
        remaining = max(self.total_steps - t, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denom

    def step(self) -> None:
        self._step_count += 1
        self.optimizer.lr = self.current_lr()

    def state_dict(self) -> dict:
        return {"step_count": np.asarray(self._step_count),
                "base_lr": np.asarray(self.base_lr)}

    def load_state_dict(self, state: dict) -> None:
        if "step_count" not in state:
            raise ValueError("LinearSchedule state missing 'step_count'")
        self._step_count = int(np.asarray(state["step_count"]))
        if "base_lr" in state:
            self.base_lr = float(np.asarray(state["base_lr"]))
        self.optimizer.lr = self.current_lr()


class ConstantSchedule:
    """No-op schedule with the same interface as :class:`LinearSchedule`."""

    def __init__(self, optimizer: Optimizer, base_lr: float):
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.optimizer.lr = base_lr

    def step(self) -> None:
        pass

    def state_dict(self) -> dict:
        return {"base_lr": np.asarray(self.base_lr)}

    def load_state_dict(self, state: dict) -> None:
        if "base_lr" in state:
            self.base_lr = float(np.asarray(state["base_lr"]))
        self.optimizer.lr = self.base_lr
