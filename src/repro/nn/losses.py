"""Loss functions used across pre-training, distillation and fine-tuning."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["cross_entropy", "binary_cross_entropy_with_logits",
           "distillation_loss", "cosine_embedding_loss", "mse_loss"]


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int | None = None,
                  class_weights: np.ndarray | None = None) -> Tensor:
    """Mean cross-entropy of (N, C) logits against integer targets.

    Higher-rank logits (e.g. (B, T, V) token predictions) are flattened.
    Positions whose target equals ``ignore_index`` contribute nothing,
    which is how non-masked positions are skipped in MLM training.
    ``class_weights`` rescales each example's loss by the weight of its
    target class (for imbalanced binary matching).
    """
    targets = np.asarray(targets)
    if logits.ndim > 2:
        logits = logits.reshape(-1, logits.shape[-1])
        targets = targets.reshape(-1)
    log_probs = logits.log_softmax(axis=-1)
    n = log_probs.shape[0]
    if class_weights is not None:
        if ignore_index is not None:
            raise ValueError("class_weights and ignore_index are exclusive")
        class_weights = np.asarray(class_weights,
                                   dtype=log_probs.data.dtype)
        sample_weights = class_weights[targets]
        sample_weights = sample_weights / sample_weights.sum()
        picked = log_probs[np.arange(n), targets]
        return -(picked * sample_weights).sum()
    if ignore_index is not None:
        keep = targets != ignore_index
        count = int(keep.sum())
        if count == 0:
            return (logits * 0.0).sum()
        safe_targets = np.where(keep, targets, 0)
        picked = log_probs[np.arange(n), safe_targets]
        weights = keep.astype(log_probs.data.dtype) / count
        return -(picked * weights).sum()
    picked = log_probs[np.arange(n), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray) -> Tensor:
    """Numerically stable BCE on raw single-logit outputs."""
    targets = np.asarray(targets, dtype=logits.data.dtype)
    probs = logits.sigmoid()
    eps = 1e-12
    return -(
        Tensor(targets) * (probs + eps).log()
        + Tensor(1.0 - targets) * (1.0 - probs + eps).log()
    ).mean()


def distillation_loss(student_logits: Tensor, teacher_logits: np.ndarray,
                      temperature: float = 2.0) -> Tensor:
    """Soft-target KL loss from Hinton et al. used by DistilBERT.

    ``L = -sum_i t_i * log(s_i)`` where both distributions are softened by
    ``temperature``.  The classic ``T^2`` factor keeps gradient magnitudes
    comparable with the hard-label loss it is mixed with.
    """
    teacher_logits = np.asarray(teacher_logits)
    t_shifted = teacher_logits / temperature
    t_shifted = t_shifted - t_shifted.max(axis=-1, keepdims=True)
    t_probs = np.exp(t_shifted)
    t_probs /= t_probs.sum(axis=-1, keepdims=True)
    t_probs = t_probs.astype(student_logits.data.dtype)
    s_log_probs = (student_logits * (1.0 / temperature)).log_softmax(axis=-1)
    per_position = -(Tensor(t_probs) * s_log_probs).sum(axis=-1)
    return per_position.mean() * (temperature ** 2)


def cosine_embedding_loss(student_hidden: Tensor,
                          teacher_hidden: np.ndarray) -> Tensor:
    """Align the direction of student and teacher hidden states.

    DistilBERT's third loss term: ``1 - cos(h_s, h_t)`` averaged over all
    positions.
    """
    teacher_hidden = np.asarray(teacher_hidden,
                                dtype=student_hidden.data.dtype)
    eps = 1e-8
    dot = (student_hidden * Tensor(teacher_hidden)).sum(axis=-1)
    s_norm = ((student_hidden * student_hidden).sum(axis=-1) + eps).sqrt()
    t_norm = np.sqrt((teacher_hidden * teacher_hidden).sum(axis=-1) + eps)
    cosine = dot / (s_norm * Tensor(t_norm))
    return (1.0 - cosine).mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target,
                                          dtype=prediction.data.dtype))
    return (diff * diff).mean()
