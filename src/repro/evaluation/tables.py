"""Regeneration of the paper's tables.

* **Table 3** — dataset statistics (from the generators).
* **Table 5** — best transformer vs Magellan vs DeepMatcher F1.
* **Table 6** — fine-tuning wall-clock per epoch per architecture.

Each function returns structured rows and a rendered ASCII table, printing
the same columns the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import load_benchmark, table3_spec
from ..utils import format_duration, format_table
from .experiments import (ALL_ARCHS, ALL_DATASETS, CellResult,
                          ExperimentScale, run_baseline_cell,
                          run_transformer_cell)

__all__ = ["PAPER_TABLE5", "PAPER_TABLE6_SECONDS", "table3", "table5",
           "table6", "Table5Row"]

# The paper's reported numbers (for EXPERIMENTS.md side-by-side output).
PAPER_TABLE5 = {
    # dataset: (Magellan, DeepMatcher, best transformer)
    "abt-buy": (33.0, 55.0, 90.9),
    "itunes-amazon": (46.8, 79.4, 94.2),
    "walmart-amazon": (37.4, 53.8, 85.5),
    "dblp-acm": (91.9, 98.1, 98.9),
    "dblp-scholar": (82.5, 93.8, 95.6),
}

PAPER_TABLE6_SECONDS = {
    # dataset: (BERT, XLNet, RoBERTa, DistilBERT) seconds per epoch
    "abt-buy": (162, 375, 163, 82),
    "itunes-amazon": (7, 12, 7, 3.5),
    "walmart-amazon": (101, 149, 101, 52),
    "dblp-acm": (144, 249, 144, 73),
    "dblp-scholar": (245, 357, 253, 126),
}


def table3(scale: float = 1.0, seed: int = 7) -> str:
    """Dataset statistics table (size / #matches / #attributes)."""
    rows = []
    for name in ALL_DATASETS:
        spec = table3_spec(name)
        dataset = load_benchmark(name, seed=seed, scale=scale)
        stats = dataset.stats()
        rows.append([name, spec.domain, stats.size, stats.num_matches,
                     stats.num_attributes])
    return format_table(
        ["Dataset", "Domain", "Size", "# Matches", "# Attr."], rows,
        title=f"Table 3 — datasets (scale={scale})")


@dataclass
class Table5Row:
    dataset: str
    magellan: float
    deepmatcher: float
    best_transformer: float
    best_arch: str

    @property
    def delta_f1(self) -> float:
        return self.best_transformer - max(self.magellan, self.deepmatcher)


def table5(scale: ExperimentScale | None = None,
           archs: tuple[str, ...] = ALL_ARCHS,
           datasets: tuple[str, ...] = ALL_DATASETS,
           log=None) -> tuple[list[Table5Row], str]:
    """Best-transformer vs baselines comparison (the headline table)."""
    scale = scale or ExperimentScale.bench()
    rows: list[Table5Row] = []
    for dataset in datasets:
        baseline = run_baseline_cell(dataset, scale)
        best_arch, best_f1 = "", -1.0
        for arch in archs:
            cell = run_transformer_cell(arch, dataset, scale, log=log)
            if cell.best_f1 > best_f1:
                best_arch, best_f1 = arch, cell.best_f1
        rows.append(Table5Row(
            dataset=dataset,
            magellan=baseline.magellan_f1,
            deepmatcher=baseline.deepmatcher_f1,
            best_transformer=best_f1,
            best_arch=best_arch,
        ))
    rendered = format_table(
        ["Dataset", "MG", "DeepM", "T_BEST", "arch", "dF1",
         "paper MG", "paper DeepM", "paper T_BEST"],
        [[r.dataset, f"{r.magellan:.1f}", f"{r.deepmatcher:.1f}",
          f"{r.best_transformer:.1f}", r.best_arch, f"{r.delta_f1:+.1f}",
          f"{PAPER_TABLE5[r.dataset][0]:.1f}",
          f"{PAPER_TABLE5[r.dataset][1]:.1f}",
          f"{PAPER_TABLE5[r.dataset][2]:.1f}"]
         for r in rows],
        title="Table 5 — F1 comparison (ours vs paper)")
    return rows, rendered


def table6(scale: ExperimentScale | None = None,
           archs: tuple[str, ...] = ALL_ARCHS,
           datasets: tuple[str, ...] = ALL_DATASETS,
           log=None) -> tuple[dict[str, dict[str, float]], str]:
    """Fine-tuning seconds per epoch for each architecture/dataset."""
    scale = scale or ExperimentScale.bench()
    seconds: dict[str, dict[str, float]] = {}
    for dataset in datasets:
        seconds[dataset] = {}
        for arch in archs:
            cell = run_transformer_cell(arch, dataset, scale, log=log)
            seconds[dataset][arch] = cell.mean_epoch_seconds
    rows = []
    for dataset in datasets:
        row = [dataset]
        for arch in archs:
            row.append(format_duration(seconds[dataset][arch]))
        bert_time = seconds[dataset].get("bert")
        ratios = " ".join(
            f"{arch}:{seconds[dataset][arch] / bert_time:.2f}x"
            for arch in archs if bert_time)
        row.append(ratios)
        rows.append(row)
    rendered = format_table(
        ["Dataset", *archs, "ratios vs bert"], rows,
        title="Table 6 — fine-tuning time per epoch")
    return seconds, rendered
