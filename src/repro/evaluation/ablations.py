"""Ablations of the design choices DESIGN.md calls out.

1. **Pre-training** — fine-tune from the zoo checkpoint vs from random
   init (the paper's core thesis: pre-training is what makes transformers
   work on EM with little labeled data).
2. **Dirty transform** — same dataset clean vs dirty (how much structure
   destruction costs each method).
3. **Balanced loss** — class-weighted vs plain cross-entropy at small
   scale (a reproduction-specific adaptation, quantified).
4. **Serialization** — all attributes vs title-only text blobs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import load_benchmark, split_dataset
from ..matching import FineTuneConfig, fine_tune
from ..models import build_backbone
from ..pretraining import PretrainedModel, get_pretrained
from ..utils import child_rng
from .experiments import ExperimentScale

__all__ = ["AblationResult", "ablate_pretraining", "ablate_dirty",
           "ablate_balanced_loss", "ablate_serialization"]


@dataclass
class AblationResult:
    name: str
    variant_a: str
    variant_b: str
    f1_a: float
    f1_b: float

    @property
    def delta(self) -> float:
        return self.f1_a - self.f1_b

    def rendered(self) -> str:
        return (f"{self.name}: {self.variant_a} {self.f1_a:.1f} vs "
                f"{self.variant_b} {self.f1_b:.1f} (d {self.delta:+.1f})")


def _finetune_f1(pretrained: PretrainedModel, splits, scale: ExperimentScale,
                 balance: bool = True, text_attributes=None) -> float:
    config = FineTuneConfig(
        epochs=scale.epochs, batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        max_length_cap=scale.max_length_cap, balance_classes=balance)
    train, test = splits.train, splits.test
    if text_attributes is not None:
        train = _with_text_attributes(train, text_attributes)
        test = _with_text_attributes(test, text_attributes)
    result = fine_tune(pretrained, train, test, config=config,
                       seed=scale.run_seed)
    return result.best_f1 * 100.0


def _with_text_attributes(dataset, attributes):
    from ..data import EMDataset
    return EMDataset(dataset.name, dataset.domain, list(dataset.schema),
                     dataset.pairs, text_attributes=list(attributes))


def _splits(dataset_name: str, scale: ExperimentScale, variant=None):
    data = load_benchmark(dataset_name, seed=scale.data_seed,
                          scale=scale.dataset_scale, variant=variant)
    return split_dataset(data,
                         child_rng(scale.data_seed, "split", dataset_name))


def ablate_pretraining(arch: str = "roberta",
                       dataset: str = "walmart-amazon",
                       scale: ExperimentScale | None = None
                       ) -> AblationResult:
    """Pre-trained checkpoint vs random initialization."""
    scale = scale or ExperimentScale.bench()
    splits = _splits(dataset, scale)
    pretrained = get_pretrained(arch, seed=0, settings=scale.zoo_settings,
                                zoo_dir=scale.zoo_dir)
    scratch_backbone = build_backbone(pretrained.config,
                                      child_rng(scale.run_seed, "scratch"))
    scratch = PretrainedModel(arch, pretrained.config, scratch_backbone,
                              pretrained.tokenizer, from_cache=False)
    return AblationResult(
        name=f"pretraining ({arch} on {dataset})",
        variant_a="pretrained", variant_b="from-scratch",
        f1_a=_finetune_f1(pretrained, splits, scale),
        f1_b=_finetune_f1(scratch, splits, scale),
    )


def ablate_dirty(arch: str = "roberta", dataset: str = "walmart-amazon",
                 scale: ExperimentScale | None = None) -> AblationResult:
    """Clean vs dirty variant of the same dataset."""
    scale = scale or ExperimentScale.bench()
    pretrained = get_pretrained(arch, seed=0, settings=scale.zoo_settings,
                                zoo_dir=scale.zoo_dir)
    clean = _splits(dataset, scale, variant="clean")
    dirty = _splits(dataset, scale, variant="dirty")
    return AblationResult(
        name=f"dirty transform ({arch} on {dataset})",
        variant_a="clean", variant_b="dirty",
        f1_a=_finetune_f1(pretrained, clean, scale),
        f1_b=_finetune_f1(pretrained, dirty, scale),
    )


def ablate_balanced_loss(arch: str = "roberta", dataset: str = "dblp-acm",
                         scale: ExperimentScale | None = None
                         ) -> AblationResult:
    """Class-weighted vs plain cross-entropy during fine-tuning."""
    scale = scale or ExperimentScale.bench()
    splits = _splits(dataset, scale)
    pretrained = get_pretrained(arch, seed=0, settings=scale.zoo_settings,
                                zoo_dir=scale.zoo_dir)
    return AblationResult(
        name=f"balanced loss ({arch} on {dataset})",
        variant_a="balanced", variant_b="unweighted",
        f1_a=_finetune_f1(pretrained, splits, scale, balance=True),
        f1_b=_finetune_f1(pretrained, splits, scale, balance=False),
    )


def ablate_serialization(arch: str = "roberta",
                         dataset: str = "walmart-amazon",
                         scale: ExperimentScale | None = None
                         ) -> AblationResult:
    """All-attribute serialization vs title-only."""
    scale = scale or ExperimentScale.bench()
    splits = _splits(dataset, scale)
    pretrained = get_pretrained(arch, seed=0, settings=scale.zoo_settings,
                                zoo_dir=scale.zoo_dir)
    title = splits.train.schema[0]
    return AblationResult(
        name=f"serialization ({arch} on {dataset})",
        variant_a="all-attributes", variant_b="title-only",
        f1_a=_finetune_f1(pretrained, splits, scale),
        f1_b=_finetune_f1(pretrained, splits, scale,
                          text_attributes=[title]),
    )
