"""Regeneration of Figures 10-14: F1 vs fine-tuning epoch per architecture.

Each figure is one dataset; each series is one architecture's mean test-F1
curve over runs, including the epoch-0 zero-shot point.  Output is the
numeric series (the paper's plots, as data) rendered as aligned text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils import format_series, format_table
from .experiments import (ALL_ARCHS, CellResult, ExperimentScale,
                          run_transformer_cell)

__all__ = ["FIGURE_DATASETS", "FigureResult", "figure_curves", "figure"]

# Figure number -> dataset, as in the paper.
FIGURE_DATASETS = {
    10: "abt-buy",
    11: "itunes-amazon",
    12: "walmart-amazon",
    13: "dblp-acm",
    14: "dblp-scholar",
}


@dataclass
class FigureResult:
    figure_number: int
    dataset: str
    curves: dict[str, list[float]] = field(default_factory=dict)
    cells: dict[str, CellResult] = field(default_factory=dict)

    def rendered(self) -> str:
        epochs = max(len(c) for c in self.curves.values())
        rows = []
        for arch, curve in self.curves.items():
            rows.append([arch] + [f"{v:.1f}" for v in curve])
        return format_table(
            ["arch"] + [f"ep{e}" for e in range(epochs)], rows,
            title=(f"Figure {self.figure_number} — F1 vs epoch on "
                   f"{self.dataset} (ep0 = zero-shot)"))


def figure_curves(dataset: str, scale: ExperimentScale | None = None,
                  archs: tuple[str, ...] = ALL_ARCHS,
                  log=None) -> dict[str, CellResult]:
    """Fine-tune every architecture on one dataset; return the cells."""
    scale = scale or ExperimentScale.bench()
    return {arch: run_transformer_cell(arch, dataset, scale, log=log)
            for arch in archs}


def figure(number: int, scale: ExperimentScale | None = None,
           archs: tuple[str, ...] = ALL_ARCHS, log=None) -> FigureResult:
    """Reproduce one of Figures 10-14 by number."""
    if number not in FIGURE_DATASETS:
        raise KeyError(f"no figure {number}; have {sorted(FIGURE_DATASETS)}")
    dataset = FIGURE_DATASETS[number]
    cells = figure_curves(dataset, scale, archs, log=log)
    return FigureResult(
        figure_number=number,
        dataset=dataset,
        curves={arch: cell.mean_curve for arch, cell in cells.items()},
        cells=cells,
    )
