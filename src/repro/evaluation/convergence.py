"""Convergence analysis (§5.4): zero-shot performance, epochs to reach a
band around peak F1, and convergence epoch.

The paper's claims: after one epoch most runs are within 5 % of peak;
convergence by 3-5 epochs; zero-shot (epoch 0) is poor — the pre-trained
model knows language, not the matching decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from .experiments import CellResult

__all__ = ["ConvergenceSummary", "analyze_convergence"]


@dataclass
class ConvergenceSummary:
    arch: str
    dataset: str
    zero_shot_f1: float
    peak_f1: float
    epochs_to_within_5pct: int | None
    convergence_epoch: int | None

    def holds_one_epoch_claim(self) -> bool:
        """Within 5 F1 points of peak after one epoch of fine-tuning."""
        return (self.epochs_to_within_5pct is not None
                and self.epochs_to_within_5pct <= 1)


def analyze_convergence(cell: CellResult,
                        band: float = 5.0,
                        stability_window: int = 2) -> ConvergenceSummary:
    """Summarize a fine-tuning curve.

    ``epochs_to_within_5pct``: first epoch whose F1 is within ``band``
    points of the curve's peak.  ``convergence_epoch``: first epoch from
    which F1 stays within the band for ``stability_window`` consecutive
    epochs.
    """
    curve = cell.mean_curve
    peak = max(curve)
    threshold = peak - band

    epochs_to_band = None
    for epoch, value in enumerate(curve):
        if epoch >= 1 and value >= threshold:
            epochs_to_band = epoch
            break

    convergence = None
    for epoch in range(1, len(curve)):
        window = curve[epoch:epoch + stability_window]
        if len(window) == stability_window and all(
                v >= threshold for v in window):
            convergence = epoch
            break

    return ConvergenceSummary(
        arch=cell.arch,
        dataset=cell.dataset,
        zero_shot_f1=curve[0],
        peak_f1=peak,
        epochs_to_within_5pct=epochs_to_band,
        convergence_epoch=convergence,
    )
