"""Experiment runner: the protocol behind every table and figure.

One place defines how a (architecture, dataset) cell is produced: generate
the benchmark at a scale, split 3:1:1, load the pre-trained checkpoint,
fine-tune with per-epoch test evaluation, average over runs.  Tables and
figures are views over :class:`CellResult` objects.

The paper's full protocol (Table 3 sizes, 15 epochs, 5 runs) is CPU-hours
in pure numpy; ``ExperimentScale`` makes the reduction explicit and
recordable in EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines import DeepMatcher, DeepMatcherConfig, MagellanMatcher
from ..data import load_benchmark, split_dataset
from ..matching import FineTuneConfig, fine_tune
from ..pretraining import ZooSettings, get_pretrained
from ..utils import child_rng, spawn_seeds

__all__ = ["ExperimentScale", "CellResult", "BaselineResult",
           "run_transformer_cell", "run_baseline_cell", "ALL_ARCHS",
           "ALL_DATASETS"]

ALL_ARCHS = ("bert", "xlnet", "roberta", "distilbert")
ALL_DATASETS = ("abt-buy", "itunes-amazon", "walmart-amazon", "dblp-acm",
                "dblp-scholar")


@dataclass
class ExperimentScale:
    """How much of the paper's protocol to run.

    ``paper()`` documents the full protocol; ``bench()`` is the default
    reduced-but-faithful scale used by the benchmark harness; ``smoke()``
    is for tests.
    """

    dataset_scale: float = 0.12
    epochs: int = 6
    runs: int = 2
    batch_size: int = 16
    learning_rate: float = 5e-4
    max_length_cap: int = 64
    data_seed: int = 7
    run_seed: int = 11
    zoo_settings: ZooSettings | None = None
    zoo_dir: str | None = None
    # Completed (arch, dataset) cells are cached here so Table 5, Table 6
    # and Figures 10-14 share fine-tuning runs instead of recomputing.
    cache_dir: str | None = None

    def cell_key(self, arch: str, dataset: str) -> str:
        payload = {k: v for k, v in self.__dict__.items()
                   if k not in ("cache_dir", "zoo_dir")}
        payload["zoo_settings"] = (self.zoo_settings.__dict__
                                   if self.zoo_settings else None)
        payload["arch"] = arch
        payload["dataset"] = dataset
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale(dataset_scale=1.0, epochs=15, runs=5)

    @staticmethod
    def bench() -> "ExperimentScale":
        """The default reduced protocol used by the benchmark harness.

        Overridable via environment variables (REPRO_BENCH_SCALE,
        REPRO_BENCH_EPOCHS, REPRO_BENCH_RUNS) so a user with CPU-hours
        to spare can approach the paper protocol without editing code.
        """
        return ExperimentScale(
            dataset_scale=float(os.environ.get("REPRO_BENCH_SCALE", 0.1)),
            epochs=int(os.environ.get("REPRO_BENCH_EPOCHS", 5)),
            runs=int(os.environ.get("REPRO_BENCH_RUNS", 1)),
            cache_dir=os.environ.get("REPRO_BENCH_CACHE",
                                     ".bench_cache"))

    @staticmethod
    def smoke() -> "ExperimentScale":
        return ExperimentScale(dataset_scale=0.04, epochs=2, runs=1)


@dataclass
class CellResult:
    """Averaged fine-tuning outcome of one (arch, dataset) cell."""

    arch: str
    dataset: str
    f1_curves: list[list[float]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def mean_curve(self) -> list[float]:
        """Per-epoch F1 averaged over runs (index 0 = zero-shot)."""
        lengths = {len(c) for c in self.f1_curves}
        if len(lengths) != 1:
            raise ValueError("runs have inconsistent epoch counts")
        return [float(np.mean([c[i] for c in self.f1_curves]))
                for i in range(lengths.pop())]

    @property
    def best_f1(self) -> float:
        return max(self.mean_curve)

    @property
    def final_f1(self) -> float:
        return self.mean_curve[-1]

    @property
    def mean_epoch_seconds(self) -> float:
        return float(np.mean(self.epoch_seconds))


@dataclass
class BaselineResult:
    """Outcome of the Magellan and DeepMatcher baselines on a dataset."""

    dataset: str
    magellan_f1: float
    deepmatcher_f1: float
    magellan_learner: str
    deepmatcher_variant: str
    deepmatcher_epoch_seconds: float


def _load_splits(dataset: str, scale: ExperimentScale):
    data = load_benchmark(dataset, seed=scale.data_seed,
                          scale=scale.dataset_scale)
    return split_dataset(data, child_rng(scale.data_seed, "split", dataset))


def run_transformer_cell(arch: str, dataset: str,
                         scale: ExperimentScale | None = None,
                         log=None) -> CellResult:
    """Fine-tune ``arch`` on ``dataset`` for ``runs`` seeds; collect curves.

    Results are cached under ``scale.cache_dir`` (if set) keyed by every
    protocol parameter, so tables and figures sharing a cell reuse it.
    """
    scale = scale or ExperimentScale.bench()
    cache_path = None
    if scale.cache_dir:
        cache_path = (Path(scale.cache_dir)
                      / f"cell-{arch}-{dataset}-"
                        f"{scale.cell_key(arch, dataset)}.json")
        if cache_path.exists():
            payload = json.loads(cache_path.read_text())
            return CellResult(arch=arch, dataset=dataset,
                              f1_curves=payload["f1_curves"],
                              epoch_seconds=payload["epoch_seconds"])
    splits = _load_splits(dataset, scale)
    pretrained = get_pretrained(arch, seed=0, settings=scale.zoo_settings,
                                zoo_dir=scale.zoo_dir)
    config = FineTuneConfig(
        epochs=scale.epochs, batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        max_length_cap=scale.max_length_cap)
    result = CellResult(arch=arch, dataset=dataset)
    for run_seed in spawn_seeds(scale.run_seed, scale.runs):
        run = fine_tune(pretrained, splits.train, splits.test,
                        config=config, seed=run_seed, log=log)
        result.f1_curves.append([f * 100.0 for f in run.f1_curve()])
        result.epoch_seconds.extend(run.epoch_seconds())
    if cache_path is not None:
        from ..utils import atomic_write_text
        atomic_write_text(cache_path, json.dumps({
            "f1_curves": result.f1_curves,
            "epoch_seconds": result.epoch_seconds,
        }))
    return result


def run_baseline_cell(dataset: str,
                      scale: ExperimentScale | None = None
                      ) -> BaselineResult:
    """Run Magellan and DeepMatcher on a dataset at the given scale."""
    scale = scale or ExperimentScale.bench()
    splits = _load_splits(dataset, scale)
    magellan = MagellanMatcher(seed=scale.run_seed).run(
        splits.train, splits.validation, splits.test)
    config = DeepMatcherConfig(epochs=max(scale.epochs, 8))
    deepmatcher = DeepMatcher(config, seed=scale.run_seed).run(
        splits.train, splits.validation, splits.test)
    return BaselineResult(
        dataset=dataset,
        magellan_f1=magellan.test_metrics.f1 * 100.0,
        deepmatcher_f1=deepmatcher.test_metrics.f1 * 100.0,
        magellan_learner=magellan.chosen_learner,
        deepmatcher_variant=deepmatcher.chosen_variant,
        deepmatcher_epoch_seconds=float(np.mean(
            list(deepmatcher.epoch_seconds.values()))),
    )
