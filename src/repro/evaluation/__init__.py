"""Benchmark harness: regenerate every table and figure of the paper."""

from .ablations import (AblationResult, ablate_balanced_loss, ablate_dirty,
                        ablate_pretraining, ablate_serialization)
from .convergence import ConvergenceSummary, analyze_convergence
from .experiments import (ALL_ARCHS, ALL_DATASETS, BaselineResult,
                          CellResult, ExperimentScale, run_baseline_cell,
                          run_transformer_cell)
from .figures import FIGURE_DATASETS, FigureResult, figure, figure_curves
from .tables import (PAPER_TABLE5, PAPER_TABLE6_SECONDS, Table5Row, table3,
                     table5, table6)

__all__ = [
    "ExperimentScale", "CellResult", "BaselineResult",
    "run_transformer_cell", "run_baseline_cell",
    "ALL_ARCHS", "ALL_DATASETS",
    "table3", "table5", "table6", "Table5Row",
    "PAPER_TABLE5", "PAPER_TABLE6_SECONDS",
    "figure", "figure_curves", "FigureResult", "FIGURE_DATASETS",
    "analyze_convergence", "ConvergenceSummary",
    "AblationResult", "ablate_pretraining", "ablate_dirty",
    "ablate_balanced_loss", "ablate_serialization",
]
