"""Runtime tape sanitizer: an opt-in anomaly mode for the autodiff tape.

Analogue of ``torch.autograd.set_detect_anomaly``: inside a
:class:`detect_anomalies` block every :meth:`Tensor._make` call checks the
freshly produced activation for NaN/Inf, and every :meth:`Tensor.backward`
call wraps the recorded closures so each gradient is checked as it flows —
finiteness of the incoming gradient, finiteness and shape of every parent
gradient after accumulation (a wrong ``_unbroadcast`` shows up here), and
leaf parameters that the walk never reached.  Failures raise
:class:`AnomalyError` naming the originating op, with the active
``repro.obs`` tracing-span path for run-level provenance::

    with trace("fine-tune"), detect_anomalies():
        loss = model(batch)
        loss.backward()
    # -> AnomalyError: op 'log' produced a non-finite activation ...
    #    [span: fine-tune/epoch]

The mode is strictly opt-in because the checks scan every array produced;
use it to localize a NaN, not in production loops (the hot path pays
nothing when disabled — the hooks are plain method reassignment, exactly
like :mod:`repro.obs.profiler`).  While active, produced tensors are
retained for provenance, so wrap one forward/backward step, not a whole
training run.
"""

from __future__ import annotations

import sys

import numpy as np

from ..nn.tensor import Tensor
from ..obs.tracing import default_tracer

__all__ = ["AnomalyError", "detect_anomalies", "is_sanitizing"]


# Normalize dunder caller names to one canonical op kind (mirrors the
# profiler's table; both hook the same _make choke point).
_KIND_ALIASES = {
    "__add__": "add", "__radd__": "add", "__neg__": "neg",
    "__sub__": "sub", "__rsub__": "sub",
    "__mul__": "mul", "__rmul__": "mul",
    "__truediv__": "div", "__rtruediv__": "div",
    "__pow__": "pow", "__matmul__": "matmul",
    "__getitem__": "getitem",
}


class AnomalyError(RuntimeError):
    """A numerical anomaly caught by :class:`detect_anomalies`.

    Attributes
    ----------
    op:
        Canonical name of the Tensor op that produced the bad value
        (``"matmul"``, ``"softmax"``, ...; ``"?"`` for tensors created
        outside the sanitized block).
    phase:
        ``"forward"`` or ``"backward"``.
    span_path:
        Slash-joined path of the tracing spans active when the anomaly
        surfaced ('' if none were open).
    """

    def __init__(self, message: str, op: str = "?", phase: str = "forward"):
        span_path = default_tracer().active_path()
        if span_path:
            message = f"{message} [span: {span_path}]"
        super().__init__(message)
        self.op = op
        self.phase = phase
        self.span_path = span_path


def is_sanitizing() -> bool:
    """Whether a :class:`detect_anomalies` block is currently active."""
    return detect_anomalies._active is not None


def _describe(values: np.ndarray) -> str:
    nan = int(np.isnan(values).sum())
    inf = int(np.isinf(values).sum())
    parts = []
    if nan:
        parts.append(f"{nan} NaN")
    if inf:
        parts.append(f"{inf} Inf")
    return f"{' + '.join(parts)} of {values.size} elements"


class detect_anomalies:
    """Context manager installing the sanitizer hooks.

    Parameters
    ----------
    parameters:
        Optional iterable of leaf Tensors (typically
        ``model.parameters()``).  After every ``backward()`` inside the
        block, any of them still holding ``grad is None`` raises — the
        dead-leaf check for parameters that silently fell off the tape.
        Only pass parameters that the loss actually depends on.
    check_dead_leaves:
        Also flag any ``requires_grad`` leaf *reachable from the output*
        that ends ``backward()`` without a gradient (default True).
    check_promotion:
        Flag ops whose output dtype is wider than every floating parent
        (the silent float32→float64 promotion this repo once shipped).
        One of ``"raise"``, ``"warn"`` (stderr) or ``"ignore"``;
        default ``"raise"``.
    """

    _active: "detect_anomalies | None" = None

    def __init__(self, parameters=None, check_dead_leaves: bool = True,
                 check_promotion: str = "raise"):
        if check_promotion not in ("raise", "warn", "ignore"):
            raise ValueError(
                f"check_promotion must be 'raise', 'warn' or 'ignore', "
                f"got {check_promotion!r}")
        self._parameters = list(parameters) if parameters is not None else []
        self._check_dead_leaves = check_dead_leaves
        self._check_promotion = check_promotion
        # id(tensor) -> (tensor, op kind).  Holds a strong reference so
        # ids are never recycled while the block is active; cleared on
        # exit.  This is what makes anomaly mode a debugging tool, not a
        # production mode.
        self._provenance: dict[int, tuple[Tensor, str]] = {}

    # -- provenance ----------------------------------------------------

    def _op_of(self, tensor: Tensor) -> str:
        entry = self._provenance.get(id(tensor))
        return entry[1] if entry is not None else "?"

    # -- checks --------------------------------------------------------

    def _check_forward(self, kind: str, data: np.ndarray, parents) -> None:
        if data.dtype.kind == "f" and not np.isfinite(data).all():
            lineage = ", ".join(self._op_of(p) for p in parents) or "leaf"
            raise AnomalyError(
                f"op {kind!r} produced a non-finite activation "
                f"({_describe(data)}; parents: {lineage})",
                op=kind, phase="forward")
        if self._check_promotion != "ignore":
            parent_dtypes = {p.data.dtype for p in parents
                             if p.data.dtype.kind == "f"}
            if (parent_dtypes and data.dtype.kind == "f"
                    and all(data.dtype.itemsize > d.itemsize
                            for d in parent_dtypes)):
                message = (f"op {kind!r} silently promoted "
                           f"{'/'.join(sorted(d.name for d in parent_dtypes))}"
                           f" inputs to {data.dtype.name}")
                if self._check_promotion == "raise":
                    raise AnomalyError(message, op=kind, phase="forward")
                print(f"detect_anomalies: {message}", file=sys.stderr)

    def _check_gradient(self, grad: np.ndarray, op: str, what: str) -> None:
        if grad.dtype.kind == "f" and not np.isfinite(grad).all():
            raise AnomalyError(
                f"non-finite gradient {what} op {op!r} "
                f"({_describe(grad)})", op=op, phase="backward")

    def _wrap_closure(self, node: Tensor, fn):
        kind = self._op_of(node)

        def _sanitized(grad, node=node, fn=fn, kind=kind, state=self):
            state._check_gradient(grad, kind, "flowing into")
            try:
                fn(grad)
            except AnomalyError:
                raise
            except Exception as exc:
                raise AnomalyError(
                    f"backward of op {kind!r} failed: {exc}",
                    op=kind, phase="backward") from exc
            for parent in node._parents:
                if not parent.requires_grad or parent.grad is None:
                    continue
                pgrad = parent.grad
                if pgrad.shape != parent.data.shape:
                    raise AnomalyError(
                        f"backward of op {kind!r} accumulated a gradient "
                        f"of shape {pgrad.shape} into a parent of shape "
                        f"{parent.data.shape} (broken _unbroadcast?)",
                        op=kind, phase="backward")
                state._check_gradient(pgrad, kind, "produced by")

        return _sanitized

    def _check_leaves(self, root: Tensor, reachable: list[Tensor]) -> None:
        if self._check_dead_leaves:
            for node in reachable:
                if (node.requires_grad and not node._parents
                        and node.grad is None):
                    raise AnomalyError(
                        f"leaf tensor of shape {node.data.shape} is "
                        f"reachable from the output but received no "
                        f"gradient (a backward closure skipped it)",
                        op="backward", phase="backward")
        for param in self._parameters:
            if param.requires_grad and param.grad is None:
                raise AnomalyError(
                    f"parameter of shape {param.data.shape} never "
                    f"received a gradient — it is not connected to the "
                    f"loss", op="backward", phase="backward")

    # -- hook install / restore ----------------------------------------

    def __enter__(self) -> "detect_anomalies":
        if detect_anomalies._active is not None:
            raise RuntimeError("detect_anomalies() blocks may not be nested")
        detect_anomalies._active = self
        self._orig_make = Tensor._make
        self._orig_backward = Tensor.backward

        orig_make = self._orig_make
        state = self

        def _make_sanitized(tensor_self, data, parents):
            caller = sys._getframe(1).f_code.co_name
            kind = _KIND_ALIASES.get(caller, caller)
            state._check_forward(kind, data, parents)
            out = orig_make(tensor_self, data, parents)
            state._provenance[id(out)] = (out, kind)
            return out

        orig_backward = self._orig_backward

        def _backward_sanitized(tensor_self, grad=None):
            # Wrap every recorded closure over the reachable graph so each
            # gradient hand-off is checked with the op name attached.
            wrapped: list[tuple[Tensor, object]] = []
            reachable: list[Tensor] = []
            stack, seen = [tensor_self], set()
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                reachable.append(node)
                if node._backward is not None:
                    wrapped.append((node, node._backward))
                    node._backward = state._wrap_closure(node, node._backward)
                stack.extend(node._parents)
            try:
                orig_backward(tensor_self, grad)
            finally:
                for node, fn in wrapped:
                    node._backward = fn
            state._check_leaves(tensor_self, reachable)

        Tensor._make = _make_sanitized
        Tensor.backward = _backward_sanitized
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        Tensor._make = self._orig_make
        Tensor.backward = self._orig_backward
        self._provenance.clear()
        detect_anomalies._active = None
        return False
