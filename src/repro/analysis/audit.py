"""Gradcheck coverage auditor: which ops and modules does the suite test?

The autodiff substrate is hand-rolled, so every ``Tensor`` op and every
``Module`` subclass needs gradient/behaviour tests — a wrong backward
formula trains to a quietly worse F1, not a crash.  This auditor closes
the loop statically:

* :func:`tensor_ops` parses ``repro/nn/tensor.py`` and enumerates the
  differentiable ops: methods that record a tape node via ``_make``, plus
  methods derived from them (``sqrt`` → ``__pow__``, ``mean`` → ``sum``,
  ...), with dunders folded to canonical names (``__matmul__`` →
  ``matmul``).
* :func:`module_classes` walks the source tree and resolves (transitive,
  by class name) subclasses of ``repro.nn.Module``.
* :func:`audit_coverage` cross-references both lists against the test
  suite.  Evidence for an op: an attribute call ``.op(...)``, a string
  literal ``"op"`` (parametrized tests name ops as strings), or — for
  operator-backed ops — use of the operator itself in a test file that
  touches ``Tensor``.  Evidence for a module: its class name appearing
  as a word in any test file.

``repro audit`` prints the report; ``--format json`` emits it for
tooling.  The self-test in ``tests/test_analysis.py`` asserts the gap
report is empty, so adding an op without a gradcheck fails tier-1.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CoverageReport", "audit_coverage", "tensor_ops",
           "module_classes"]

# Dunder method -> canonical op name (one entry per op family; the
# reflected variants fold onto the same name).
_DUNDER_CANONICAL = {
    "__add__": "add", "__radd__": "add",
    "__sub__": "sub", "__rsub__": "sub",
    "__neg__": "neg",
    "__mul__": "mul", "__rmul__": "mul",
    "__truediv__": "div", "__rtruediv__": "div",
    "__pow__": "pow",
    "__matmul__": "matmul",
    "__getitem__": "getitem",
}

# Canonical op name -> AST node evidence in tests (using the operator IS
# testing the op, for files that exercise Tensor).
_OPERATOR_EVIDENCE = {
    "add": (ast.Add,), "sub": (ast.Sub,), "mul": (ast.Mult,),
    "div": (ast.Div,), "pow": (ast.Pow,), "matmul": (ast.MatMult,),
    "neg": (ast.USub,), "getitem": (ast.Subscript,),
}

# Tensor methods that are bookkeeping, not differentiable ops.
_NON_OPS = {"backward", "zero_grad", "item", "numpy", "detach", "zeros",
            "ones"}


def _default_tensor_source() -> Path:
    from ..nn import tensor
    return Path(tensor.__file__)


def _default_src_root() -> Path:
    import repro
    return Path(repro.__file__).parent


def tensor_ops(source_path: str | Path | None = None) -> dict[str, str]:
    """Map canonical op name -> defining method name in ``tensor.py``.

    An op is a ``Tensor`` method that calls ``_make`` (records a tape
    node), or one that delegates to another op — detected to a fixpoint
    through attribute calls (``mean`` calls ``self.sum``) and operator
    use (``sqrt`` is ``self ** 0.5``).
    """
    path = Path(source_path) if source_path else _default_tensor_source()
    tree = ast.parse(path.read_text(), filename=str(path))
    tensor_cls = next(
        node for node in tree.body
        if isinstance(node, ast.ClassDef) and node.name == "Tensor")
    methods = {node.name: node for node in tensor_cls.body
               if isinstance(node, ast.FunctionDef)}

    def calls_make(func: ast.FunctionDef) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_make"
            for node in ast.walk(func))

    ops = {name for name, func in methods.items()
           if name not in _NON_OPS and not name.startswith("_wrap")
           and calls_make(func)}
    # Fixpoint for derived ops: delegating to an op, or applying an
    # operator whose dunder is already an op.
    op_dunders = {d for d, c in _DUNDER_CANONICAL.items() if d in ops}
    changed = True
    while changed:
        changed = False
        for name, func in methods.items():
            is_dunder = name.startswith("__") and name.endswith("__")
            if (name in ops or name in _NON_OPS or name == "__init__"
                    or (name.startswith("_") and not is_dunder)):
                continue
            derived = False
            for node in ast.walk(func):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ops):
                    derived = True
                elif isinstance(node, ast.BinOp) and any(
                        isinstance(node.op, _op_node)
                        for d in op_dunders
                        for _op_node in _OPERATOR_EVIDENCE.get(
                            _DUNDER_CANONICAL[d], ())):
                    derived = True
            if derived:
                ops.add(name)
                if name in _DUNDER_CANONICAL:
                    op_dunders.add(name)
                changed = True
    canonical: dict[str, str] = {}
    for name in sorted(ops):
        canonical.setdefault(_DUNDER_CANONICAL.get(name, name), name)
    return canonical


def module_classes(src_root: str | Path | None = None) -> dict[str, str]:
    """Map public ``Module`` subclass name -> defining file.

    Inheritance is resolved transitively by class name across the whole
    source tree (``RobertaModel(BertModel)`` counts).  Private classes
    (``_SoftAlign``) are skipped — they are exercised through their
    public owner.
    """
    root = Path(src_root) if src_root else _default_src_root()
    bases: dict[str, list[str]] = {}
    where: dict[str, str] = {}
    for file in sorted(root.rglob("*.py")):
        tree = ast.parse(file.read_text(), filename=str(file))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases[node.name] = [
                    getattr(b, "id", getattr(b, "attr", None))
                    for b in node.bases]
                where.setdefault(node.name, str(file))
    module_like = {"Module"}
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in module_like and any(
                    b in module_like for b in base_names):
                module_like.add(name)
                changed = True
    return {name: where[name]
            for name in sorted(module_like)
            if name not in ("Module", "ModuleList")
            and not name.startswith("_")}


@dataclass
class CoverageReport:
    """Cross-reference of ops/modules against the test suite."""

    #: canonical op name -> list of "path:line evidence" strings
    ops: dict[str, list[str]] = field(default_factory=dict)
    #: Module subclass name -> list of "path:line evidence" strings
    modules: dict[str, list[str]] = field(default_factory=dict)

    @property
    def uncovered_ops(self) -> list[str]:
        return sorted(op for op, ev in self.ops.items() if not ev)

    @property
    def uncovered_modules(self) -> list[str]:
        return sorted(m for m, ev in self.modules.items() if not ev)

    def is_complete(self) -> bool:
        return not self.uncovered_ops and not self.uncovered_modules

    def as_dict(self) -> dict:
        return {
            "ops": {op: {"covered": bool(ev), "evidence": ev}
                    for op, ev in sorted(self.ops.items())},
            "modules": {m: {"covered": bool(ev), "evidence": ev}
                        for m, ev in sorted(self.modules.items())},
            "uncovered_ops": self.uncovered_ops,
            "uncovered_modules": self.uncovered_modules,
        }

    def as_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)

    def as_text(self) -> str:
        lines = [f"tensor ops: {len(self.ops)} total, "
                 f"{len(self.uncovered_ops)} uncovered"]
        for op, evidence in sorted(self.ops.items()):
            tick = "x" if evidence else " "
            first = f"  ({evidence[0]})" if evidence else ""
            lines.append(f"  [{tick}] {op}{first}")
        lines.append(f"modules: {len(self.modules)} total, "
                     f"{len(self.uncovered_modules)} uncovered")
        for name, evidence in sorted(self.modules.items()):
            tick = "x" if evidence else " "
            first = f"  ({evidence[0]})" if evidence else ""
            lines.append(f"  [{tick}] {name}{first}")
        if self.is_complete():
            lines.append("coverage complete: every op and module has "
                         "test evidence")
        return "\n".join(lines)


def _test_files(tests_root: Path) -> list[Path]:
    return sorted(tests_root.rglob("test_*.py"))


def audit_coverage(src_root: str | Path | None = None,
                   tests_root: str | Path = "tests") -> CoverageReport:
    """Build the :class:`CoverageReport` for the given trees."""
    ops = tensor_ops(
        Path(src_root) / "nn" / "tensor.py" if src_root else None)
    modules = module_classes(src_root)
    tests = Path(tests_root)
    report = CoverageReport(ops={op: [] for op in ops},
                            modules={m: [] for m in modules})
    for file in _test_files(tests):
        source = file.read_text()
        tree = ast.parse(source, filename=str(file))
        touches_tensor = bool(re.search(r"\bTensor\b", source))
        strings = {node.value: node.lineno
                   for node in ast.walk(tree)
                   if isinstance(node, ast.Constant)
                   and isinstance(node.value, str)}
        attr_calls: dict[str, int] = {}
        operator_lines: dict[type, int] = {}
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                attr_calls.setdefault(node.func.attr, node.lineno)
            elif isinstance(node, (ast.BinOp, ast.UnaryOp)):
                operator_lines.setdefault(type(node.op), node.lineno)
            elif isinstance(node, ast.Subscript):
                operator_lines.setdefault(ast.Subscript, node.lineno)
        for op, method in ops.items():
            line = None
            for name in {op, method}:
                if name in attr_calls:
                    line = attr_calls[name]
                elif name in strings:
                    line = strings[name]
            if line is None and touches_tensor:
                for op_node in _OPERATOR_EVIDENCE.get(op, ()):
                    if op_node in operator_lines:
                        line = operator_lines[op_node]
                        break
            if line is not None:
                report.ops[op].append(f"{file}:{line}")
        for name in modules:
            match = re.search(rf"\b{re.escape(name)}\b", source)
            if match:
                line = source.count("\n", 0, match.start()) + 1
                report.modules[name].append(f"{file}:{line}")
    return report
