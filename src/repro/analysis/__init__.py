"""Static analysis and runtime sanitizers for the autodiff substrate.

The paper's headline claims (transformers beating DeepMatcher, convergence
in 1-3 fine-tuning epochs) rest on correct training dynamics, and the
hand-rolled numpy autodiff in :mod:`repro.nn` has sharp edges that a
framework would guard against.  This package is the guard rail
(see DESIGN.md §9):

* :mod:`repro.analysis.lint` — an AST rule engine with repo-specific
  rules: raw numpy calls on ``Tensor.data`` outside ``repro.nn``,
  hard-coded float dtypes instead of ``repro.nn.DTYPE``, late-binding
  ``_backward`` closures, inference paths missing ``no_grad``,
  unregistered parameter tensors, mutable default arguments, ``__all__``
  export drift, and legacy global-RNG use.  Run it with ``repro lint``;
  ``tests/test_analysis.py`` self-lints ``src/`` in tier-1.
* :mod:`repro.analysis.sanitize` — an opt-in anomaly mode (à la
  ``torch.autograd.set_detect_anomaly``) that hooks ``Tensor._make`` and
  ``Tensor.backward`` to catch NaN/Inf activations and gradients,
  gradient shape mismatches and dead leaf parameters, raising with the
  originating op named and the active tracing-span path.
* :mod:`repro.analysis.audit` — a gradcheck coverage auditor that
  statically enumerates every differentiable ``Tensor`` op and every
  ``Module`` subclass and cross-references the test suite; run it with
  ``repro audit``.
* :mod:`repro.analysis.concurrency` — the concurrency suite
  (DESIGN.md §14): static rules RA113–RA117 (lock-order inversion,
  unguarded state writes against ``# guard:`` / ``@guarded_by``
  contracts, condition waits outside predicate loops, blocking calls
  under locks, manual acquire/release), the opt-in Eraser-style
  :class:`RaceDetector`, and the seeded :class:`ScheduleExplorer`
  behind ``repro races``.
"""

from .lint import (LintRule, Violation, available_rules, format_json,
                   format_text, lint_paths, lint_source)
from .sanitize import AnomalyError, detect_anomalies, is_sanitizing
from .audit import CoverageReport, audit_coverage, module_classes, tensor_ops
from .concurrency import (RaceDetector, RaceError, RaceReport,
                          ScheduleExplorer, ScheduleResult, run_races,
                          run_scenario)

__all__ = [
    "LintRule", "Violation", "available_rules", "lint_paths", "lint_source",
    "format_text", "format_json",
    "AnomalyError", "detect_anomalies", "is_sanitizing",
    "CoverageReport", "audit_coverage", "tensor_ops", "module_classes",
    "RaceDetector", "RaceError", "RaceReport",
    "ScheduleExplorer", "ScheduleResult", "run_scenario", "run_races",
]
