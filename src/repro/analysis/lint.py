"""AST linter with repo-specific rules for the numpy autodiff substrate.

The engine is deliberately small: a rule is an object with an ``id``, a
``name``, a fix ``hint`` and a ``check(module)`` generator yielding
:class:`Violation` records.  Rules see a :class:`SourceModule` — the
parsed AST plus enough path context to know which package the file
belongs to (several rules only apply outside ``repro.nn``, or only to
modules that import it).

The rule catalog (DESIGN.md §9 documents each with its rationale):

====== ============================== ==========================================
id     name                           catches
====== ============================== ==========================================
RA101  tensor-data-numpy-call         ``np.*`` called on ``Tensor.data`` outside
                                      ``repro.nn`` (bypasses the tape)
RA102  hard-coded-float-dtype         ``np.float32``/``np.float64``/... literals
                                      instead of the canonical ``repro.nn.DTYPE``
RA103  loop-closure-late-binding      closures in loops capturing the loop
                                      variable without default-arg binding
RA104  inference-missing-no-grad      predict/infer functions that record a tape
RA105  unregistered-parameter-tensor  ``self.x = Tensor(..., requires_grad=True)``
                                      inside a Module (bypasses registration)
RA106  mutable-default-argument       list/dict/set default arguments
RA107  all-export-drift               ``__all__`` out of sync with definitions
RA108  legacy-global-rng              ``np.random.<fn>`` global-state calls
RA109  non-atomic-artifact-write      save/write/dump functions that truncate
                                      the destination in place instead of the
                                      tmp-file + ``os.replace`` pattern
RA110  forward-outside-no-grad        match/eval/bench drivers that call a
                                      model forward directly with the tape on
RA111  blocking-sleep-in-serve        ``time.sleep`` (or timed real waits) in
                                      the serving stack outside the Clock
                                      abstraction — breaks the virtual-clock
                                      test harness
RA112  span-without-context-manager   lexically scoped spans/stages opened in
                                      ``repro.serve``/``repro.matching``
                                      without ``with`` — an exception between
                                      open and close leaks the span
RA113  lock-order-inversion           two code paths of one class acquiring
                                      the same locks in opposite orders
                                      (deadlock cycle in the per-class
                                      acquisition graph)
RA114  unguarded-state-write          writes to ``# guard:``-annotated shared
                                      state outside ``with self.<lock>:`` and
                                      without ``@guarded_by``
RA115  condition-wait-outside-loop    ``cond.wait()`` not wrapped in a
                                      ``while``-predicate loop
RA116  blocking-call-under-lock       sleeps / file I/O / joins / un-timed
                                      queue ops / model forwards executed
                                      while holding a lock
RA117  manual-acquire-release         bare ``.acquire()``/``.release()``
                                      instead of ``with`` (leaks on raise)
RA118  retry-without-backoff          loops that catch a serve error around a
                                      ``submit`` call and retry with no
                                      backoff/sleep — a tight retry loop
                                      hammers an overloaded service
RA119  quant-int8-promotion           arithmetic on a raw int8 quant payload
                                      (``*.q`` / ``*_int8`` / ``q8_*``)
                                      without ``.astype`` — NEP 50 promotes
                                      the mix to float64, silently breaking
                                      the float32-accumulation contract
RA120  cross-product-materialization  ``itertools.product(records_a,
                                      records_b)``-style pairing of record
                                      collections (or the nested-comprehension
                                      equivalent) outside the blocking module
                                      — O(n²) pairs defeat blocking
====== ============================== ==========================================

(RA113–RA117 live in :mod:`repro.analysis.concurrency.rules` and are
registered into the catalog below.)

Usage::

    from repro.analysis import lint_paths, format_text
    violations = lint_paths(["src"])
    print(format_text(violations))

or ``repro lint src/ [--format json]`` from the command line.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["Violation", "LintRule", "SourceModule", "available_rules",
           "lint_paths", "lint_source", "format_text", "format_json"]


@dataclass(frozen=True)
class Violation:
    """One rule hit, pointing at ``path:line``."""

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str
    hint: str | None = None

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class SourceModule:
    """A parsed source file plus the path context rules need."""

    path: str
    source: str
    tree: ast.Module
    #: Dotted package guess ("repro.nn.tensor") derived from the path;
    #: empty for files outside a recognizable package root.
    package: str = ""
    _nn_import: bool | None = field(default=None, repr=False)

    @classmethod
    def parse(cls, path: str, source: str,
              package: str | None = None) -> "SourceModule":
        tree = ast.parse(source, filename=path)
        if package is None:
            package = _guess_package(path)
        return cls(path=path, source=source, tree=tree, package=package)

    def in_package(self, prefix: str) -> bool:
        return (self.package == prefix
                or self.package.startswith(prefix + "."))

    def imports_nn(self) -> bool:
        """Whether this module imports from ``repro.nn`` (any depth)."""
        if self._nn_import is None:
            self._nn_import = any(
                target == "repro.nn" or target.startswith("repro.nn.")
                for target in self._import_targets())
        return self._nn_import

    def _import_targets(self) -> Iterator[str]:
        parts = self.package.split(".") if self.package else []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    yield node.module or ""
                elif parts:
                    # Resolve "from ..nn import x" against our package.
                    base = parts[: len(parts) - node.level]
                    yield ".".join(base + ([node.module]
                                           if node.module else []))


def _guess_package(path: str) -> str:
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        return ""
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_np_attribute(node: ast.AST, *attrs: str) -> bool:
    """Match ``np.<attr>`` / ``numpy.<attr>`` attribute chains."""
    return (isinstance(node, ast.Attribute)
            and node.attr in attrs
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy"))


class LintRule:
    """Base class: subclasses set ``id``/``name``/``hint`` and ``check``."""

    id: str = ""
    name: str = ""
    hint: str = ""

    def check(self, module: SourceModule) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: SourceModule, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule=self.id, name=self.name, path=module.path,
                         line=getattr(node, "lineno", 0),
                         col=getattr(node, "col_offset", 0),
                         message=message, hint=self.hint or None)


class _TensorDataNumpyCall(LintRule):
    """Raw numpy calls on ``.data`` outside ``repro.nn`` bypass the tape:
    gradients silently stop flowing through the result."""

    id = "RA101"
    name = "tensor-data-numpy-call"
    hint = ("use a Tensor op (or .detach()/.numpy() if gradients are "
            "intentionally cut), or move the kernel into repro.nn")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.in_package("repro.nn"):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in ("np", "numpy")):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if any(isinstance(sub, ast.Attribute) and sub.attr == "data"
                       for sub in ast.walk(arg)):
                    yield self.violation(
                        module, node,
                        f"np.{node.func.attr}() applied to a .data payload "
                        f"outside repro.nn — the result leaves the autodiff "
                        f"tape")
                    break


class _HardCodedFloatDtype(LintRule):
    """Float dtypes must route through ``repro.nn.DTYPE`` so the whole
    stack trains in one precision (the canonical definition lives in
    ``repro.nn.init``)."""

    id = "RA102"
    name = "hard-coded-float-dtype"
    hint = "import DTYPE from repro.nn (defined once in repro.nn.init)"

    _DTYPES = ("float16", "float32", "float64", "float128")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.package == "repro.nn.init":
            return
        for node in ast.walk(module.tree):
            if _is_np_attribute(node, *self._DTYPES):
                yield self.violation(
                    module, node,
                    f"hard-coded np.{node.attr} — use repro.nn.DTYPE so "
                    f"precision is set in exactly one place")
            elif (isinstance(node, ast.keyword) and node.arg == "dtype"
                  and isinstance(node.value, ast.Constant)
                  and node.value.value in self._DTYPES):
                yield self.violation(
                    module, node.value,
                    f'hard-coded dtype="{node.value.value}" — use '
                    f"repro.nn.DTYPE so precision is set in exactly one "
                    f"place")


class _LoopClosureLateBinding(LintRule):
    """A closure defined inside a loop that reads the loop variable sees
    its *final* value when called later — the classic tape bug for
    ``_backward`` closures, which run long after the loop finished."""

    id = "RA103"
    name = "loop-closure-late-binding"
    hint = "bind the loop variable as a default argument (def f(x, v=v):)"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        yield from self._scan(module, module.tree, loop_vars=())

    def _scan(self, module: SourceModule, node: ast.AST,
              loop_vars: tuple[frozenset, ...]) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.For):
                names = frozenset(
                    n.id for n in ast.walk(child.target)
                    if isinstance(n, ast.Name))
                yield from self._scan(module, child, loop_vars + (names,))
            elif isinstance(child, ast.While):
                yield from self._scan(module, child, loop_vars)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                if loop_vars:
                    yield from self._check_closure(module, child, loop_vars)
                # Nested defs start a fresh loop context.
                yield from self._scan(module, child, loop_vars=())
            else:
                yield from self._scan(module, child, loop_vars)

    def _check_closure(self, module: SourceModule, func,
                       loop_vars: tuple[frozenset, ...]
                       ) -> Iterator[Violation]:
        active = frozenset().union(*loop_vars)
        args = func.args
        bound = {a.arg for a in
                 args.args + args.kwonlyargs + args.posonlyargs}
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        body = func.body if isinstance(func.body, list) else [func.body]
        free: set[str] = set()
        assigned: set[str] = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name):
                    if isinstance(sub.ctx, ast.Load):
                        free.add(sub.id)
                    else:
                        assigned.add(sub.id)
        hazard = sorted((active & free) - bound - assigned)
        if hazard:
            label = getattr(func, "name", "<lambda>")
            yield self.violation(
                module, func,
                f"closure {label!r} captures loop variable(s) "
                f"{', '.join(hazard)} without default-arg binding — it "
                f"will see the final loop value when called later "
                f"(late binding)")


class _InferenceMissingNoGrad(LintRule):
    """Inference entry points must run under ``no_grad`` or every forward
    pass records a backward tape it never frees."""

    id = "RA104"
    name = "inference-missing-no-grad"
    hint = "wrap the forward passes in `with no_grad():` or decorate " \
           "with @no_grad()"

    _PATTERN = re.compile(r"predict|proba|infer", re.IGNORECASE)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.imports_nn() or module.in_package("repro.nn"):
            return
        candidates: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(module.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._PATTERN.search(node.name)
                    and not node.name.startswith("__")):
                candidates[node.name] = node
        safe = set()
        for name, node in candidates.items():
            if self._uses_no_grad(node):
                safe.add(name)
        # Delegation closure: predict() calling _proba() is fine if
        # _proba() itself runs under no_grad.
        changed = True
        while changed:
            changed = False
            for name, node in candidates.items():
                if name in safe:
                    continue
                if any(callee in safe
                       for callee in self._called_names(node)):
                    safe.add(name)
                    changed = True
        for name, node in candidates.items():
            if name not in safe:
                yield self.violation(
                    module, node,
                    f"{name}() looks like an inference path but never "
                    f"disables the tape — every call records backward "
                    f"closures that are never freed")

    @staticmethod
    def _uses_no_grad(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id == "no_grad":
                return True
            if isinstance(node, ast.Attribute) and node.attr == "no_grad":
                return True
        return False

    @staticmethod
    def _called_names(func: ast.AST) -> set[str]:
        names = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name):
                    names.add(node.func.id)
                elif isinstance(node.func, ast.Attribute):
                    names.add(node.func.attr)
        return names


class _UnregisteredParameterTensor(LintRule):
    """A bare ``Tensor(..., requires_grad=True)`` attribute on a Module
    is invisible to ``parameters()``: the optimizer never updates it and
    ``state_dict()`` never saves it."""

    id = "RA105"
    name = "unregistered-parameter-tensor"
    hint = "use Parameter(...) so the module tree registers the leaf"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        module_classes = self._module_classes(module.tree)
        for cls in module_classes:
            for node in ast.walk(cls):
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                        isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        for t in node.targets):
                    continue
                call = node.value
                if (isinstance(call, ast.Call)
                        and (isinstance(call.func, ast.Name)
                             and call.func.id == "Tensor"
                             or isinstance(call.func, ast.Attribute)
                             and call.func.attr == "Tensor")
                        and any(kw.arg == "requires_grad"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True
                                for kw in call.keywords)):
                    yield self.violation(
                        module, node,
                        f"Module {cls.name!r} stores a bare "
                        f"requires_grad Tensor — it bypasses parameter "
                        f"registration, so optimizers and checkpoints "
                        f"miss it")

    @staticmethod
    def _module_classes(tree: ast.Module) -> list[ast.ClassDef]:
        classes = {n.name: n for n in ast.walk(tree)
                   if isinstance(n, ast.ClassDef)}
        bases = {name: [getattr(b, "id", getattr(b, "attr", None))
                        for b in cls.bases]
                 for name, cls in classes.items()}
        module_like = {"Module", "ModuleList"}
        changed = True
        while changed:
            changed = False
            for name, base_names in bases.items():
                if name in module_like:
                    continue
                if any(b in module_like for b in base_names):
                    module_like.add(name)
                    changed = True
        return [cls for name, cls in classes.items()
                if name in module_like and name not in ("Module",
                                                        "ModuleList")]


class _MutableDefaultArgument(LintRule):
    """Mutable default arguments are shared across calls."""

    id = "RA106"
    name = "mutable-default-argument"
    hint = "default to None and create the value inside the function"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = (list(node.args.defaults)
                        + [d for d in node.args.kw_defaults if d])
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    kind = type(default).__name__.lower()
                    yield self.violation(
                        module, default,
                        f"{node.name}() has a mutable {kind} default — "
                        f"it is shared across every call")
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in ("list", "dict", "set")):
                    yield self.violation(
                        module, default,
                        f"{node.name}() has a mutable "
                        f"{default.func.id}() default — it is shared "
                        f"across every call")


class _AllExportDrift(LintRule):
    """``__all__`` must match the module: stale names break
    ``from m import *`` and the API-surface tests; unlisted public
    definitions silently fall out of the documented API."""

    id = "RA107"
    name = "all-export-drift"
    hint = "add the name to __all__, or prefix it with _ if internal"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        exported: list[str] | None = None
        export_node: ast.AST | None = None
        defined: set[str] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                        if target.id == "__all__":
                            export_node = node
                            try:
                                value = ast.literal_eval(node.value)
                                exported = [str(v) for v in value]
                            except (ValueError, SyntaxError):
                                exported = None
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    defined.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                defined.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    defined.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    defined.add(alias.asname or alias.name)
        if exported is None:
            return
        for name in exported:
            if name not in defined:
                yield self.violation(
                    module, export_node,
                    f"__all__ lists {name!r} but the module never "
                    f"defines or imports it")
        for node in module.tree.body:
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))
                    and not node.name.startswith("_")
                    and node.name not in exported):
                yield self.violation(
                    module, node,
                    f"public {node.name!r} is not listed in __all__")


class _LegacyGlobalRng(LintRule):
    """Everything in this repo is reproducible from explicit
    ``np.random.Generator`` seeds; the legacy global-state API breaks
    that guarantee."""

    id = "RA108"
    name = "legacy-global-rng"
    hint = "thread an explicit np.random.Generator (see repro.utils." \
           "child_rng)"

    _ALLOWED = ("default_rng", "Generator", "SeedSequence", "BitGenerator",
                "PCG64")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            target = node.func.value
            if (isinstance(target, ast.Attribute)
                    and target.attr == "random"
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("np", "numpy")
                    and node.func.attr not in self._ALLOWED):
                yield self.violation(
                    module, node,
                    f"np.random.{node.func.attr}() uses the global RNG "
                    f"state — runs are no longer reproducible from a "
                    f"seed")


class _NonAtomicArtifactWrite(LintRule):
    """Persistence helpers that ``open(path, "w")`` the real destination
    truncate it first: a crash mid-write leaves a corrupt artifact that
    poisons the next run.  Checkpoints, caches and telemetry artifacts
    must be written to a temp file and ``os.replace``d into place (the
    ``repro.utils.atomic_write_*`` helpers, or
    ``repro.nn.save_checkpoint`` for arrays)."""

    id = "RA109"
    name = "non-atomic-artifact-write"
    hint = ("write via repro.utils.atomic_write_text/_bytes (or a tmp "
            "path + os.replace)")

    _NAME = re.compile(r"save|write|dump|export|persist|checkpoint",
                       re.IGNORECASE)
    _MODES = ("w", "wb", "wt")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.package == "repro.utils.atomic":
            return  # the helper itself is the sanctioned tmp-writer
        for node in ast.walk(module.tree):
            if not (isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                    and self._NAME.search(node.name)
                    and not node.name.startswith("__")):
                continue
            if self._is_atomic(node):
                continue
            for write in self._raw_writes(node):
                yield self.violation(
                    module, write,
                    f"{node.name}() writes its destination in place — a "
                    f"crash mid-write leaves a truncated artifact; stage "
                    f"to a tmp file and os.replace() it into place")

    def _is_atomic(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            # os.replace(tmp, path), or Path.replace(path) — single
            # positional arg; two args on a non-os receiver would be
            # str.replace, which is not a rename.
            if (isinstance(callee, ast.Attribute)
                    and callee.attr == "replace"):
                receiver = callee.value
                if (isinstance(receiver, ast.Name)
                        and receiver.id == "os"):
                    return True
                if len(node.args) <= 1 and not node.keywords:
                    return True
            # Delegation to the sanctioned helpers (or any save_* that
            # is itself checked wherever it is defined).
            name = callee.attr if isinstance(callee, ast.Attribute) \
                else getattr(callee, "id", "")
            if name in ("atomic_write_text", "atomic_write_bytes",
                        "save_checkpoint", "save_module"):
                return True
        return False

    def _raw_writes(self, func: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if (isinstance(callee, ast.Name) and callee.id == "open"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value in self._MODES):
                yield node
            elif (isinstance(callee, ast.Attribute)
                  and callee.attr in ("write_text", "write_bytes")):
                yield node


class _ForwardOutsideNoGrad(LintRule):
    """Batch-inference drivers (match loops, eval sweeps, benchmarks)
    that call a model forward directly with the tape enabled record a
    backward closure per op per pair — and they also miss the fused
    no-tape kernels, which only activate under ``no_grad`` /
    ``inference_mode``.  RA104 covers predict/infer-*named* entry
    points; this rule covers the driver loops around them."""

    id = "RA110"
    name = "forward-outside-no-grad"
    hint = ("wrap the forward calls in `with no_grad():` or "
            "`with inference_mode():` (gradients are never needed on "
            "an inference path, and the fused kernels need the tape "
            "off)")

    _PATTERN = re.compile(r"match|eval|bench", re.IGNORECASE)
    #: Receivers that are, by repo convention, callable models.
    _MODEL_NAMES = frozenset(
        {"classifier", "model", "backbone", "encoder", "network"})

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.imports_nn() or module.in_package("repro.nn"):
            return
        candidates: dict[str, ast.FunctionDef] = {}
        for node in ast.walk(module.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and self._PATTERN.search(node.name)
                    and not node.name.startswith("__")):
                candidates[node.name] = node
        safe = {name for name, node in candidates.items()
                if self._disables_tape(node)}
        # Delegation closure, like RA104: match_many() dispatching to a
        # _match_many_fast() that runs under no_grad is fine.
        changed = True
        while changed:
            changed = False
            for name, node in candidates.items():
                if name in safe:
                    continue
                callees = _InferenceMissingNoGrad._called_names(node)
                if any(callee in safe for callee in callees):
                    safe.add(name)
                    changed = True
        for name, node in candidates.items():
            if name in safe:
                continue
            for call in self._forward_calls(node):
                yield self.violation(
                    module, call,
                    f"{name}() drives a model forward with the tape "
                    f"enabled — each pair records backward closures and "
                    f"skips the fused no-tape kernels")

    @staticmethod
    def _disables_tape(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if (isinstance(node, ast.Name)
                    and node.id in ("no_grad", "inference_mode")):
                return True
            if (isinstance(node, ast.Attribute)
                    and node.attr in ("no_grad", "inference_mode")):
                return True
        return False

    def _forward_calls(self, func: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                if (callee.attr == "forward"
                        or callee.attr in self._MODEL_NAMES):
                    yield node
            elif (isinstance(callee, ast.Name)
                  and callee.id in self._MODEL_NAMES):
                yield node


class _BlockingSleepInServe(LintRule):
    """The serving stack promises deterministic, sleep-free tests: all
    timing runs through :class:`repro.serve.clock.Clock`, so a
    :class:`~repro.serve.clock.VirtualClock` can simulate hours of
    queueing in milliseconds.  A direct ``time.sleep`` (or a timed
    ``threading`` wait, which blocks on the real clock no matter what
    clock the service was given) anywhere else in ``repro.serve``
    punches a hole in that guarantee."""

    id = "RA111"
    name = "blocking-sleep-in-serve"
    hint = ("route the wait through the service's Clock (clock.sleep / "
            "ClockCondition.wait_for); repro.serve.clock is the single "
            "sanctioned real-time module")

    #: The one module allowed to touch real time (SystemClock lives
    #: there, as does the real-time settle() bridge).
    _SANCTIONED = "repro.serve.clock"

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.in_package("repro.serve"):
            return
        if module.package == self._SANCTIONED:
            return
        sleep_aliases = {"sleep"} if self._imports_time_sleep(module) \
            else set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if (isinstance(callee, ast.Attribute)
                    and callee.attr == "sleep"
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == "time"):
                yield self.violation(
                    module, node,
                    "time.sleep() in serving code bypasses the Clock "
                    "abstraction — the virtual-clock harness cannot "
                    "simulate it")
            elif (isinstance(callee, ast.Name)
                  and callee.id in sleep_aliases):
                yield self.violation(
                    module, node,
                    "sleep() (imported from time) bypasses the Clock "
                    "abstraction — the virtual-clock harness cannot "
                    "simulate it")
            elif (isinstance(callee, ast.Attribute)
                  and callee.attr in ("wait", "wait_for", "join",
                                      "acquire")
                  and self._has_real_timeout(node)):
                yield self.violation(
                    module, node,
                    f".{callee.attr}(timeout=...) blocks on the real "
                    f"clock regardless of the service's Clock — use "
                    f"ClockCondition.wait_for so the timeout is "
                    f"clock-interpreted")

    @staticmethod
    def _imports_time_sleep(module: SourceModule) -> bool:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "time"
                    and any(alias.name == "sleep"
                            for alias in node.names)):
                return True
        return False

    @staticmethod
    def _has_real_timeout(node: ast.Call) -> bool:
        # ClockCondition.wait_for(pred, timeout=x) is the sanctioned
        # form; flag only waits on plain threading objects.  Heuristic:
        # a receiver whose name mentions the clock/cond wrapper is
        # allowed, anything else with a non-None timeout is not.
        receiver = node.func.value
        receiver_name = ""
        if isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        if "cond" in receiver_name.lower() \
                or "clock" in receiver_name.lower():
            return False
        for keyword in node.keywords:
            if (keyword.arg == "timeout"
                    and not (isinstance(keyword.value, ast.Constant)
                             and keyword.value.value is None)):
                return True
        return False


class _SpanWithoutContextManager(LintRule):
    """Lexically scoped tracing blocks (``tracer.span`` /
    ``stages.stage`` / ``tracer.start``) time the enclosed code; called
    bare, the span never closes when the block raises, and its
    duration silently absorbs everything until someone remembers to
    end it.  The cross-thread lifecycle API
    (``begin_request``/``child``/``end``/``finish``) is deliberately
    exempt — a request span *cannot* be lexically scoped because it
    crosses threads (see ``repro.obs.context``)."""

    id = "RA112"
    name = "span-without-context-manager"
    hint = ("open the span with `with tracer.span(...):` / "
            "`with stages.stage(...):` (or scope.enter_context(...)); "
            "use the begin_request/finish lifecycle API for spans that "
            "cross threads")

    _PACKAGES = ("repro.serve", "repro.matching")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not any(module.in_package(p) for p in self._PACKAGES):
            return
        scoped = self._scoped_calls(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if id(node) in scoped:
                continue
            attr = node.func.attr
            receiver = self._receiver_name(node.func.value)
            if attr in ("span", "stage"):
                yield self.violation(
                    module, node,
                    f"{receiver or '<expr>'}.{attr}(...) opened without "
                    f"`with` — the span never closes if the block "
                    f"raises; only the begin_request/finish lifecycle "
                    f"API may be called bare")
            elif attr == "start" and "trace" in receiver.lower():
                yield self.violation(
                    module, node,
                    f"{receiver}.start(...) opened without `with` — "
                    f"wrap the traced block in a context manager so the "
                    f"span closes on every exit path")

    @staticmethod
    def _receiver_name(node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    @staticmethod
    def _scoped_calls(tree: ast.Module) -> set[int]:
        """ids of Call nodes used as with-items or enter_context args."""
        scoped: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        scoped.add(id(item.context_expr))
            elif isinstance(node, ast.Call):
                callee = node.func
                name = callee.attr if isinstance(callee, ast.Attribute) \
                    else getattr(callee, "id", "")
                if name == "enter_context":
                    for arg in node.args:
                        if isinstance(arg, ast.Call):
                            scoped.add(id(arg))
        return scoped


class _RetryWithoutBackoff(LintRule):
    """A loop that catches a serve-stack error around a ``submit`` call
    and goes straight back around is a tight retry loop: under
    :class:`~repro.serve.service.ServiceOverloaded` it hammers exactly
    the service that just asked it to back off, and under a
    :class:`~repro.serve.clock.VirtualClock` it spins forever because
    no timer ever advances.  Every retry must wait — via
    :class:`~repro.serve.retry.RetryPolicy` backoff, a clock sleep, or
    a timer — before resubmitting."""

    id = "RA118"
    name = "retry-without-backoff"
    hint = ("back off between attempts: use repro.serve.RetryPolicy "
            "(or ResilientClient), or at minimum clock.sleep(...) / "
            "clock.call_later(...) with the delay from "
            "ServiceOverloaded.retry_after")

    _ERROR_NAMES = frozenset({
        "ServeError", "ServiceOverloaded", "ServiceClosed",
        "RequestTimeout", "RequestCancelled",
    })
    _SUBMIT_NAMES = frozenset({"submit", "submit_many"})
    _BACKOFF_MARKERS = ("sleep", "backoff", "run_for", "advance",
                        "call_later", "call_at", "wait", "settle")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            handler = self._serve_handler(node)
            if handler is None:
                continue
            if not self._calls_submit(node):
                continue
            if self._has_backoff(node):
                continue
            yield self.violation(
                module, handler,
                "retry loop catches a serve error and resubmits with "
                "no backoff — a tight loop hammers the overloaded "
                "service (and spins forever under a VirtualClock)")

    def _serve_handler(self, loop: ast.AST) -> ast.ExceptHandler | None:
        """First except handler inside the loop naming a serve error."""
        for node in ast.walk(loop):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue
            types = (node.type.elts
                     if isinstance(node.type, ast.Tuple)
                     else [node.type])
            for type_node in types:
                name = (type_node.attr
                        if isinstance(type_node, ast.Attribute)
                        else getattr(type_node, "id", ""))
                if name in self._ERROR_NAMES:
                    # A handler that immediately re-raises or returns
                    # isn't retrying — the loop exits.
                    if all(isinstance(stmt, (ast.Raise, ast.Return))
                           for stmt in node.body):
                        continue
                    return node
        return None

    def _calls_submit(self, loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                callee = node.func
                name = (callee.attr
                        if isinstance(callee, ast.Attribute)
                        else getattr(callee, "id", ""))
                if name in self._SUBMIT_NAMES:
                    return True
        return False

    def _has_backoff(self, loop: ast.AST) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                callee = node.func
                name = (callee.attr
                        if isinstance(callee, ast.Attribute)
                        else getattr(callee, "id", ""))
                if any(marker in name
                       for marker in self._BACKOFF_MARKERS):
                    return True
        return False


class _QuantInt8Promotion(LintRule):
    """Arithmetic on a raw int8 quantization payload silently leaves the
    float32-accumulation contract: under NEP 50, ``int8_array * 0.5``
    (or any mix with a python float / float64 scalar) promotes to
    float64 — no error, just a 2x-wider accumulator and results that
    drift from the calibrated kernels.  Quantized call sites must cast
    the payload first (``.astype(ACC_DTYPE)``, the cached ``q32`` copy,
    or ``dequantize()``); this rule flags payload-looking operands —
    the ``.q`` attribute of a quantized artifact, or ``q8_*`` /
    ``*_int8`` names — used directly in arithmetic or in a numpy
    contraction call."""

    id = "RA119"
    name = "quant-int8-promotion"
    hint = ("cast the int8 payload before arithmetic: .astype(ACC_DTYPE) "
            "(or the QuantizedLinear.q32 cached copy, or dequantize()) "
            "so accumulation stays float32 instead of NEP-50-promoting "
            "to float64")

    #: int8-payload naming convention; deliberately does NOT match a
    #: bare ``q`` (that is the attention query, a float array).
    _NAME = re.compile(r"(^|_)(q8|int8)(_|$)")
    _CONTRACTIONS = ("matmul", "dot", "einsum", "tensordot", "inner")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if not module.imports_nn():
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp):
                for side in (node.left, node.right):
                    if self._is_payload(side):
                        yield self._flag(module, node, side)
            elif isinstance(node, ast.AugAssign):
                for side in (node.target, node.value):
                    if self._is_payload(side):
                        yield self._flag(module, node, side)
            elif (isinstance(node, ast.Call)
                  and _is_np_attribute(node.func, *self._CONTRACTIONS)):
                for arg in node.args:
                    if self._is_payload(arg):
                        yield self._flag(module, node, arg)

    def _flag(self, module: SourceModule, node: ast.AST,
              payload: ast.AST) -> Violation:
        label = (payload.attr if isinstance(payload, ast.Attribute)
                 else getattr(payload, "id", "<payload>"))
        return self.violation(
            module, node,
            f"arithmetic on raw int8 payload {label!r} — NEP 50 promotes "
            f"an int8 array mixed with float scalars to float64, silently "
            f"widening the accumulator the quantized kernels calibrated "
            f"for float32")

    def _is_payload(self, node: ast.AST) -> bool:
        # Unwrap views that keep the payload dtype: .T and slicing.  An
        # .astype(...) wrapper is a Call, so a cast payload never
        # reaches the checks below — the sanctioned form passes free.
        while True:
            if isinstance(node, ast.Attribute) and node.attr == "T":
                node = node.value
            elif isinstance(node, ast.Subscript):
                node = node.value
            else:
                break
        if isinstance(node, ast.Attribute):
            return node.attr == "q"
        if isinstance(node, ast.Name):
            return bool(self._NAME.search(node.id))
        return False


class _CrossProductMaterialization(LintRule):
    """Pairing two record collections directly is the O(n²) explosion
    the blocking layer exists to prevent: 100k x 100k records is 10
    billion pairs before the first model forward.  This rule flags
    ``itertools.product(records_a, records_b)``-style calls and nested
    comprehensions pairing two record-collection-looking names.  The
    blocking module itself is exempt — generating candidates *is* its
    job (and it does so through inverted indexes, not the cross
    product)."""

    id = "RA120"
    name = "cross-product-materialization"
    hint = ("generate candidates through a repro.data.blocking Blocker "
            "(iter_candidates streams bounded batches) instead of "
            "pairing the collections directly")

    #: Names that look like a record collection.
    _COLLECTION = re.compile(
        r"(^|_)(records?|rows|entities|catalog|collection|tuples|"
        r"listings)(_|$|s$)|^(records?|rows|entities)[ab]?$",
        re.IGNORECASE)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if module.in_package("repro.data.blocking"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_product_call(module, node)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp)):
                yield from self._check_comprehension(module, node)

    def _check_product_call(self, module: SourceModule,
                            node: ast.Call) -> Iterator[Violation]:
        func = node.func
        is_product = ((isinstance(func, ast.Name)
                       and func.id == "product")
                      or (isinstance(func, ast.Attribute)
                          and func.attr == "product"
                          and isinstance(func.value, ast.Name)
                          and func.value.id == "itertools"))
        if not is_product:
            return
        record_args = [arg for arg in node.args
                       if self._is_collection(arg)]
        if len(record_args) >= 2:
            yield self.violation(
                module, node,
                "itertools.product over two record collections "
                "materializes the |A| x |B| cross product — the cost "
                "blocking exists to avoid")

    def _check_comprehension(self, module: SourceModule,
                             node: ast.AST) -> Iterator[Violation]:
        collections = [gen.iter for gen in node.generators
                       if self._is_collection(gen.iter)]
        if len(collections) >= 2:
            yield self.violation(
                module, node,
                "nested comprehension pairing two record collections "
                "materializes the cross product — block first, then "
                "score the candidate stream")

    def _is_collection(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._COLLECTION.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(self._COLLECTION.search(node.attr))
        return False


# Imported at the bottom of the class definitions on purpose: the
# concurrency rules subclass LintRule, so this module must have defined
# it (and SourceModule/Violation) before .concurrency.rules loads.
from .concurrency.rules import CONCURRENCY_RULES  # noqa: E402

_RULES: tuple[LintRule, ...] = (
    _TensorDataNumpyCall(),
    _HardCodedFloatDtype(),
    _LoopClosureLateBinding(),
    _InferenceMissingNoGrad(),
    _UnregisteredParameterTensor(),
    _MutableDefaultArgument(),
    _AllExportDrift(),
    _LegacyGlobalRng(),
    _NonAtomicArtifactWrite(),
    _ForwardOutsideNoGrad(),
    _BlockingSleepInServe(),
    _SpanWithoutContextManager(),
    _RetryWithoutBackoff(),
    _QuantInt8Promotion(),
    _CrossProductMaterialization(),
) + CONCURRENCY_RULES


def available_rules() -> list[LintRule]:
    """The registered rule instances, in catalog order."""
    return list(_RULES)


def lint_source(source: str, path: str = "<string>",
                package: str | None = None,
                rules: list[LintRule] | None = None) -> list[Violation]:
    """Lint one source string (used by the rule unit tests)."""
    module = SourceModule.parse(path, source, package=package)
    found: list[Violation] = []
    for rule in rules if rules is not None else _RULES:
        found.extend(rule.check(module))
    return sorted(found, key=lambda v: (v.path, v.line, v.rule))


def lint_paths(paths: list[str | Path],
               rules: list[LintRule] | None = None) -> list[Violation]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    found: list[Violation] = []
    for file in files:
        found.extend(lint_source(file.read_text(), path=str(file),
                                 rules=rules))
    return sorted(found, key=lambda v: (v.path, v.line, v.rule))


def format_text(violations: list[Violation]) -> str:
    """Human-readable report, one violation per block."""
    if not violations:
        return "clean: no violations"
    lines = []
    for v in violations:
        lines.append(f"{v.location()}: {v.rule} [{v.name}] {v.message}")
        if v.hint:
            lines.append(f"    hint: {v.hint}")
    lines.append(f"{len(violations)} violation"
                 f"{'s' if len(violations) != 1 else ''}")
    return "\n".join(lines)


def format_json(violations: list[Violation]) -> str:
    """Machine-readable report (stable keys, sorted order)."""
    return json.dumps({"violations": [asdict(v) for v in violations],
                       "count": len(violations)}, indent=2)
