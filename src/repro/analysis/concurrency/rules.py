"""Concurrency lint rules RA113–RA117.

These extend the :mod:`repro.analysis.lint` catalog into the threading
domain.  They are pure AST analyses — no imports are executed — built
around three repo conventions:

* lock-ish attributes are *named* like locks (``_lock``, ``_rlock``,
  ``_cond``, ``mutex``; the suffix match is anchored so ``clock`` is
  not a lock);
* shared state declares its guard with a trailing ``# guard: <lock>``
  comment on the ``__init__`` assignment that creates it;
* helper methods that require a caller-held lock carry
  :func:`repro.utils.concurrency.guarded_by`.

The rules (DESIGN.md §14 has the full rationale):

====== ============================ =============================================
RA113  lock-order-inversion         two methods of one class acquire the same
                                    pair of locks in opposite orders (cycle in
                                    the class's lock-acquisition graph, with
                                    acquisitions propagated through same-class
                                    calls)
RA114  unguarded-state-write        a write to an attribute annotated
                                    ``# guard: X`` outside ``with self.X:`` and
                                    without ``@guarded_by("X")``
RA115  condition-wait-outside-loop  ``cond.wait()`` not inside a ``while``
                                    predicate loop (lost/spurious wakeups)
RA116  blocking-call-under-lock     sleeps, file I/O, thread joins, un-timed
                                    queue ops, foreign waits, or model forwards
                                    executed while a lock is held
RA117  manual-acquire-release       bare ``.acquire()``/``.release()`` instead
                                    of ``with`` (leaks the lock on exceptions)
====== ============================ =============================================
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..lint import LintRule, SourceModule, Violation

__all__ = ["CONCURRENCY_RULES"]

#: Anchored lock-name matcher: ``_lock``, ``lock``, ``rlock``,
#: ``mutex``, ``_cond``, ``condition`` — but *not* ``clock`` (no token
#: boundary before "lock") or ``_inner``.
_LOCK_NAME = re.compile(r"(^|_)(r?lock|mutex|cond(ition)?)s?$")

#: Packages whose whole job is wrapping the raw primitives — the
#: passthrough wrappers legitimately call ``acquire``/``wait`` bare.
_WRAPPER_PACKAGES = ("repro.analysis.concurrency", "repro.serve.clock")

_GUARD_COMMENT = re.compile(r"#\s*guard:\s*(?:self\.)?([A-Za-z_]\w*)")


def _is_lock_name(name: str) -> bool:
    return bool(_LOCK_NAME.search(name))


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _receiver_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _with_locks(node: ast.With) -> list[str]:
    """Lock-ish names acquired by a ``with`` statement's items."""
    names = []
    for item in node.items:
        expr = item.context_expr
        attr = _self_attr(expr)
        name = attr if attr is not None else (
            expr.id if isinstance(expr, ast.Name) else "")
        if name and _is_lock_name(name):
            names.append(name)
    return names


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _LockOrderInversion(LintRule):
    """If one code path takes lock A then B while another takes B then
    A, two threads can each hold one and wait forever for the other.
    The rule builds, per class, a directed graph of lock acquisition
    order — ``with self.A:`` nested inside ``with self.B:`` adds the
    edge B→A, and acquisitions are propagated through same-class method
    calls to a fixpoint — then flags any cycle."""

    id = "RA113"
    name = "lock-order-inversion"
    hint = ("pick one global acquisition order for the locks involved "
            "and restructure the later acquisition to happen outside "
            "the first lock's critical section")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule,
                     cls: ast.ClassDef) -> Iterator[Violation]:
        methods = {m.name: m for m in cls.body
                   if isinstance(m, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
        edges: dict[tuple[str, str], ast.AST] = {}
        direct: dict[str, set[str]] = {}
        calls: dict[str, list[tuple[tuple[str, ...], str, ast.AST]]] = {}

        for name, method in methods.items():
            direct[name] = set()
            calls[name] = []
            self._scan(method, (), name, direct, calls, edges)

        # Propagate acquisitions through same-class calls to a fixpoint
        # so `with self.A: self._helper()` sees the locks _helper takes.
        acquired = {name: set(locks) for name, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for name in methods:
                for _held, callee, _node in calls[name]:
                    if callee in acquired \
                            and not acquired[callee] <= acquired[name]:
                        acquired[name] |= acquired[callee]
                        changed = True
        for name in methods:
            for held, callee, node in calls[name]:
                for inner in acquired.get(callee, ()):
                    for outer in held:
                        if inner != outer:
                            edges.setdefault((outer, inner), node)

        if not edges:
            return
        adjacency: dict[str, set[str]] = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
        for (a, b), node in sorted(edges.items()):
            if a < b and self._reachable(adjacency, b, a):
                yield self.violation(
                    module, node,
                    f"class {cls.name} acquires {a!r} before {b!r} here, "
                    f"but another path acquires them in the opposite "
                    f"order — two threads can deadlock")

    def _scan(self, node: ast.AST, held: tuple[str, ...], method: str,
              direct, calls, edges) -> None:
        for child in ast.iter_child_nodes(node):
            inner_held = held
            if isinstance(child, ast.With):
                locks = _with_locks(child)
                for lock in locks:
                    direct[method].add(lock)
                    for outer in held:
                        if outer != lock:
                            edges.setdefault((outer, lock), child)
                    inner_held = inner_held + (lock,)
            elif isinstance(child, ast.Call):
                callee = _self_attr(child.func)
                if callee is not None:
                    calls[method].append((held, callee, child))
            self._scan(child, inner_held, method, direct, calls, edges)

    @staticmethod
    def _reachable(adjacency: dict[str, set[str]],
                   start: str, goal: str) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            for nxt in adjacency.get(stack.pop(), ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False


class _UnguardedStateWrite(LintRule):
    """Shared mutable state annotated ``# guard: <lock>`` on its
    ``__init__`` assignment must only be written under ``with
    self.<lock>:`` — or from a method that declares
    ``@guarded_by("<lock>")`` so its callers take the lock.  A write
    outside both is a data race once threads are involved."""

    id = "RA114"
    name = "unguarded-state-write"
    hint = ("wrap the write in `with self.<guard>:`, or mark the "
            "method @guarded_by(\"<guard>\") if every caller already "
            "holds the lock")

    #: In-place container mutations that count as writes.
    _MUTATORS = frozenset({
        "append", "appendleft", "extend", "insert", "pop", "popleft",
        "popitem", "clear", "update", "setdefault", "remove", "discard",
        "add", "move_to_end", "sort", "reverse", "rotate",
    })

    def check(self, module: SourceModule) -> Iterator[Violation]:
        lines = module.source.splitlines()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, lines)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef,
                     lines: list[str]) -> Iterator[Violation]:
        guards = self._declared_guards(cls, lines)
        if not guards:
            return
        guard_methods: dict[str, str] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            declared = self._guarded_by(method)
            if declared:
                guard_methods[method.name] = declared
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            held = frozenset([guard_methods[method.name]]) \
                if method.name in guard_methods else frozenset()
            yield from self._scan(module, method, held, guards,
                                  guard_methods, method.name)

    @staticmethod
    def _declared_guards(cls: ast.ClassDef,
                         lines: list[str]) -> dict[str, str]:
        """``{attr: guard}`` from ``# guard:`` comments in __init__."""
        guards: dict[str, str] = {}
        for method in cls.body:
            if not (isinstance(method, ast.FunctionDef)
                    and method.name == "__init__"):
                continue
            for node in ast.walk(method):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None or node.lineno > len(lines):
                        continue
                    match = _GUARD_COMMENT.search(lines[node.lineno - 1])
                    if match:
                        guards[attr] = match.group(1)
        return guards

    @staticmethod
    def _guarded_by(method: ast.AST) -> str | None:
        for deco in method.decorator_list:
            if (isinstance(deco, ast.Call)
                    and _receiver_name(deco.func) == "guarded_by"
                    and deco.args
                    and isinstance(deco.args[0], ast.Constant)
                    and isinstance(deco.args[0].value, str)):
                return deco.args[0].value.removeprefix("self.")
        return None

    def _scan(self, module: SourceModule, node: ast.AST,
              held: frozenset[str], guards: dict[str, str],
              guard_methods: dict[str, str],
              where: str) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            inner_held = held
            if isinstance(child, ast.With):
                acquired = {attr for item in child.items
                            if (attr := _self_attr(item.context_expr))}
                inner_held = held | acquired
            else:
                yield from self._check_node(module, child, held, guards,
                                            guard_methods, where)
            yield from self._scan(module, child, inner_held, guards,
                                  guard_methods, where)

    def _check_node(self, module: SourceModule, node: ast.AST,
                    held: frozenset[str], guards: dict[str, str],
                    guard_methods: dict[str, str],
                    where: str) -> Iterator[Violation]:
        for attr in self._written_attrs(node):
            guard = guards.get(attr)
            if guard is not None and guard not in held:
                yield self.violation(
                    module, node,
                    f"{where}() writes self.{attr} (declared "
                    f"`# guard: {guard}`) without holding "
                    f"self.{guard}")
        if isinstance(node, ast.Call):
            callee = _self_attr(node.func)
            guard = guard_methods.get(callee or "")
            if guard is not None and guard not in held:
                yield self.violation(
                    module, node,
                    f"{where}() calls self.{callee}() — declared "
                    f"@guarded_by({guard!r}) — without holding "
                    f"self.{guard}")

    def _written_attrs(self, node: ast.AST) -> Iterator[str]:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Attribute)
                    and callee.attr in self._MUTATORS):
                attr = _self_attr(callee.value)
                if attr is not None:
                    yield attr
            return
        for target in targets:
            yield from self._target_attrs(target)

    def _target_attrs(self, target: ast.AST) -> Iterator[str]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._target_attrs(element)
            return
        if isinstance(target, (ast.Subscript, ast.Starred)):
            yield from self._target_attrs(target.value)
            return
        attr = _self_attr(target)
        if attr is not None:
            yield attr


class _ConditionWaitOutsideLoop(LintRule):
    """``Condition.wait`` can wake spuriously, and a predicate checked
    once with ``if`` is stale by the time the waiter reacquires the
    lock.  Every bare ``.wait()`` on a condition must sit inside a
    ``while not predicate:`` loop; ``wait_for`` embeds the loop and is
    always fine."""

    id = "RA115"
    name = "condition-wait-outside-loop"
    hint = ("re-check the predicate in a loop: `while not pred: "
            "cond.wait()` — or use cond.wait_for(pred), which loops "
            "internally")

    _COND_NAME = re.compile(r"(^|_)cond(ition)?s?$")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if any(module.in_package(p) for p in _WRAPPER_PACKAGES):
            return
        for func in _functions(module.tree):
            yield from self._scan(module, func, in_while=False)

    def _scan(self, module: SourceModule, node: ast.AST,
              in_while: bool) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # nested defs get their own pass
            inner = in_while or isinstance(child, ast.While)
            if (not in_while and isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "wait"
                    and self._COND_NAME.search(
                        _receiver_name(child.func.value))):
                yield self.violation(
                    module, child,
                    f"{_receiver_name(child.func.value)}.wait() outside "
                    f"a while-predicate loop — spurious or stolen "
                    f"wakeups make the condition stale")
            yield from self._scan(module, child, inner)


class _BlockingCallUnderLock(LintRule):
    """Every instruction executed while a lock is held extends every
    other thread's critical-section wait.  Sleeps, file I/O, joins,
    un-timed queue ops, waits on *other* primitives, and model forward
    passes are unbounded — holding a lock across them turns contention
    into starvation (or deadlock, for foreign waits)."""

    id = "RA116"
    name = "blocking-call-under-lock"
    hint = ("move the blocking call outside the critical section: "
            "snapshot the state you need under the lock, release, "
            "then block")

    _MODEL_NAMES = frozenset(
        {"classifier", "model", "backbone", "encoder", "network"})
    _QUEUE_NAME = re.compile(r"queue|(^|_)q$", re.IGNORECASE)
    _THREAD_NAME = re.compile(r"thread|worker|proc", re.IGNORECASE)

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if any(module.in_package(p) for p in _WRAPPER_PACKAGES):
            return
        for func in _functions(module.tree):
            yield from self._scan(module, func, frozenset())

    def _scan(self, module: SourceModule, node: ast.AST,
              held: frozenset[str]) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            inner_held = held
            if isinstance(child, ast.With):
                inner_held = held | set(_with_locks(child))
            elif isinstance(child, ast.Call) and held:
                reason = self._blocking_reason(child, held)
                if reason is not None:
                    yield self.violation(
                        module, child,
                        f"{reason} while holding "
                        f"{', '.join(sorted(held))} — every waiter on "
                        f"the lock stalls behind it")
            yield from self._scan(module, child, inner_held)

    def _blocking_reason(self, call: ast.Call,
                         held: frozenset[str]) -> str | None:
        callee = call.func
        if isinstance(callee, ast.Name):
            if callee.id == "open":
                return "file I/O (open())"
            if callee.id in self._MODEL_NAMES:
                return f"model forward ({callee.id}())"
            return None
        if not isinstance(callee, ast.Attribute):
            return None
        attr = callee.attr
        receiver = _receiver_name(callee.value)
        if attr == "sleep":
            return f"{receiver or 'time'}.sleep()"
        if attr == "forward" or attr in self._MODEL_NAMES:
            return f"model forward (.{attr}())"
        if attr == "join" and self._THREAD_NAME.search(receiver):
            return f"thread join ({receiver}.join())"
        if attr in ("get", "put") \
                and self._QUEUE_NAME.search(receiver) \
                and not self._has_timeout(call):
            return f"un-timed queue op ({receiver}.{attr}())"
        if attr == "result":
            return f"future wait ({receiver}.result())"
        if attr in ("wait", "wait_for") and receiver not in held:
            return (f"wait on {receiver or '<expr>'} (which is not the "
                    f"held lock, so it does not release it)")
        return None

    @staticmethod
    def _has_timeout(call: ast.Call) -> bool:
        if len(call.args) >= 2:
            return True
        return any(kw.arg == "timeout" for kw in call.keywords)


class _ManualAcquireRelease(LintRule):
    """Bare ``lock.acquire()`` / ``lock.release()`` pairs leak the lock
    whenever the code between them raises; ``with`` releases on every
    exit path and makes the critical section's extent obvious."""

    id = "RA117"
    name = "manual-acquire-release"
    hint = ("replace the acquire/release pair with `with lock:` (use "
            "try/finally only when the acquisition spans scopes, and "
            "say why in a comment)")

    def check(self, module: SourceModule) -> Iterator[Violation]:
        if any(module.in_package(p) for p in _WRAPPER_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("acquire", "release")):
                continue
            receiver = _receiver_name(node.func.value)
            if _is_lock_name(receiver):
                yield self.violation(
                    module, node,
                    f"manual {receiver}.{node.func.attr}() — an "
                    f"exception between acquire and release leaks the "
                    f"lock")


CONCURRENCY_RULES: tuple[LintRule, ...] = (
    _LockOrderInversion(),
    _UnguardedStateWrite(),
    _ConditionWaitOutsideLoop(),
    _BlockingCallUnderLock(),
    _ManualAcquireRelease(),
)
