"""Deterministic schedule exploration over instrumented yield points.

Concurrency bugs hide in interleavings the OS scheduler rarely picks.
:class:`ScheduleExplorer` takes the scheduling decision away from the
OS: worker functions run on real threads, but every
:func:`repro.utils.concurrency.checkpoint` call parks the thread on a
gate, and a seeded ``random.Random`` picks which parked thread runs
next — exactly one thread executes at a time.  Because thread code
between checkpoints is deterministic, the *entire run* is a pure
function of the seed: the same seed replays the same interleaving
(and the same bug) every time, and sweeping seeds explores different
interleavings.

Traced locks (:mod:`.lockset`) cooperate: under an active explorer,
contended acquisition becomes try-acquire + yield, so lock hand-offs
are scheduled too, and a state where every live thread is parked on an
unacquirable lock is reported as a deadlock instead of hanging the
test suite.

The explorer is for *checkpoint-instrumented* code — fixtures and unit
scenarios with explicit yield points.  Free-running systems (a full
:class:`~repro.serve.MatchService`) are exercised under the
:class:`~repro.analysis.concurrency.lockset.RaceDetector` alone, whose
lockset verdicts do not depend on the interleaving.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from ...utils import concurrency as hooks

__all__ = ["ScheduleResult", "ScheduleExplorer"]

#: Retries every blocked thread must accumulate, with no global
#: progress in between, before the all-blocked state counts as a
#: deadlock rather than an unlucky pick.
_DEADLOCK_RETRIES = 2


class _Abort(BaseException):
    """Unwinds worker threads when the controller gives up.

    BaseException so scenario code's ``except Exception`` cannot
    swallow it; ``with lock:`` blocks still release on the way out.
    """


@dataclass
class _ThreadState:
    name: str
    gate: threading.Event = field(default_factory=threading.Event)
    parked: bool = False
    done: bool = False
    label: str = ""
    blocked_on: str | None = None
    retries: int = 0


@dataclass
class ScheduleResult:
    """Outcome of one seeded exploration run."""

    seed: int
    #: ``(thread name, checkpoint label)`` per scheduling decision.
    steps: list[tuple[str, str]]
    completed: bool          #: every thread ran to completion
    deadlocked: bool         #: all live threads blocked on locks
    blocked: dict[str, str]  #: thread -> lock label at deadlock
    errors: list[str]        #: exceptions raised inside workers

    def trace(self) -> str:
        """Canonical one-line schedule, for determinism comparisons."""
        return " ".join(f"{name}@{label}" for name, label in self.steps)


class ScheduleExplorer:
    """Seeded cooperative scheduler over checkpoint yield points.

    ::

        explorer = ScheduleExplorer(seed=7)
        result = explorer.run({"a": fn_a, "b": fn_b})

    ``run`` installs itself as the global checkpoint hook for the
    duration (one explorer at a time), so only use it around code whose
    checkpoints you mean to schedule.  ``clock``/``quantum`` optionally
    advance a :class:`~repro.serve.clock.VirtualClock` by ``quantum``
    simulated seconds after every scheduling step, letting timer-driven
    code progress under exploration.
    """

    def __init__(self, seed: int = 0, max_steps: int = 10_000,
                 clock=None, quantum: float = 0.0):
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.seed = seed
        self.max_steps = max_steps
        self.clock = clock
        self.quantum = quantum
        self._cond = threading.Condition()
        self._states: list[_ThreadState] = []
        self._by_ident: dict[int, _ThreadState] = {}
        self._aborted = False

    # -- checkpoint-hook protocol (repro.utils.concurrency) ------------------

    def on_checkpoint(self, label: str) -> None:
        state = self._by_ident.get(threading.get_ident())
        if state is None:
            return  # a thread we are not scheduling
        self._park(state, label, blocked_on=None)

    def on_blocked(self, resource: str) -> None:
        state = self._by_ident.get(threading.get_ident())
        if state is None:
            return
        state.retries += 1
        self._park(state, f"blocked:{resource}", blocked_on=resource)

    # -- the run -------------------------------------------------------------

    def run(self, workers) -> ScheduleResult:
        """Execute ``workers`` (a ``{name: fn}`` mapping or a list of
        zero-argument callables) under seeded scheduling."""
        if isinstance(workers, dict):
            named = sorted(workers.items())
        else:
            named = [(f"t{i}", fn) for i, fn in enumerate(workers)]
        if not named:
            return ScheduleResult(seed=self.seed, steps=[],
                                  completed=True, deadlocked=False,
                                  blocked={}, errors=[])
        self._states = [_ThreadState(name=name) for name, _fn in named]
        self._by_ident = {}
        self._aborted = False
        errors: list[str] = []
        hooks.set_checkpoint_hook(self)
        threads = []
        try:
            for state, (_name, fn) in zip(self._states, named):
                thread = threading.Thread(
                    target=self._runner, args=(state, fn, errors),
                    name=f"sched-{state.name}", daemon=True)
                threads.append(thread)
                thread.start()
            return self._control(errors)
        finally:
            with self._cond:
                self._aborted = True
                for state in self._states:
                    state.gate.set()
            for thread in threads:
                thread.join(timeout=10.0)
            hooks.set_checkpoint_hook(None)
            self._by_ident = {}

    def _runner(self, state: _ThreadState, fn, errors: list[str]) -> None:
        with self._cond:
            self._by_ident[threading.get_ident()] = state
        try:
            self._park(state, "start", blocked_on=None)
            fn()
        except _Abort:
            pass
        except Exception as exc:  # noqa: BLE001 — a worker's failure is
            # data for the result, not a controller crash.
            errors.append(f"{state.name}: {type(exc).__name__}: {exc}")
        finally:
            with self._cond:
                state.done = True
                state.parked = False
                # Completion releases the thread's locks on unwind, so
                # it is global progress: a survivor blocked on one of
                # those locks must get fresh retries, not a stale
                # deadlock verdict.
                for other in self._states:
                    other.retries = 0
                self._cond.notify_all()

    def _park(self, state: _ThreadState, label: str,
              blocked_on: str | None) -> None:
        with self._cond:
            state.label = label
            state.blocked_on = blocked_on
            if blocked_on is None:
                # Reaching a real checkpoint is global progress: reset
                # everyone's starvation counters.
                for other in self._states:
                    other.retries = 0
            state.parked = True
            self._cond.notify_all()
        state.gate.wait()
        state.gate.clear()
        if self._aborted:
            raise _Abort


    def _control(self, errors: list[str]) -> ScheduleResult:
        rng = random.Random(self.seed)
        steps: list[tuple[str, str]] = []
        completed = False
        deadlocked = False
        blocked: dict[str, str] = {}
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: all(st.parked or st.done
                                for st in self._states))
                alive = [st for st in self._states if not st.done]
                if not alive:
                    completed = True
                    break
                if len(steps) >= self.max_steps:
                    break
                if (all(st.blocked_on is not None for st in alive)
                        and all(st.retries >= _DEADLOCK_RETRIES
                                for st in alive)):
                    deadlocked = True
                    blocked = {st.name: st.blocked_on for st in alive}
                    break
                choice = rng.choice(alive)
                steps.append((choice.name, choice.label))
                choice.parked = False
                choice.gate.set()
                self._cond.wait_for(
                    lambda st=choice: st.parked or st.done)
            if self.clock is not None and self.quantum > 0:
                self.clock.advance(self.quantum)
        return ScheduleResult(seed=self.seed, steps=steps,
                              completed=completed, deadlocked=deadlocked,
                              blocked=blocked, errors=list(errors))
