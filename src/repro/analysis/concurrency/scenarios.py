"""Race scenarios behind ``repro races``: one injected bug, three clean.

Each scenario runs real code under the :class:`RaceDetector` and
reports what the lockset/lock-order algorithms found:

* ``fixture`` — the *injected* race: two writers do an unlocked
  read-modify-write on a shared balance with a checkpoint between the
  read and the write, scheduled by a seeded
  :class:`~repro.analysis.concurrency.schedule.ScheduleExplorer`.  The
  detector must report it for **every** seed (the lockset verdict does
  not depend on the interleaving), and the schedule trace for one seed
  is bit-stable across runs.
* ``serve`` — a full :class:`~repro.serve.MatchService` round trip on
  a :class:`~repro.serve.VirtualClock` with producers and workers
  sharing the queue; must come out clean.
* ``perf-cache`` — four threads hammering one
  :class:`~repro.perf.cache.LRUCache`; must come out clean.
* ``obs-registry`` — writer threads racing the labeled-metric
  get-or-create path and a reader snapshotting concurrently; must come
  out clean.

The heavy imports happen inside the scenario functions so ``repro
races --scenario fixture`` does not pay for the serving stack.
"""

from __future__ import annotations

import threading

from ...utils.concurrency import access, checkpoint
from .lockset import RaceDetector
from .schedule import ScheduleExplorer

__all__ = ["SCENARIO_NAMES", "run_scenario", "run_races"]


class _RacyTally:
    """The injected bug: an unlocked read-modify-write on ``balance``.

    The checkpoint between the read and the write is where the seeded
    scheduler interleaves the second writer, making the lost update
    (and the lockset report) reproducible.
    """

    def __init__(self):
        self.balance = 0

    def deposit(self) -> None:
        access(self, "balance", write=False)
        current = self.balance
        checkpoint("between-read-and-write")
        access(self, "balance", write=True)
        self.balance = current + 1


def _deposit_loop(tally: _RacyTally, times: int) -> None:
    for _ in range(times):
        tally.deposit()
        checkpoint("after-deposit")


def _fixture_scenario(seed: int) -> dict:
    deposits_per_thread = 3
    with RaceDetector() as detector:
        tally = _RacyTally()
        explorer = ScheduleExplorer(seed=seed, max_steps=500)
        result = explorer.run({
            "w0": lambda: _deposit_loop(tally, deposits_per_thread),
            "w1": lambda: _deposit_loop(tally, deposits_per_thread),
        })
    expected = 2 * deposits_per_thread
    return {
        "expect_race": True,
        "races": [r.describe() for r in detector.reports],
        "detail": {
            "expected_balance": expected,
            "final_balance": tally.balance,
            "lost_updates": expected - tally.balance,
            "schedule_steps": len(result.steps),
            "schedule_trace": result.trace(),
            "completed": result.completed,
        },
    }


def _drain(service, clock, tickets, rounds: int = 400) -> None:
    """Drive a VirtualClock service until every ticket resolves."""
    for _ in range(rounds):
        clock.settle(lambda: service.settled, timeout=30.0)
        if all(ticket.done() for ticket in tickets):
            return
        deadline = clock.next_deadline()
        if deadline is None:
            clock.advance(0.001)
        else:
            clock.advance(max(deadline - clock.now(), 0.0))


def _serve_scenario(seed: int) -> dict:
    from ...obs import MetricsRegistry
    from ...serve import (CallableBackend, MatchService, ServeConfig,
                          VirtualClock)
    del seed  # the lockset verdict is schedule-independent
    with RaceDetector() as detector:
        clock = VirtualClock()
        registry = MetricsRegistry()
        config = ServeConfig(max_batch_size=4, max_wait_ms=5.0,
                             num_workers=2, trace_sample_rate=0.0)
        service = MatchService(
            CallableBackend(lambda a, b: 0.9 if a == b else 0.1),
            config, clock=clock, registry=registry)
        with service:
            tickets = [service.submit(f"rec-{i % 3}", f"rec-{i % 4}")
                       for i in range(24)]
            _drain(service, clock, tickets)
            outcomes = [ticket.result(timeout=10.0)
                        for ticket in tickets]
    return {
        "expect_race": False,
        "races": [r.describe() for r in detector.reports],
        "detail": {"completed_requests": len(outcomes),
                   "matched": sum(o.matched for o in outcomes)},
    }


def _perf_cache_scenario(seed: int) -> dict:
    from ...perf.cache import LRUCache
    del seed
    with RaceDetector() as detector:
        cache = LRUCache(maxsize=64)

        def hammer(base: int) -> None:
            for i in range(300):
                key = (base * 37 + i) % 96
                if cache.get(key) is None:
                    cache.put(key, key * 2)

        threads = [threading.Thread(target=hammer, args=(i,),
                                    name=f"cache-{i}")
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rate = cache.hit_rate
    return {
        "expect_race": False,
        "races": [r.describe() for r in detector.reports],
        "detail": {"entries": len(cache), "hit_rate": round(rate, 4),
                   "evictions": cache.evictions},
    }


def _obs_registry_scenario(seed: int) -> dict:
    from ...obs import MetricsRegistry
    del seed
    with RaceDetector() as detector:
        registry = MetricsRegistry()

        def write(worker: int) -> None:
            for i in range(200):
                registry.counter("races.ops",
                                 labels={"w": str(worker % 2)}).inc()
                registry.histogram("races.latency").observe(i * 1e-4)

        def read() -> None:
            for _ in range(50):
                registry.snapshot()

        threads = [threading.Thread(target=write, args=(i,),
                                    name=f"reg-w{i}") for i in range(3)]
        threads.append(threading.Thread(target=read, name="reg-reader"))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
    total = sum(s["value"] for name, s in snapshot.items()
                if s["kind"] == "counter")
    return {
        "expect_race": False,
        "races": [r.describe() for r in detector.reports],
        "detail": {"series": len(snapshot), "counted_ops": total},
    }


_SCENARIOS = {
    "fixture": _fixture_scenario,
    "serve": _serve_scenario,
    "perf-cache": _perf_cache_scenario,
    "obs-registry": _obs_registry_scenario,
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_SCENARIOS)


def run_scenario(name: str, seed: int = 7) -> dict:
    """Run one scenario; ``passed`` means the detector's verdict
    matched the scenario's expectation (race found for the fixture,
    clean for the production paths)."""
    try:
        fn = _SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r} "
                         f"(choose from {', '.join(SCENARIO_NAMES)})") \
            from None
    out = fn(seed)
    out["name"] = name
    out["seed"] = seed
    out["passed"] = bool(out["races"]) == out["expect_race"]
    return out


def run_races(seed: int = 7, scenarios=None) -> dict:
    """Run the requested scenarios (default: all); the report's
    ``passed`` is the conjunction."""
    names = list(scenarios) if scenarios else list(SCENARIO_NAMES)
    results = [run_scenario(name, seed=seed) for name in names]
    return {"seed": seed,
            "passed": all(r["passed"] for r in results),
            "scenarios": {r["name"]: r for r in results}}
