"""Runtime race detection: Eraser-style locksets + lock-order watching.

:class:`RaceDetector` is the dynamic half of the concurrency suite
(the static half is :mod:`repro.analysis.concurrency.rules`).  It is an
opt-in context manager mirroring ``sanitize.detect_anomalies``: while
active it installs the :mod:`repro.utils.concurrency` access hook and
lock factory, so

* locks created through ``make_lock`` / ``make_rlock`` /
  ``make_condition`` come back as traced wrappers that report every
  acquire/release, and
* every ``access(owner, attr, write=...)`` call in instrumented code
  reports a shared-state access.

Two algorithms run over that event stream:

**Lockset (Eraser).**  Each shared variable ``v`` walks the classic
state machine *virgin → exclusive → shared → shared-modified*.  Once
``v`` leaves its first-thread exclusive phase, its candidate lockset
``C(v)`` is intersected with the locks the accessing thread holds; an
*empty* ``C(v)`` in the shared-modified state means some write is not
consistently protected by any lock — a data race, reported regardless
of whether the unlucky interleaving actually happened on this run.

**Lock-order watching.**  Acquiring ``B`` while holding ``A`` adds the
edge ``A → B`` to a persistent acquisition graph; the first acquisition
that closes a cycle is reported as a potential deadlock — again without
needing the deadlock to occur.

Reports carry the active obs span path (when tracing is on) so a race
in a served request points back into its trace.  :func:`replay` runs
the same state machines over an explicit event list with no threads at
all — the determinism contract the hypothesis permutation tests pin
down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ...utils import concurrency as hooks

__all__ = ["RaceReport", "RaceError", "RaceDetector", "replay",
           "TracedLock", "TracedRLock", "TracedCondition"]


@dataclass(frozen=True)
class RaceReport:
    """One confirmed finding: a lockset violation or an order cycle."""

    kind: str                    #: "unlocked-shared-write" | "lock-order-cycle"
    subject: str                 #: "Type.attr" or "lockA -> lockB"
    threads: tuple[str, ...]     #: thread names involved (sorted)
    locks: tuple[str, ...]       #: final lockset / cycle locks (sorted)
    span_path: str | None        #: active obs span path, if tracing
    detail: str

    def describe(self) -> str:
        where = f" [span {self.span_path}]" if self.span_path else ""
        return f"{self.kind}: {self.subject} — {self.detail}{where}"


class RaceError(RuntimeError):
    """Raised by ``RaceDetector(raise_on_race=True)`` on exit."""

    def __init__(self, report: RaceReport):
        super().__init__(report.describe())
        self.report = report


@dataclass
class _VarState:
    """Per-variable Eraser state machine."""

    label: str
    owner: int                       # first-accessor thread id
    state: str = "exclusive"         # exclusive | shared | shared-modified
    lockset: frozenset = frozenset()
    threads: set = field(default_factory=set)
    reported: bool = False


class TracedLock:
    """``threading.Lock`` wrapper reporting to a :class:`RaceDetector`.

    Under an active schedule explorer, contended acquisition becomes a
    non-blocking try-acquire loop that yields at each failure, so the
    seeded scheduler (not the OS) decides who wins the lock.
    """

    _reentrant = False

    def __init__(self, detector: "RaceDetector", label: str):
        self._detector = detector
        self._label = label
        self._inner = self._make_inner()

    @staticmethod
    def _make_inner():
        return threading.Lock()

    @property
    def label(self) -> str:
        return self._label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not blocking or (timeout is not None and timeout >= 0):
            got = self._inner.acquire(blocking, timeout) \
                if blocking else self._inner.acquire(False)
            if got:
                self._detector._acquired(self._label, self._reentrant)
            return got
        if not self._inner.acquire(blocking=False):
            if hooks.checkpoint_hook() is None:
                self._inner.acquire()
            else:
                while not self._inner.acquire(blocking=False):
                    if not hooks.blocked(self._label):
                        self._inner.acquire()
                        break
        self._detector._acquired(self._label, self._reentrant)
        return True

    def release(self) -> None:
        self._detector._released(self._label)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class TracedRLock(TracedLock):
    """Reentrant variant: nested acquisitions add no order edges."""

    _reentrant = True

    @staticmethod
    def _make_inner():
        return threading.RLock()


class TracedCondition:
    """``threading.Condition`` wrapper reporting to a detector.

    The inner condition owns a private RLock; the wrapper books the
    lock as released for the duration of a ``wait`` / ``wait_for``
    (the underlying wait drops it while blocked), so lockset
    intersection never credits a sleeping waiter with protection.
    """

    def __init__(self, detector: "RaceDetector", label: str):
        self._detector = detector
        self._label = label
        self._inner = threading.Condition()

    @property
    def label(self) -> str:
        return self._label

    def acquire(self) -> bool:
        if not self._inner.acquire(blocking=False):
            if hooks.checkpoint_hook() is None:
                self._inner.acquire()
            else:
                while not self._inner.acquire(blocking=False):
                    if not hooks.blocked(self._label):
                        self._inner.acquire()
                        break
        self._detector._acquired(self._label, reentrant=True)
        return True

    def release(self) -> None:
        self._detector._released(self._label)
        self._inner.release()

    def __enter__(self) -> "TracedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        self._detector._released(self._label)
        try:
            return self._inner.wait(timeout)
        finally:
            self._detector._acquired(self._label, reentrant=True)

    def wait_for(self, predicate, timeout: float | None = None) -> bool:
        self._detector._released(self._label)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._detector._acquired(self._label, reentrant=True)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


class RaceDetector:
    """Opt-in lockset + lock-order race detector (context manager).

    ::

        with RaceDetector() as detector:
            cache = LRUCache(64)          # its lock is traced
            ... hammer it from threads ...
        assert not detector.reports

    Only one detector may be active at a time (the hooks are global).
    ``raise_on_race=True`` turns the first report into a
    :class:`RaceError` on exit; the default records reports for the
    caller to inspect.  The detector also *serves as the lock factory*
    (:meth:`make_lock` / :meth:`make_rlock` / :meth:`make_condition`)
    and can be used un-entered as a pure state machine — that is what
    :func:`replay` does.
    """

    _active: "RaceDetector | None" = None

    def __init__(self, raise_on_race: bool = False,
                 max_reports: int = 100):
        self.raise_on_race = raise_on_race
        self.max_reports = max_reports
        self.reports: list[RaceReport] = []
        self._lock = threading.Lock()     # internal; deliberately raw
        self._held: dict[int, list[str]] = {}
        self._vars: dict[tuple[int, str], _VarState] = {}
        self._edges: dict[str, set[str]] = {}
        self._edge_seen: set[tuple[str, str]] = set()
        self._labels: dict[str, int] = {}
        self._finished = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "RaceDetector":
        if RaceDetector._active is not None:
            raise RuntimeError("RaceDetector blocks may not be nested")
        RaceDetector._active = self
        hooks.set_access_hook(self._on_access)
        hooks.set_lock_factory(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        hooks.set_access_hook(None)
        hooks.set_lock_factory(None)
        RaceDetector._active = None
        self._finished = True
        if (self.raise_on_race and self.reports
                and exc_type is None):
            raise RaceError(self.reports[0])

    def assert_clean(self) -> None:
        """Raise :class:`RaceError` on the first report, if any."""
        if self.reports:
            raise RaceError(self.reports[0])

    # -- lock factory (repro.utils.concurrency protocol) ---------------------

    def make_lock(self, label: str) -> TracedLock:
        return TracedLock(self, self._unique(label))

    def make_rlock(self, label: str) -> TracedRLock:
        return TracedRLock(self, self._unique(label))

    def make_condition(self, label: str,
                       lock=None) -> TracedCondition:
        # A caller-supplied lock cannot be wrapped coherently (its
        # acquisitions would bypass the wrapper), so the traced
        # condition always owns a private lock.
        return TracedCondition(self, self._unique(label))

    def _unique(self, label: str) -> str:
        with self._lock:
            n = self._labels.get(label, 0)
            self._labels[label] = n + 1
        return label if n == 0 else f"{label}#{n}"

    # -- event intake --------------------------------------------------------

    def _acquired(self, label: str, reentrant: bool,
                  thread: int | None = None) -> None:
        tid = threading.get_ident() if thread is None else thread
        with self._lock:
            stack = self._held.setdefault(tid, [])
            if not (reentrant and label in stack):
                for outer in stack:
                    if outer != label:
                        self._order_edge(outer, label)
            stack.append(label)

    def _released(self, label: str, thread: int | None = None) -> None:
        tid = threading.get_ident() if thread is None else thread
        with self._lock:
            stack = self._held.get(tid, [])
            if label in stack:
                stack.reverse()
                stack.remove(label)
                stack.reverse()

    def _on_access(self, owner, attr: str, write: bool = True,
                   thread: int | None = None) -> None:
        tid = threading.get_ident() if thread is None else thread
        with self._lock:
            if self._finished:
                return
            held = frozenset(self._held.get(tid, ()))
            key = (id(owner), attr)
            state = self._vars.get(key)
            if state is None:
                state = _VarState(
                    label=f"{type(owner).__name__}.{attr}", owner=tid)
                state.threads.add(self._thread_name(tid))
                self._vars[key] = state
                return
            state.threads.add(self._thread_name(tid))
            if state.state == "exclusive":
                if tid == state.owner:
                    return
                state.lockset = held
                state.state = "shared-modified" if write else "shared"
            else:
                state.lockset &= held
                if write:
                    state.state = "shared-modified"
            if state.state == "shared-modified" and not state.lockset \
                    and not state.reported:
                state.reported = True
                self._report(RaceReport(
                    kind="unlocked-shared-write",
                    subject=state.label,
                    threads=tuple(sorted(state.threads)),
                    locks=(),
                    span_path=self._span_path(),
                    detail=(f"written by {len(state.threads)} threads "
                            f"with no lock consistently held "
                            f"(candidate lockset became empty)")))

    # -- internals -----------------------------------------------------------

    def _order_edge(self, outer: str, inner: str) -> None:
        # caller holds self._lock
        if (outer, inner) in self._edge_seen:
            return
        self._edge_seen.add((outer, inner))
        self._edges.setdefault(outer, set()).add(inner)
        cycle = self._find_path(inner, outer)
        if cycle is not None:
            self._report(RaceReport(
                kind="lock-order-cycle",
                subject=f"{outer} -> {inner}",
                threads=(self._thread_name(threading.get_ident()),),
                locks=tuple(sorted(set(cycle) | {outer})),
                span_path=self._span_path(),
                detail=(f"acquiring {inner!r} while holding {outer!r} "
                        f"closes the cycle "
                        f"{' -> '.join([outer, *cycle])} — two threads "
                        f"taking the two orders can deadlock")))

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """Path ``start -> ... -> goal`` in the edge graph, if any."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in sorted(self._edges.get(node, ())):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _report(self, report: RaceReport) -> None:
        if len(self.reports) < self.max_reports:
            self.reports.append(report)

    @staticmethod
    def _thread_name(tid: int) -> str:
        for thread in threading.enumerate():
            if thread.ident == tid:
                return thread.name
        return f"thread-{tid}"

    @staticmethod
    def _span_path() -> str | None:
        try:
            from ...obs.tracing import default_tracer
        except ImportError:  # pragma: no cover — obs always present
            return None
        path = default_tracer().active_path()
        return path or None


def replay(events) -> list[RaceReport]:
    """Run the detector's state machines over an explicit event list.

    ``events`` is an iterable of ``(thread, op, target)`` tuples with
    ``op`` one of ``acquire`` / ``release`` / ``read`` / ``write``;
    ``thread`` is any hashable id and ``target`` a lock or variable
    name.  No real threads or locks are involved — this is the pure
    kernel of the algorithm, used to pin down that the verdict for a
    set of per-thread event sequences is independent of how they
    interleave (the property the hypothesis tests check).
    """
    detector = RaceDetector()
    owners: dict[str, object] = {}

    class _Var:
        __slots__ = ("name",)

        def __init__(self, name):
            self.name = name

    for thread, op, target in events:
        tid = hash(("replay", thread))
        if op == "acquire":
            detector._acquired(target, reentrant=True, thread=tid)
        elif op == "release":
            detector._released(target, thread=tid)
        elif op in ("read", "write"):
            owner = owners.setdefault(target, _Var(target))
            detector._on_access(owner, target, write=(op == "write"),
                                thread=tid)
        else:
            raise ValueError(f"unknown replay op {op!r}")
    return list(detector.reports)
