"""Concurrency analysis: static rules, lockset detection, scheduling.

Three layers over the same conventions (``# guard:`` comments,
:func:`~repro.utils.concurrency.guarded_by`, ``access``/``checkpoint``
hooks, ``make_lock`` factories):

* :mod:`.rules` — lint rules RA113–RA117, registered into the
  :mod:`repro.analysis.lint` catalog;
* :mod:`.lockset` — the opt-in runtime :class:`RaceDetector`
  (Eraser-style locksets + lock-order cycle watching) and its traced
  primitive wrappers;
* :mod:`.schedule` / :mod:`.scenarios` — the seeded
  :class:`ScheduleExplorer` and the ``repro races`` scenario suite
  built on it.
"""

from ...utils.concurrency import access, checkpoint, guarded_by
from .lockset import (RaceDetector, RaceError, RaceReport, TracedCondition,
                      TracedLock, TracedRLock, replay)
from .rules import CONCURRENCY_RULES
from .scenarios import SCENARIO_NAMES, run_races, run_scenario
from .schedule import ScheduleExplorer, ScheduleResult

__all__ = [
    "CONCURRENCY_RULES",
    "RaceDetector", "RaceError", "RaceReport",
    "TracedLock", "TracedRLock", "TracedCondition", "replay",
    "ScheduleExplorer", "ScheduleResult",
    "SCENARIO_NAMES", "run_scenario", "run_races",
    "guarded_by", "access", "checkpoint",
]
