"""Masked language modeling (Devlin et al., 2018).

Standard BERT recipe: select 15 % of non-special positions; of those,
80 % become ``[MASK]``, 10 % a random token, 10 % stay unchanged.  Targets
are the original ids at selected positions and ``IGNORE`` elsewhere.

BERT applies masking once during preprocessing (*static*); RoBERTa
re-masks every time a sequence is seen (*dynamic*).  Both are expressed
here: call :func:`mask_tokens` once per sequence for static behaviour or
per step for dynamic behaviour.
"""

from __future__ import annotations

import numpy as np

from ..tokenizers import Vocab

__all__ = ["IGNORE_INDEX", "mask_tokens", "MaskedBatch"]

IGNORE_INDEX = -100


class MaskedBatch:
    """Inputs and targets of one MLM batch."""

    def __init__(self, input_ids: np.ndarray, targets: np.ndarray):
        self.input_ids = input_ids
        self.targets = targets


def mask_tokens(input_ids: np.ndarray, vocab: Vocab,
                rng: np.random.Generator,
                mask_probability: float = 0.15) -> MaskedBatch:
    """Apply BERT-style masking to a batch of id sequences (B, T)."""
    input_ids = np.asarray(input_ids)
    masked = input_ids.copy()
    targets = np.full_like(input_ids, IGNORE_INDEX)

    special = np.isin(input_ids, list(vocab.special_ids()))
    selectable = ~special
    selected = (rng.random(input_ids.shape) < mask_probability) & selectable
    # Guarantee at least one prediction target per sequence.
    for row in range(input_ids.shape[0]):
        if not selected[row].any() and selectable[row].any():
            candidates = np.flatnonzero(selectable[row])
            selected[row, candidates[rng.integers(len(candidates))]] = True

    targets[selected] = input_ids[selected]

    decision = rng.random(input_ids.shape)
    to_mask = selected & (decision < 0.8)
    to_random = selected & (decision >= 0.8) & (decision < 0.9)
    masked[to_mask] = vocab.mask_id
    if to_random.any():
        masked[to_random] = rng.integers(
            len(vocab.special_ids()), len(vocab), size=int(to_random.sum()))
    # Remaining 10 %: keep the original token (already in place).
    return MaskedBatch(masked, targets)
