"""Synthetic pre-training corpus.

Plays the role of BooksCorpus/Wikipedia: unlabeled text in the same
"language" as the downstream EM datasets (the shared word bank).  The
crucial property is that synonyms appear interchangeably in identical
contexts — MLM training then pulls their representations together, which
is precisely the transferable knowledge that lets a pre-trained
transformer bridge surface-form differences between matching entities.

Documents are short multi-sentence passages about one entity, so the
consecutive-sentence structure needed by BERT's NSP objective exists.
RoBERTa's "10x more data" is reproduced by generating a larger corpus
(see ``repro.pretraining.model_zoo``).
"""

from __future__ import annotations

import numpy as np

from ..data import wordbank

__all__ = ["generate_corpus", "generate_documents",
           "generate_labeled_documents"]

_PRODUCT_TEMPLATES = [
    "the {adj0} {brand} {ptype} features a {adj1} {component}",
    "this {ptype} by {brand} has a {adj0} {component} and {num} {unit}",
    "a {adj0} and {adj1} {ptype} with {num} {unit} in {color}",
    "{brand} announced a {adj0} {ptype} with {adj1} {component}",
    "the {ptype} is {adj0} {adj1} and comes in {color}",
    "buy the {adj0} {brand} {ptype} now available in {color}",
    "its {component} is {adj0} while the {ptype} stays {adj1}",
    "with {num} {unit} this {ptype} is the most {adj0} device",
    "a {adj0} {ptype} needs a {adj1} {component}",
    "the {color} {ptype} from {brand} is {adj0} and {adj1}",
]

_MUSIC_TEMPLATES = [
    "{artist} released the song {song} on the album {album}",
    "the {genre} track {song} by {artist} lasts {num} seconds",
    "{song} is a {genre} song from the album {album}",
    "listen to {artist} and the {genre} hit {song}",
    "the album {album} by {artist} includes the track {song}",
]

_CITATION_TEMPLATES = [
    "{author} published a paper on {topic} at {venue}",
    "the paper about {topic} appeared in {venue} in {year}",
    "{author} and {author2} study {topic} in their {venue} paper",
    "a survey of {topic} was presented at {venue}",
    "recent work on {topic} improves earlier {venue} results",
]


def _pick(rng: np.random.Generator, items: list[str]) -> str:
    return items[rng.integers(len(items))]


def _synonym_form(rng: np.random.Generator, group: list[str]) -> str:
    """Any member of a synonym group, uniformly — this interchangeability
    is what teaches the model the groups."""
    return group[rng.integers(len(group))]


def _product_sentence(rng: np.random.Generator) -> str:
    groups = wordbank.synonym_groups()
    type_groups = groups[:15]
    adj_groups = groups[15:]
    template = _pick(rng, _PRODUCT_TEMPLATES)
    adj_a = adj_groups[rng.integers(len(adj_groups))]
    adj_b = adj_groups[rng.integers(len(adj_groups))]
    return template.format(
        brand=_pick(rng, wordbank.BRANDS),
        ptype=_synonym_form(rng, type_groups[rng.integers(len(type_groups))]),
        adj0=_synonym_form(rng, adj_a),
        adj1=_synonym_form(rng, adj_b),
        component=_pick(rng, wordbank.COMPONENTS),
        color=_pick(rng, wordbank.COLORS),
        num=str(rng.integers(2, 999)),
        unit=_pick(rng, wordbank.UNITS),
    )


def _music_sentence(rng: np.random.Generator) -> str:
    template = _pick(rng, _MUSIC_TEMPLATES)
    return template.format(
        artist=f"{_pick(rng, wordbank.FIRST_NAMES)} "
               f"{_pick(rng, wordbank.LAST_NAMES)}",
        song=" ".join(rng.choice(wordbank.SONG_WORDS, 2, replace=False)),
        album=" ".join(rng.choice(wordbank.SONG_WORDS, 2, replace=False)),
        genre=_pick(rng, wordbank.GENRES),
        num=str(rng.integers(90, 400)),
    )


def _citation_sentence(rng: np.random.Generator) -> str:
    template = _pick(rng, _CITATION_TEMPLATES)
    return template.format(
        author=f"{_pick(rng, wordbank.FIRST_NAMES)} "
               f"{_pick(rng, wordbank.LAST_NAMES)}",
        author2=f"{_pick(rng, wordbank.FIRST_NAMES)} "
                f"{_pick(rng, wordbank.LAST_NAMES)}",
        topic=_pick(rng, wordbank.PAPER_TOPICS),
        venue=_pick(rng, wordbank.VENUES),
        year=str(rng.integers(1998, 2019)),
    )


_DOMAIN_SAMPLERS = (_product_sentence, _music_sentence, _citation_sentence)
_DOMAIN_WEIGHTS = (0.6, 0.2, 0.2)


def _product_document(rng: np.random.Generator, length: int) -> list[str]:
    """Sentences about ONE product: slots fixed, synonyms resampled."""
    groups = wordbank.synonym_groups()
    type_group = groups[:15][rng.integers(15)]
    adj_group_a = groups[15:][rng.integers(len(groups) - 15)]
    adj_group_b = groups[15:][rng.integers(len(groups) - 15)]
    slots = {
        "brand": _pick(rng, wordbank.BRANDS),
        "component": _pick(rng, wordbank.COMPONENTS),
        "color": _pick(rng, wordbank.COLORS),
        "num": str(rng.integers(2, 999)),
        "unit": _pick(rng, wordbank.UNITS),
    }
    sentences = []
    for _ in range(length):
        template = _pick(rng, _PRODUCT_TEMPLATES)
        sentences.append(template.format(
            ptype=_synonym_form(rng, type_group),
            adj0=_synonym_form(rng, adj_group_a),
            adj1=_synonym_form(rng, adj_group_b),
            **slots))
    return sentences


def _music_document(rng: np.random.Generator, length: int) -> list[str]:
    slots = {
        "artist": f"{_pick(rng, wordbank.FIRST_NAMES)} "
                  f"{_pick(rng, wordbank.LAST_NAMES)}",
        "song": " ".join(rng.choice(wordbank.SONG_WORDS, 2, replace=False)),
        "album": " ".join(rng.choice(wordbank.SONG_WORDS, 2, replace=False)),
        "genre": _pick(rng, wordbank.GENRES),
    }
    return [_pick(rng, _MUSIC_TEMPLATES).format(
        num=str(rng.integers(90, 400)), **slots) for _ in range(length)]


def _citation_document(rng: np.random.Generator, length: int) -> list[str]:
    slots = {
        "author": f"{_pick(rng, wordbank.FIRST_NAMES)} "
                  f"{_pick(rng, wordbank.LAST_NAMES)}",
        "author2": f"{_pick(rng, wordbank.FIRST_NAMES)} "
                   f"{_pick(rng, wordbank.LAST_NAMES)}",
        "topic": _pick(rng, wordbank.PAPER_TOPICS),
        "venue": _pick(rng, wordbank.VENUES),
    }
    return [_pick(rng, _CITATION_TEMPLATES).format(
        year=str(rng.integers(1998, 2019)), **slots) for _ in range(length)]


_DOCUMENT_SAMPLERS = (_product_document, _music_document,
                      _citation_document)


_DOMAIN_NAMES = ("products", "music", "citation")


def generate_labeled_documents(rng: np.random.Generator,
                               num_documents: int,
                               sentences_per_document: tuple[int, int]
                               = (3, 7)) -> list[tuple[str, list[str]]]:
    """(domain, document) pairs; a document is about ONE entity.

    Consecutive sentences share most content words (possibly through
    synonyms) — the structure that (a) makes the coherence objective
    non-trivial and (b) lets MLM learn to copy a masked token from the
    other segment, the attention pattern entity matching later exploits.
    """
    documents: list[tuple[str, list[str]]] = []
    for _ in range(num_documents):
        length = int(rng.integers(*sentences_per_document))
        if rng.random() < 0.5:
            choice = rng.choice(len(_DOCUMENT_SAMPLERS), p=_DOMAIN_WEIGHTS)
            sampler = _DOCUMENT_SAMPLERS[choice]
            documents.append((_DOMAIN_NAMES[choice], sampler(rng, length)))
        else:
            choice = rng.choice(len(_LISTING_SAMPLERS), p=_DOMAIN_WEIGHTS)
            sampler = _LISTING_SAMPLERS[choice]
            documents.append((_LISTING_NAMES[choice], sampler(rng, length)))
    return documents


def generate_documents(rng: np.random.Generator,
                       num_documents: int,
                       sentences_per_document: tuple[int, int] = (3, 7)
                       ) -> list[list[str]]:
    """Unlabeled variant of :func:`generate_labeled_documents`."""
    return [doc for _, doc in generate_labeled_documents(
        rng, num_documents, sentences_per_document)]


def generate_corpus(rng: np.random.Generator,
                    num_sentences: int) -> list[str]:
    """A flat list of sentences (for tokenizer training and MLM)."""
    sentences: list[str] = []
    while len(sentences) < num_sentences:
        sampler = _DOMAIN_SAMPLERS[
            rng.choice(len(_DOMAIN_SAMPLERS), p=_DOMAIN_WEIGHTS)]
        sentences.append(sampler(rng))
    return sentences


# ---------------------------------------------------------------------------
# Listing documents: record-style text, the web's semi-structured side.
#
# Real pre-training corpora contain product listings, bibliographies and
# track lists — text that looks like database records, not prose.  These
# documents render ONE entity several times through the same noisy-view
# machinery the benchmark generators use, so the corpus covers the blob
# style the downstream EM task feeds the model (codes, prices, years,
# attribute concatenations).  Unlabeled text, same universe — the synthetic
# analogue of "Amazon pages are in Wikipedia+BooksCorpus-scale crawls".
# ---------------------------------------------------------------------------

from ..data.generators._base import NoiseProfile as _NoiseProfile
from ..data.generators import universe as _universe

_LISTING_PROFILE = _NoiseProfile(
    p_synonym=0.4, p_typo=0.03, p_drop_word=0.08,
    p_missing_attr=0.1, p_code_drift=0.5)

_PRODUCT_SCHEMAS = (
    ["title", "brand", "price"],
    ["name", "description", "price"],
    ["title", "category", "brand", "modelno", "price"],
)
_MUSIC_SCHEMA = ["song_name", "artist_name", "album_name", "genre",
                 "price", "time", "released"]
_CITATION_SCHEMA = ["title", "authors", "venue", "year"]


def _product_listing_document(rng: np.random.Generator,
                              length: int) -> list[str]:
    entity = _universe.sample_product(rng)
    blobs = []
    for _ in range(length):
        schema = _PRODUCT_SCHEMAS[rng.integers(len(_PRODUCT_SCHEMAS))]
        record = _universe.render_product(entity, list(schema),
                                          _LISTING_PROFILE, rng)
        blobs.append(record.text_blob(list(schema)))
    return blobs


def _music_listing_document(rng: np.random.Generator,
                            length: int) -> list[str]:
    entity = _universe.sample_music(rng)
    return [
        _universe.render_music(entity, list(_MUSIC_SCHEMA),
                               _LISTING_PROFILE, rng)
        .text_blob(list(_MUSIC_SCHEMA))
        for _ in range(length)
    ]


def _citation_listing_document(rng: np.random.Generator,
                               length: int) -> list[str]:
    entity = _universe.sample_citation(rng)
    return [
        _universe.render_citation(entity, list(_CITATION_SCHEMA),
                                  _LISTING_PROFILE, rng)
        .text_blob(list(_CITATION_SCHEMA))
        for _ in range(length)
    ]


_LISTING_SAMPLERS = (_product_listing_document, _music_listing_document,
                     _citation_listing_document)
_LISTING_NAMES = ("products-listing", "music-listing", "citation-listing")
