"""Pre-training: corpus, objectives (MLM/NSP/PLM), distillation, zoo."""

from .corpus import generate_corpus, generate_documents
from .distillation import DistillationRecipe, distill
from .mlm import IGNORE_INDEX, MaskedBatch, mask_tokens
from .model_zoo import (PretrainedModel, ZooSettings, clear_zoo,
                        default_zoo_dir, get_pretrained)
from .nsp import SentencePair, build_nsp_examples
from .plm import PermutationBatch, sample_permutation_batch
from .trainer import PretrainRecipe, PretrainResult, pretrain

__all__ = [
    "generate_corpus", "generate_documents",
    "mask_tokens", "MaskedBatch", "IGNORE_INDEX",
    "build_nsp_examples", "SentencePair",
    "sample_permutation_batch", "PermutationBatch",
    "pretrain", "PretrainRecipe", "PretrainResult",
    "distill", "DistillationRecipe",
    "get_pretrained", "PretrainedModel", "ZooSettings",
    "default_zoo_dir", "clear_zoo",
]
