"""Knowledge distillation: training DistilBERT from a BERT teacher.

Implements the triple loss of Sanh et al. (2019):

* **distillation loss** — KL between temperature-softened teacher and
  student MLM distributions (the "dark knowledge" / soft targets);
* **MLM loss** — the usual hard-label masked LM loss;
* **cosine embedding loss** — aligns the direction of student and teacher
  hidden states.

Distillation happens on the *general-purpose* model before any
fine-tuning, exactly as the paper describes (§4.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models import build_backbone, build_pretraining_head
from ..models.config import TransformerConfig
from ..nn import (Adam, LinearSchedule, Module, Tensor, clip_grad_norm,
                  cosine_embedding_loss, cross_entropy, distillation_loss,
                  no_grad)
from ..tokenizers import SubwordTokenizer
from .corpus import generate_labeled_documents
from .mlm import IGNORE_INDEX, mask_tokens
from .nsp import build_nsp_examples
from .trainer import PretrainResult, _encode_pairs

__all__ = ["DistillationRecipe", "distill"]


@dataclass
class DistillationRecipe:
    steps: int = 300
    batch_size: int = 16
    seq_len: int = 48
    learning_rate: float = 3e-4
    warmup_fraction: float = 0.1
    num_sentences: int = 2000
    temperature: float = 2.0
    alpha_distill: float = 0.5
    alpha_mlm: float = 0.35
    alpha_cosine: float = 0.15
    # Same scale-bridging coherence objective as the other recipes; the
    # student trains it directly on its CLS state (it has no pooler).
    coherence_weight: float = 1.0
    grad_clip: float = 1.0


def distill(student_config: TransformerConfig,
            teacher_backbone: Module, teacher_head: Module,
            tokenizer: SubwordTokenizer, recipe: DistillationRecipe,
            rng: np.random.Generator, log=None) -> PretrainResult:
    """Distill a BERT teacher into a DistilBERT student."""
    if student_config.arch != "distilbert":
        raise ValueError("distillation target must be a distilbert config")
    student = build_backbone(student_config, rng)
    student.special_token_ids = tokenizer.vocab.special_ids()
    head = build_pretraining_head(student_config, rng)
    parameters = student.parameters() + head.parameters()
    coherence_head = None
    if recipe.coherence_weight > 0.0:
        from ..nn import Linear
        coherence_head = Linear(student_config.d_model, 2, rng,
                                std=1.0 / np.sqrt(student_config.d_model))
        parameters = parameters + coherence_head.parameters()
    optimizer = Adam(parameters, lr=recipe.learning_rate)
    schedule = LinearSchedule(
        optimizer, recipe.learning_rate, total_steps=recipe.steps,
        warmup_steps=max(int(recipe.steps * recipe.warmup_fraction), 1))

    teacher_backbone.eval()
    teacher_head.eval()

    labeled = generate_labeled_documents(
        rng, max(recipe.num_sentences // 5, 50))
    documents = [doc for _, doc in labeled]
    domains = [domain for domain, _ in labeled]
    examples = build_nsp_examples(documents, rng,
                                  num_examples=recipe.num_sentences,
                                  coherent_fraction=0.5, domains=domains)
    all_ids, all_segments, all_pads, all_next, _ = _encode_pairs(
        tokenizer, examples, recipe.seq_len)

    history: list[float] = []
    n = all_ids.shape[0]
    for step in range(recipe.steps):
        batch_idx = rng.integers(0, n, size=recipe.batch_size)
        ids = all_ids[batch_idx]
        segments = all_segments[batch_idx]
        pads = all_pads[batch_idx]
        masked = mask_tokens(ids, tokenizer.vocab, rng)

        with no_grad():
            teacher_hidden = teacher_backbone(
                masked.input_ids, segment_ids=segments, pad_mask=pads)
            teacher_logits = teacher_head.mlm_logits(teacher_hidden).numpy()
            teacher_states = teacher_hidden.numpy()

        optimizer.zero_grad()
        student_hidden = student(masked.input_ids, pad_mask=pads)
        student_logits = head.mlm_logits(student_hidden)

        # Soft targets only matter at prediction positions.
        predict = masked.targets != IGNORE_INDEX
        if not predict.any():
            continue
        s_sel = student_logits[predict]
        t_sel = teacher_logits[predict]
        loss = (
            recipe.alpha_distill * distillation_loss(
                s_sel, t_sel, temperature=recipe.temperature)
            + recipe.alpha_mlm * cross_entropy(
                student_logits, masked.targets, ignore_index=IGNORE_INDEX)
            + recipe.alpha_cosine * cosine_embedding_loss(
                student_hidden, teacher_states)
        )
        if coherence_head is not None:
            pooled = student.pooled_output(student_hidden, cls_index=0)
            loss = loss + recipe.coherence_weight * cross_entropy(
                coherence_head(pooled), all_next[batch_idx])
        loss.backward()
        clip_grad_norm(parameters, recipe.grad_clip)
        optimizer.step()
        schedule.step()
        history.append(float(loss.data))
        if log is not None and (step + 1) % 50 == 0:
            log(f"distill step {step + 1}/{recipe.steps} "
                f"loss {np.mean(history[-50:]):.3f}")

    student.eval()
    head.eval()
    return PretrainResult(backbone=student, head=head,
                          loss_history=history)
