"""Model zoo: pre-train once, cache, reuse.

Plays the role of the HuggingFace hub in the paper's setup (Table 4): each
architecture's "pre-trained checkpoint" is produced in-repo by running its
pre-training recipe on the synthetic corpus, then cached on disk so
fine-tuning experiments load it instantly.

Recipe differences follow the papers:

=============  ==========================================================
architecture   recipe
=============  ==========================================================
bert           MLM + NSP, static masking
roberta        MLM only, dynamic masking, 3x data, 2x steps, larger batch
xlnet          permutation LM through two-stream attention (slower/step)
distilbert     triple-loss distillation from the cached BERT teacher
=============  ==========================================================
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..models import TransformerConfig, default_config
from ..nn import (CheckpointError, Module, apply_state_dict,
                  load_checkpoint, save_checkpoint)
from ..tokenizers import (ByteLevelBPETokenizer, SubwordTokenizer,
                          UnigramTokenizer, WordPieceTokenizer,
                          train_byte_level_bpe, train_unigram,
                          train_wordpiece)
from ..utils import atomic_write_text, child_rng
from .corpus import generate_corpus
from .distillation import DistillationRecipe, distill
from .trainer import PretrainRecipe, PretrainResult, pretrain

__all__ = ["PretrainedModel", "ZooSettings", "get_pretrained",
           "default_zoo_dir", "clear_zoo"]

_TOKENIZER_CLASSES = {
    "wordpiece": WordPieceTokenizer,
    "bpe": ByteLevelBPETokenizer,
    "unigram": UnigramTokenizer,
}


@dataclass
class ZooSettings:
    """Scale knobs for zoo checkpoints (shared across architectures)."""

    d_model: int = 64
    num_layers: int = 4
    num_heads: int = 4
    max_position: int = 128
    vocab_size: int = 600
    seq_len: int = 48
    base_steps: int = 2500
    base_examples: int = 5000
    batch_size: int = 16
    learning_rate: float = 3e-4
    tokenizer_sentences: int = 1200

    def cache_key(self, arch: str, seed: int) -> str:
        payload = json.dumps({"arch": arch, "seed": seed,
                              **self.__dict__}, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class PretrainedModel:
    """A ready-to-fine-tune checkpoint."""

    arch: str
    config: TransformerConfig
    backbone: Module
    tokenizer: SubwordTokenizer
    from_cache: bool


def default_zoo_dir() -> Path:
    """Checkpoint cache location (REPRO_ZOO_DIR or ~/.cache/repro/zoo)."""
    env = os.environ.get("REPRO_ZOO_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "zoo"


def clear_zoo(zoo_dir: str | Path | None = None) -> int:
    """Delete cached checkpoints; returns the number removed."""
    directory = Path(zoo_dir) if zoo_dir else default_zoo_dir()
    removed = 0
    if directory.exists():
        for path in directory.glob("*.npz"):
            path.unlink()
            removed += 1
        for path in directory.glob("*.tokenizer.json"):
            path.unlink()
    return removed


def _train_tokenizer(arch: str, settings: ZooSettings,
                     seed: int) -> SubwordTokenizer:
    rng = child_rng(seed, "tokenizer-corpus")
    corpus = generate_corpus(rng, settings.tokenizer_sentences)
    if arch in ("bert", "distilbert"):
        # The WordPiece likelihood score over-merges rare symbols on a
        # small corpus; a frequency floor keeps merges on common words.
        return train_wordpiece(
            corpus, vocab_size=settings.vocab_size,
            min_frequency=max(2, settings.tokenizer_sentences // 60))
    if arch == "roberta":
        return train_byte_level_bpe(corpus, vocab_size=settings.vocab_size)
    if arch == "xlnet":
        return train_unigram(corpus, vocab_size=settings.vocab_size)
    raise ValueError(f"unknown architecture: {arch!r}")


def _recipe_for(arch: str, settings: ZooSettings) -> PretrainRecipe:
    recipe = PretrainRecipe(
        steps=settings.base_steps,
        batch_size=settings.batch_size,
        seq_len=settings.seq_len,
        learning_rate=settings.learning_rate,
        num_examples=settings.base_examples,
        num_documents=max(settings.base_examples // 5, 50),
    )
    if arch == "bert":
        recipe.use_nsp = True
    elif arch == "roberta":
        recipe.dynamic_masking = True
        recipe.steps = int(settings.base_steps * 1.2)   # longer training
        recipe.num_examples = settings.base_examples * 3    # more data
        recipe.num_documents = max(recipe.num_examples // 5, 50)
        recipe.batch_size = settings.batch_size * 2     # larger batches
    elif arch == "xlnet":
        recipe.permutation_lm = True
    return recipe


def _config_for(arch: str, settings: ZooSettings,
                vocab_size: int) -> TransformerConfig:
    return default_config(
        arch, vocab_size=vocab_size, d_model=settings.d_model,
        num_layers=settings.num_layers, num_heads=settings.num_heads,
        max_position=settings.max_position)


def get_pretrained(arch: str, seed: int = 0,
                   settings: ZooSettings | None = None,
                   zoo_dir: str | Path | None = None,
                   force_retrain: bool = False,
                   log=None) -> PretrainedModel:
    """Load (or pre-train and cache) the checkpoint for ``arch``.

    DistilBERT transparently pre-trains its BERT teacher first if that is
    not cached yet.
    """
    settings = settings or ZooSettings()
    directory = Path(zoo_dir) if zoo_dir else default_zoo_dir()
    directory.mkdir(parents=True, exist_ok=True)
    key = settings.cache_key(arch, seed)
    weights_path = directory / f"{arch}-{key}.npz"
    tokenizer_path = directory / f"{arch}-{key}.tokenizer.json"

    tokenizer = _load_or_train_tokenizer(arch, settings, seed,
                                         tokenizer_path, force_retrain)
    config = _config_for(arch, settings, vocab_size=len(tokenizer.vocab))

    if weights_path.exists() and not force_retrain:
        from ..models import build_backbone
        backbone = build_backbone(config, child_rng(seed, "init", arch))
        backbone.special_token_ids = tokenizer.vocab.special_ids()
        try:
            state, _ = load_checkpoint(weights_path)
            apply_state_dict(backbone, state, source=str(weights_path))
        except CheckpointError:
            # A corrupt/truncated/incompatible cache entry is not fatal —
            # discard it and regenerate below, exactly like a cache miss.
            weights_path.unlink(missing_ok=True)
        else:
            backbone.eval()
            return PretrainedModel(arch, config, backbone, tokenizer,
                                   from_cache=True)

    result = _run_pretraining(arch, config, tokenizer, settings, seed,
                              directory, log)
    save_checkpoint(weights_path, result.backbone.state_dict(),
                    metadata={"arch": arch, "config": config.to_dict(),
                              "final_loss": result.final_loss})
    return PretrainedModel(arch, config, result.backbone, tokenizer,
                           from_cache=False)


def _load_or_train_tokenizer(arch: str, settings: ZooSettings, seed: int,
                             path: Path,
                             force_retrain: bool) -> SubwordTokenizer:
    if path.exists() and not force_retrain:
        try:
            payload = json.loads(path.read_text())
            return _TOKENIZER_CLASSES[payload["kind"]].from_payload(payload)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Truncated or garbled tokenizer cache: retrain it.
            path.unlink(missing_ok=True)
    tokenizer = _train_tokenizer(arch, settings, seed)
    atomic_write_text(path, json.dumps(tokenizer.to_payload()))
    return tokenizer


def _run_pretraining(arch: str, config: TransformerConfig,
                     tokenizer: SubwordTokenizer, settings: ZooSettings,
                     seed: int, directory: Path, log) -> PretrainResult:
    rng = child_rng(seed, "pretrain", arch)
    if arch == "distilbert":
        teacher = get_pretrained("bert", seed=seed, settings=settings,
                                 zoo_dir=directory, log=log)
        # The distillation loss needs the teacher's MLM head; retrain the
        # head quickly is wasteful, so the teacher run caches it too.
        teacher_head = _teacher_head(teacher, settings, seed, directory, log)
        recipe = DistillationRecipe(
            steps=settings.base_steps,
            batch_size=settings.batch_size,
            seq_len=settings.seq_len,
            learning_rate=settings.learning_rate,
            num_sentences=settings.base_examples,
        )
        return distill(config, teacher.backbone, teacher_head, tokenizer,
                       recipe, rng, log=log)
    recipe = _recipe_for(arch, settings)
    result = pretrain(config, tokenizer, recipe, rng, log=log)
    if arch == "bert":
        head_path = directory / (
            f"bert-head-{settings.cache_key('bert', seed)}.npz")
        save_checkpoint(head_path, result.head.state_dict(),
                        metadata={"arch": "bert-mlm-head"})
    return result


def _teacher_head(teacher: PretrainedModel, settings: ZooSettings,
                  seed: int, directory: Path, log) -> Module:
    from ..models import build_pretraining_head
    head_path = directory / (
        f"bert-head-{settings.cache_key('bert', seed)}.npz")
    head = build_pretraining_head(teacher.config,
                                  child_rng(seed, "init", "bert-head"))
    if head_path.exists():
        try:
            state, _ = load_checkpoint(head_path)
            apply_state_dict(head, state, source=str(head_path))
            head.eval()
            return head
        except CheckpointError:
            head_path.unlink(missing_ok=True)
    # Teacher was cached before head caching existed (or the cached head
    # is corrupt): re-run pretrain to regenerate it.
    recipe = _recipe_for("bert", settings)
    result = pretrain(teacher.config, teacher.tokenizer, recipe,
                      child_rng(seed, "pretrain", "bert"), log=log)
    head = result.head
    save_checkpoint(head_path, head.state_dict(),
                    metadata={"arch": "bert-mlm-head"})
    head.eval()
    return head
