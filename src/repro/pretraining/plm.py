"""Permutation language modeling (XLNet's pre-training objective).

For each sequence a factorization order is sampled; only the *last* K
positions of the order are prediction targets (standard XLNet practice —
early positions have too little context to be useful training signal).
The model's query stream predicts each target token from the tokens
preceding it in the order, never from itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tokenizers import Vocab
from .mlm import IGNORE_INDEX

__all__ = ["PermutationBatch", "sample_permutation_batch"]


@dataclass
class PermutationBatch:
    input_ids: np.ndarray    # (B, T) original tokens (nothing is masked)
    order: np.ndarray        # (T,) shared factorization order
    targets: np.ndarray      # (B, T): token id at target positions else IGNORE


def sample_permutation_batch(input_ids: np.ndarray, vocab: Vocab,
                             rng: np.random.Generator,
                             predict_fraction: float = 1.0 / 6.0
                             ) -> PermutationBatch:
    """Sample one factorization order for a batch and mark targets.

    A single order per batch keeps the attention masks shared across the
    batch (XLNet does the same within each chunk for efficiency).
    """
    input_ids = np.asarray(input_ids)
    _, seq_len = input_ids.shape
    order = rng.permutation(seq_len)
    num_predict = max(int(round(seq_len * predict_fraction)), 1)
    target_positions = order[-num_predict:]

    targets = np.full_like(input_ids, IGNORE_INDEX)
    special = np.isin(input_ids, list(vocab.special_ids()))
    for pos in target_positions:
        keep = ~special[:, pos]
        targets[keep, pos] = input_ids[keep, pos]
    return PermutationBatch(input_ids=input_ids, order=order,
                            targets=targets)
