"""Pre-training loops for the four architectures.

Each architecture gets the recipe its paper describes, at this
reproduction's scale:

* **BERT** — MLM + NSP on sentence pairs, *static* masking (each example
  is masked once at preprocessing time).
* **RoBERTa** — MLM, *dynamic* masking (re-masked every step), more data
  and more steps, larger batches (the "robustly optimized" recipe).
* **XLNet** — permutation language modeling through the two-stream
  attention path.
* **DistilBERT** — not here: distillation from a BERT teacher lives in
  ``repro.pretraining.distillation``.

Scale-bridging adaptation (documented in DESIGN.md): every architecture
additionally trains a *sentence-pair coherence* objective — classify
whether the two segments describe the same entity, with hard same-domain
negatives.  At paper scale this capability emerges from massive MLM; at
1/100,000 of that compute it must be induced explicitly or no
architecture fine-tunes to useful EM accuracy.  For BERT this is just a
harder-negative NSP; for the others it trains the pooler/CLS pathway
without touching their (NSP-free) MLM/PLM recipes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..models import build_backbone, build_pretraining_head
from ..models.config import TransformerConfig
from ..nn import (Adam, Linear, LinearSchedule, Module, apply_state_dict,
                  clip_grad_norm, cross_entropy)
from ..obs import CallbackList, trace
from ..resilience import (DivergenceGuard, ResilienceConfig,
                          TrainingDiverged, pack_state, unpack_state)
from ..tokenizers import SubwordTokenizer
from ..utils import get_rng_state, set_rng_state
from .corpus import generate_labeled_documents
from .mlm import IGNORE_INDEX, mask_tokens
from .nsp import build_nsp_examples
from .plm import sample_permutation_batch

__all__ = ["PretrainRecipe", "PretrainResult", "pretrain"]


@dataclass
class PretrainRecipe:
    """Knobs of one pre-training run.

    All recipes train on *sentence pairs* in the downstream input format
    (``[CLS] s1 [SEP] s2 [SEP]`` with segment ids): BERT because of NSP,
    RoBERTa/XLNet because they pack consecutive full sentences.  Related
    pairs matter beyond faithfulness — predicting a masked token in one
    segment from its occurrence in the other grows the cross-segment
    "copy" attention heads that entity matching reuses.
    """

    steps: int = 300
    batch_size: int = 16
    seq_len: int = 48
    learning_rate: float = 3e-4
    warmup_fraction: float = 0.1
    num_examples: int = 2000
    num_documents: int = 400
    dynamic_masking: bool = False     # RoBERTa: True
    use_nsp: bool = False             # BERT: True (native NSP head)
    permutation_lm: bool = False      # XLNet: True
    coherence_weight: float = 1.0     # 0 disables the coherence objective
    hard_negatives: bool = True       # same-domain coherence negatives
    grad_clip: float = 1.0


@dataclass
class PretrainResult:
    backbone: Module
    head: Module
    loss_history: list[float] = field(default_factory=list)
    coherence_head: Module | None = None

    @property
    def final_loss(self) -> float:
        if not self.loss_history:
            return float("nan")
        tail = self.loss_history[-10:]
        return float(np.mean(tail))


def _encode_sentences(tokenizer: SubwordTokenizer, sentences: list[str],
                      seq_len: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ids, segments, pads = [], [], []
    for sentence in sentences:
        enc = tokenizer.encode_single(sentence, max_length=seq_len)
        ids.append(enc.input_ids)
        segments.append(enc.segment_ids)
        pads.append(enc.pad_mask)
    return np.stack(ids), np.stack(segments), np.stack(pads)


def _encode_pairs(tokenizer: SubwordTokenizer, pairs, seq_len: int):
    ids, segments, pads, labels, cls_indices = [], [], [], [], []
    for pair in pairs:
        enc = tokenizer.encode_pair(pair.first, pair.second,
                                    max_length=seq_len)
        ids.append(enc.input_ids)
        segments.append(enc.segment_ids)
        pads.append(enc.pad_mask)
        labels.append(pair.is_next)
        cls_indices.append(enc.cls_index)
    return (np.stack(ids), np.stack(segments), np.stack(pads),
            np.asarray(labels), np.asarray(cls_indices))


def pretrain(config: TransformerConfig, tokenizer: SubwordTokenizer,
             recipe: PretrainRecipe, rng: np.random.Generator,
             log=None, callbacks=None,
             resilience: ResilienceConfig | None = None) -> PretrainResult:
    """Run the architecture-appropriate pre-training and return the model.

    Progress is reported through the :mod:`repro.obs` callback protocol
    (``train_begin`` → per-step ``step`` → ``train_end``); the legacy
    ``log=`` print hook is shimmed onto a ``LoggingCallback`` (same
    every-100-steps lines as before).  ``resilience`` opts into full-state
    checkpointing (resume is bit-identical), divergence rollback, and
    chaos injection — see :class:`repro.resilience.ResilienceConfig`.
    """
    cb = CallbackList.resolve(callbacks, log)
    backbone = build_backbone(config, rng)
    backbone.special_token_ids = tokenizer.vocab.special_ids()
    head = build_pretraining_head(config, rng)
    parameters = backbone.parameters() + head.parameters()

    use_coherence = recipe.coherence_weight > 0.0
    coherence_head = None
    if use_coherence and not recipe.use_nsp:
        # BERT reuses its native NSP head; the others get a throwaway
        # coherence readout that still trains the pooler/CLS pathway.
        coherence_head = Linear(config.d_model, 2, rng,
                                std=1.0 / np.sqrt(config.d_model))
        parameters = parameters + coherence_head.parameters()

    optimizer = Adam(parameters, lr=recipe.learning_rate)
    schedule = LinearSchedule(
        optimizer, recipe.learning_rate, total_steps=recipe.steps,
        warmup_steps=max(int(recipe.steps * recipe.warmup_fraction), 1))

    labeled = generate_labeled_documents(rng, recipe.num_documents)
    documents = [doc for _, doc in labeled]
    domains = [domain for domain, _ in labeled] if recipe.hard_negatives \
        else None
    coherent_fraction = 0.5 if use_coherence or recipe.use_nsp else 1.0
    examples = build_nsp_examples(documents, rng,
                                  num_examples=recipe.num_examples,
                                  coherent_fraction=coherent_fraction,
                                  domains=domains)
    all_ids, all_segments, all_pads, all_next, all_cls = _encode_pairs(
        tokenizer, examples, recipe.seq_len)

    # Static masking (BERT): decided once, reused whenever a sample recurs.
    static_masked = None
    if not recipe.dynamic_masking and not recipe.permutation_lm:
        static_masked = mask_tokens(all_ids, tokenizer.vocab, rng)

    if cb:
        cb.on_train_begin({
            "phase": "pretrain", "steps": recipe.steps,
            "batch_size": recipe.batch_size, "seq_len": recipe.seq_len,
            "num_examples": recipe.num_examples,
            "learning_rate": recipe.learning_rate,
            "permutation_lm": recipe.permutation_lm,
            "dynamic_masking": recipe.dynamic_masking})

    manager = guard = chaos = None
    checkpoint_every = 0
    if resilience is not None:
        manager = resilience.manager()
        checkpoint_every = max(int(resilience.checkpoint_every), 0)
        if resilience.guard:
            guard = DivergenceGuard(resilience.guard_config)
        chaos = resilience.chaos

    # CLS placement is batch-uniform by construction (one tokenizer, one
    # seq_len); validate the whole encoded set once instead of trusting
    # index 0 of every batch.
    from ..matching.serializer import uniform_cls_index
    cls_index = uniform_cls_index(all_cls)

    history: list[float] = []
    n = all_ids.shape[0]
    step = 0
    rollbacks_since_save = 0

    def _snapshot() -> tuple[dict, dict]:
        arrays: dict[str, np.ndarray] = {}
        pack_state(arrays, "backbone", backbone.state_dict())
        pack_state(arrays, "head", head.state_dict())
        if coherence_head is not None:
            pack_state(arrays, "coherence", coherence_head.state_dict())
        pack_state(arrays, "optim", optimizer.state_dict())
        pack_state(arrays, "sched", schedule.state_dict())
        arrays["loop/history"] = np.asarray(history)
        meta = {"kind": "pretrain", "step": step,
                "rng": get_rng_state(rng),
                "steps": recipe.steps, "batch_size": recipe.batch_size,
                "seq_len": recipe.seq_len,
                "run": (resilience.run_context or {}) if resilience else {}}
        return arrays, meta

    def _save_snapshot() -> None:
        nonlocal rollbacks_since_save
        arrays, meta = _snapshot()
        path = manager.save(step, arrays, meta)
        rollbacks_since_save = 0
        if cb:
            cb.on_checkpoint({"phase": "pretrain", "step": step,
                              "path": str(path)})

    def _restore(arrays: dict, meta: dict) -> None:
        nonlocal step, history
        apply_state_dict(backbone, unpack_state(arrays, "backbone"),
                         source="snapshot backbone state")
        apply_state_dict(head, unpack_state(arrays, "head"),
                         source="snapshot head state")
        if coherence_head is not None:
            apply_state_dict(coherence_head,
                             unpack_state(arrays, "coherence"),
                             source="snapshot coherence state")
        optimizer.load_state_dict(unpack_state(arrays, "optim"))
        schedule.load_state_dict(unpack_state(arrays, "sched"))
        set_rng_state(rng, meta["rng"])
        step = int(meta["step"])
        history[:] = [float(x) for x in np.asarray(arrays["loop/history"])]

    resumed = False
    if manager is not None and resilience.resume and manager.has_snapshot():
        arrays, meta, path = manager.load_latest()
        _restore(arrays, meta)
        resumed = True
        if cb:
            cb.on_recovery({"phase": "pretrain",
                            "reason": "interrupted_run",
                            "action": "resume", "step": step,
                            "path": str(path)})
    if manager is not None and not resumed:
        _save_snapshot()

    def _rollback(reason: str) -> None:
        nonlocal rollbacks_since_save
        if manager is None or not manager.has_snapshot():
            raise TrainingDiverged(
                f"pre-training diverged at step {step} ({reason}) with no "
                f"checkpoint to roll back to", attempts=guard.attempts)
        guard.record_rollback(step, reason, optimizer.lr)
        rollbacks_since_save += 1
        arrays, meta, _ = manager.load_latest()
        _restore(arrays, meta)
        backoff = resilience.guard_config.lr_backoff
        schedule.base_lr *= backoff ** rollbacks_since_save
        optimizer.lr = schedule.current_lr()
        if cb:
            cb.on_recovery({"phase": "pretrain", "reason": reason,
                            "action": "rollback", "step": step,
                            "rollbacks": guard.rollbacks,
                            "lr": optimizer.lr})

    with trace("pretrain", steps=recipe.steps):
        while step < recipe.steps:
            step_t0 = time.perf_counter() if cb else 0.0
            batch_idx = rng.integers(0, n, size=recipe.batch_size)
            ids = all_ids[batch_idx]
            segments = all_segments[batch_idx]
            pads = all_pads[batch_idx]

            optimizer.zero_grad()
            if recipe.permutation_lm:
                loss = _xlnet_step(backbone, head, coherence_head,
                                   tokenizer, recipe, rng, step, ids,
                                   segments, pads, all_next[batch_idx],
                                   cls_index)
            else:
                if recipe.dynamic_masking:
                    masked = mask_tokens(ids, tokenizer.vocab, rng)
                    masked_ids, targets = masked.input_ids, masked.targets
                else:
                    masked_ids = static_masked.input_ids[batch_idx]
                    targets = static_masked.targets[batch_idx]
                hidden = backbone(masked_ids, segment_ids=segments,
                                  pad_mask=pads)
                logits = head.mlm_logits(hidden)
                loss = cross_entropy(logits, targets,
                                     ignore_index=IGNORE_INDEX)
                if use_coherence:
                    pooled = backbone.pooled_output(hidden,
                                                    cls_index=cls_index)
                    if recipe.use_nsp:
                        coherence_logits = head.nsp_logits(pooled)
                    else:
                        coherence_logits = coherence_head(pooled)
                    loss = loss + recipe.coherence_weight * cross_entropy(
                        coherence_logits, all_next[batch_idx])

            loss.backward()
            if chaos is not None:
                chaos.poison_gradients(step, parameters)
            grad_norm = clip_grad_norm(parameters, recipe.grad_clip)
            if guard is not None:
                reason = guard.check(float(loss.data), grad_norm)
                if reason is not None:
                    _rollback(reason)
                    continue
            if chaos is not None:
                chaos.maybe_crash(step)
            lr = optimizer.lr
            optimizer.step()
            schedule.step()
            history.append(float(loss.data))
            step += 1
            if cb:
                seconds = time.perf_counter() - step_t0
                cb.on_step({
                    "phase": "pretrain", "step": step - 1,
                    "loss": history[-1], "lr": lr,
                    "grad_norm": grad_norm, "seconds": seconds,
                    "examples_per_sec":
                        recipe.batch_size / max(seconds, 1e-9)})
            if manager is not None and checkpoint_every \
                    and step % checkpoint_every == 0:
                _save_snapshot()

    if manager is not None:
        _save_snapshot()

    backbone.eval()
    head.eval()
    result = PretrainResult(backbone=backbone, head=head,
                            loss_history=history,
                            coherence_head=coherence_head)
    if cb:
        cb.on_train_end({"phase": "pretrain", "steps": recipe.steps,
                         "final_loss": result.final_loss})
    return result


def _xlnet_step(backbone, head, coherence_head, tokenizer, recipe, rng,
                step, ids, segments, pads, next_labels, cls_index):
    """Alternate permutation-LM steps with coherence steps.

    Two-stream PLM and the bidirectional coherence pass need different
    attention setups, so XLNet interleaves them (the loss history then
    reflects both objectives).
    """
    use_coherence = recipe.coherence_weight > 0.0 and coherence_head
    if use_coherence and step % 2 == 1:
        hidden = backbone(ids, segment_ids=segments, pad_mask=pads)
        pooled = backbone.pooled_output(hidden, cls_index=cls_index)
        return recipe.coherence_weight * cross_entropy(
            coherence_head(pooled), next_labels)
    batch = sample_permutation_batch(ids, tokenizer.vocab, rng)
    g = backbone.forward_permutation(batch.input_ids, batch.order,
                                     segment_ids=segments)
    logits = head.mlm_logits(g)
    return cross_entropy(logits, batch.targets, ignore_index=IGNORE_INDEX)
