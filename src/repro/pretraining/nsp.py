"""Next-sentence prediction pairing (BERT's second objective).

Half the examples are genuine consecutive sentence pairs from one
document (label 1 = IsNext), half pair a sentence with a random sentence
from another document (label 0 = NotNext).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SentencePair", "build_nsp_examples"]


@dataclass
class SentencePair:
    first: str
    second: str
    is_next: int  # 1 = consecutive in the same document


def build_nsp_examples(documents: list[list[str]],
                       rng: np.random.Generator,
                       num_examples: int,
                       coherent_fraction: float = 0.5,
                       domains: list[str] | None = None
                       ) -> list[SentencePair]:
    """Sample sentence pairs from multi-sentence documents.

    ``coherent_fraction`` is the probability of a genuine consecutive
    pair; 0.5 reproduces BERT's NSP mix, 1.0 gives the always-related
    packing used for architectures without the NSP loss.

    With ``domains`` (one label per document) negatives are *hard*: the
    unrelated sentence is drawn from a different document of the same
    domain.  Random negatives make NSP a topic detector; same-domain
    negatives force entity-level comparison, which is the capability the
    downstream matching task reuses.  (A scale-bridging adaptation —
    see DESIGN.md.)
    """
    indexed = [(i, doc) for i, doc in enumerate(documents) if len(doc) >= 2]
    if not indexed:
        raise ValueError("need at least one document with >= 2 sentences")
    by_domain: dict[str, list[int]] = {}
    if domains is not None:
        if len(domains) != len(documents):
            raise ValueError("domains must align with documents")
        for i, domain in enumerate(domains):
            by_domain.setdefault(domain, []).append(i)
    all_sentences = [s for doc in documents for s in doc]
    examples: list[SentencePair] = []
    for _ in range(num_examples):
        doc_index, doc = indexed[rng.integers(len(indexed))]
        start = int(rng.integers(len(doc) - 1))
        first = doc[start]
        if rng.random() < coherent_fraction:
            examples.append(SentencePair(first, doc[start + 1], 1))
            continue
        if domains is not None:
            pool = by_domain[domains[doc_index]]
            other = pool[rng.integers(len(pool))]
            if len(pool) > 1:
                while other == doc_index:
                    other = pool[rng.integers(len(pool))]
            negative_doc = documents[other]
            negative = negative_doc[rng.integers(len(negative_doc))]
        else:
            negative = all_sentences[rng.integers(len(all_sentences))]
        examples.append(SentencePair(first, negative, 0))
    return examples
