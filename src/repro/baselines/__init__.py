"""Baselines the paper compares against: Magellan and DeepMatcher."""

from . import similarity
from .deepmatcher import DeepMatcher, DeepMatcherConfig, DeepMatcherResult
from .magellan import MagellanMatcher, MagellanResult

__all__ = ["similarity", "MagellanMatcher", "MagellanResult",
           "DeepMatcher", "DeepMatcherConfig", "DeepMatcherResult"]
