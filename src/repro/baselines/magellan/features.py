"""Magellan-style feature generation.

Magellan (Konda et al., VLDB 2016) builds a feature vector per candidate
pair by applying a battery of similarity functions to each aligned
attribute pair, then trains a classical ML classifier on the vectors.
This is exactly what breaks on "dirty" data: when values migrate out of
their attribute, the aligned comparisons stop seeing them.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from ...data import EMDataset
from .. import similarity as sim

__all__ = ["FeatureGenerator"]

_ATTRIBUTE_FUNCTIONS = (
    ("lev", sim.levenshtein_similarity),
    ("jw", sim.jaro_winkler),
    ("jac", sim.jaccard_tokens),
    ("ovl", sim.overlap_coefficient),
    ("cos", sim.cosine_tfidf),
    ("exact", sim.exact_match),
    ("num", sim.numeric_similarity),
    ("me", sim.monge_elkan),
)

# Character-level edit distance on long text blobs is quadratic and
# uninformative; cap the value length fed to expensive functions.
_MAX_CHARS = 120
_EXPENSIVE = {"lev", "jw", "me"}


class FeatureGenerator:
    """Turns labeled pairs into (features, labels) matrices.

    An IDF table fitted on the training data sharpens the cosine feature,
    as Magellan's tf-idf features do.
    """

    def __init__(self, schema: list[str]):
        self.schema = list(schema)
        self._idf: dict[str, float] | None = None

    def feature_names(self) -> list[str]:
        return [f"{attribute}.{name}"
                for attribute in self.schema
                for name, _ in _ATTRIBUTE_FUNCTIONS]

    def fit(self, dataset: EMDataset) -> "FeatureGenerator":
        document_freq: Counter[str] = Counter()
        total = 0
        for pair in dataset.pairs:
            for record in (pair.record_a, pair.record_b):
                tokens = set(record.text_blob(self.schema).split())
                document_freq.update(tokens)
                total += 1
        self._idf = {
            token: math.log(total / (1 + freq)) + 1.0
            for token, freq in document_freq.items()
        }
        return self

    def transform(self, dataset: EMDataset) -> tuple[np.ndarray, np.ndarray]:
        rows = []
        for pair in dataset.pairs:
            features: list[float] = []
            for attribute in self.schema:
                value_a = pair.record_a[attribute]
                value_b = pair.record_b[attribute]
                for name, function in _ATTRIBUTE_FUNCTIONS:
                    a, b = value_a, value_b
                    if name in _EXPENSIVE:
                        a, b = a[:_MAX_CHARS], b[:_MAX_CHARS]
                    if name == "cos":
                        features.append(function(a, b, self._idf))
                    else:
                        features.append(function(a, b))
            rows.append(features)
        labels = np.asarray(dataset.labels())
        return np.asarray(rows), labels

    def fit_transform(self, dataset: EMDataset
                      ) -> tuple[np.ndarray, np.ndarray]:
        return self.fit(dataset).transform(dataset)
