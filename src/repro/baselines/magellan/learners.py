"""Classical ML learners implemented from scratch (numpy only).

Magellan lets the user pick among decision trees, random forests, SVMs,
logistic regression etc.; we implement the three its documentation
recommends first and select among them on validation F1, as the Magellan
workflow prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DecisionTree", "RandomForest", "LogisticRegression"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None
    prediction: float = 0.5  # P(match) at a leaf

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTree:
    """CART with Gini impurity, depth and leaf-size limits."""

    def __init__(self, max_depth: int = 8, min_leaf: int = 4,
                 max_features: int | None = None, seed: int = 0):
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: _Node | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        self._root = self._grow(features, labels, depth=0)
        return self

    def _grow(self, features: np.ndarray, labels: np.ndarray,
              depth: int) -> _Node:
        node = _Node(prediction=float(labels.mean()) if len(labels) else 0.5)
        if (depth >= self.max_depth or len(labels) < 2 * self.min_leaf
                or labels.min() == labels.max()):
            return node
        n_features = features.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(n_features, self.max_features,
                                          replace=False)
        else:
            candidates = np.arange(n_features)
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        parent_impurity = _gini(labels)
        for feature in candidates:
            column = features[:, feature]
            thresholds = np.unique(np.quantile(
                column, [0.1, 0.25, 0.5, 0.75, 0.9]))
            for threshold in thresholds:
                left = labels[column <= threshold]
                right = labels[column > threshold]
                if len(left) < self.min_leaf or len(right) < self.min_leaf:
                    continue
                weighted = (len(left) * _gini(left)
                            + len(right) * _gini(right)) / len(labels)
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = (
                        gain, int(feature), float(threshold))
        if best_feature < 0:
            return node
        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() before predict")
        features = np.asarray(features, dtype=float)
        return np.array([self._walk(row) for row in features])

    def _walk(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)


class RandomForest:
    """Bagged CART trees with feature subsampling."""

    def __init__(self, n_trees: int = 25, max_depth: int = 8,
                 min_leaf: int = 2, seed: int = 0):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self._trees: list[DecisionTree] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForest":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        rng = np.random.default_rng(self.seed)
        n = len(labels)
        max_features = max(int(np.sqrt(features.shape[1])), 1)
        self._trees = []
        for t in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTree(max_depth=self.max_depth,
                                min_leaf=self.min_leaf,
                                max_features=max_features,
                                seed=self.seed + t + 1)
            tree.fit(features[sample], labels[sample])
            self._trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() before predict")
        votes = np.stack([tree.predict_proba(features)
                          for tree in self._trees])
        return votes.mean(axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)


class LogisticRegression:
    """L2-regularized logistic regression trained by full-batch gradient
    descent with feature standardization."""

    def __init__(self, learning_rate: float = 0.5, iterations: int = 400,
                 l2: float = 1e-3):
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, features: np.ndarray,
            labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        self._mean = features.mean(axis=0)
        self._std = features.std(axis=0) + 1e-8
        x = (features - self._mean) / self._std
        n, d = x.shape
        self._weights = np.zeros(d)
        self._bias = 0.0
        for _ in range(self.iterations):
            logits = x @ self._weights + self._bias
            probs = 1.0 / (1.0 + np.exp(-logits))
            error = probs - labels
            grad_w = x.T @ error / n + self.l2 * self._weights
            grad_b = error.mean()
            self._weights -= self.learning_rate * grad_w
            self._bias -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("fit() before predict")
        x = (np.asarray(features, dtype=float) - self._mean) / self._std
        return 1.0 / (1.0 + np.exp(-(x @ self._weights + self._bias)))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(int)


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    p = labels.mean()
    return float(2.0 * p * (1.0 - p))
