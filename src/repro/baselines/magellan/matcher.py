"""The Magellan-style matcher: features + best classical learner.

Follows the Magellan workflow: generate similarity features, train a set
of candidate learners, pick the one with the best validation F1, report
test F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...data import EMDataset
from ...matching.metrics import MatchingMetrics, evaluate_predictions
from .features import FeatureGenerator
from .learners import DecisionTree, LogisticRegression, RandomForest

__all__ = ["MagellanMatcher", "MagellanResult"]


def _best_threshold(labels: np.ndarray, probabilities: np.ndarray,
                    grid: np.ndarray | None = None) -> tuple[float, float]:
    """Decision threshold maximizing F1 on held-out data."""
    if grid is None:
        grid = np.linspace(0.1, 0.9, 17)
    best_threshold, best_f1 = 0.5, -1.0
    for threshold in grid:
        predictions = (probabilities >= threshold).astype(int)
        f1 = evaluate_predictions(labels, predictions).f1
        if f1 > best_f1:
            best_threshold, best_f1 = float(threshold), f1
    return best_threshold, best_f1


@dataclass
class MagellanResult:
    chosen_learner: str
    validation_f1: float
    test_metrics: MatchingMetrics


class MagellanMatcher:
    """Feature-based EM with automatic learner selection."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._generator: FeatureGenerator | None = None
        self._model = None
        self.chosen_learner: str | None = None

    def _candidates(self) -> dict[str, object]:
        return {
            "decision_tree": DecisionTree(seed=self.seed),
            "random_forest": RandomForest(seed=self.seed),
            "logistic_regression": LogisticRegression(),
        }

    def fit(self, train: EMDataset,
            validation: EMDataset | None = None) -> "MagellanMatcher":
        """Fit the featurizer and pick the best learner on validation F1."""
        self._generator = FeatureGenerator(train.schema).fit(train)
        x_train, y_train = self._generator.transform(train)
        if validation is not None and len(validation):
            x_val, y_val = self._generator.transform(validation)
        else:
            x_val, y_val = x_train, y_train
        best = (-1.0, None, None, 0.5)
        for name, model in self._candidates().items():
            model.fit(x_train, y_train)
            probabilities = model.predict_proba(x_val)
            threshold, f1 = _best_threshold(y_val, probabilities)
            if f1 > best[0]:
                best = (f1, name, model, threshold)
        self._validation_f1, self.chosen_learner = best[0], best[1]
        self._model, self._threshold = best[2], best[3]
        return self

    def predict(self, dataset: EMDataset) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("fit() before predict")
        features, _ = self._generator.transform(dataset)
        probabilities = self._model.predict_proba(features)
        return (probabilities >= self._threshold).astype(int)

    def evaluate(self, dataset: EMDataset) -> MatchingMetrics:
        predictions = self.predict(dataset)
        return evaluate_predictions(np.asarray(dataset.labels()),
                                    predictions)

    def run(self, train: EMDataset, validation: EMDataset,
            test: EMDataset) -> MagellanResult:
        """Full protocol: fit, select, evaluate on test."""
        self.fit(train, validation)
        return MagellanResult(
            chosen_learner=self.chosen_learner,
            validation_f1=self._validation_f1,
            test_metrics=self.evaluate(test),
        )
