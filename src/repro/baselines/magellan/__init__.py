"""Magellan-style classical EM baseline (Konda et al., VLDB 2016)."""

from .features import FeatureGenerator
from .learners import DecisionTree, LogisticRegression, RandomForest
from .matcher import MagellanMatcher, MagellanResult

__all__ = ["FeatureGenerator", "DecisionTree", "RandomForest",
           "LogisticRegression", "MagellanMatcher", "MagellanResult"]
