"""String similarity functions used by feature-based EM (Christen 2012).

These are the building blocks of the Magellan-style baseline: classical,
hand-crafted similarity measures between attribute values.  Each returns
a score in [0, 1] (higher = more similar) and handles empty values.
"""

from __future__ import annotations

import math
from collections import Counter

__all__ = ["levenshtein_distance", "levenshtein_similarity", "jaro",
           "jaro_winkler", "jaccard_tokens", "overlap_coefficient",
           "cosine_tfidf", "exact_match", "numeric_similarity",
           "monge_elkan", "prefix_similarity"]


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance with two-row dynamic programming."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1,       # deletion
                               current[j - 1] + 1,    # insertion
                               previous[j - 1] + cost))  # substitution
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance."""
    if not a and not b:
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity (Jaro 1989), basis of Jaro-Winkler."""
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(i + window + 1, len(b))
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len(a)):
        if a_flags[i]:
            while not b_flags[k]:
                k += 1
            if a[i] != b[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    return (matches / len(a) + matches / len(b)
            + (matches - transpositions) / matches) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1,
                 max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted by the common prefix length.

    Known to work well on person names (Christen 2012) — hence its
    presence in every Magellan feature table.
    """
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a[:max_prefix], b[:max_prefix]):
        if ca != cb:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def jaccard_tokens(a: str, b: str) -> float:
    """Jaccard coefficient of whitespace token sets."""
    set_a, set_b = set(a.split()), set(b.split())
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def overlap_coefficient(a: str, b: str) -> float:
    """|A ∩ B| / min(|A|, |B|) on token sets."""
    set_a, set_b = set(a.split()), set(b.split())
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def cosine_tfidf(a: str, b: str,
                 idf: dict[str, float] | None = None) -> float:
    """Cosine similarity of (tf-idf weighted) token count vectors.

    Without a corpus-level ``idf`` table it degrades gracefully to plain
    tf cosine.
    """
    counts_a = Counter(a.split())
    counts_b = Counter(b.split())
    if not counts_a or not counts_b:
        return 0.0
    def weight(token: str, count: int) -> float:
        return count * (idf.get(token, 1.0) if idf else 1.0)
    dot = sum(weight(t, counts_a[t]) * weight(t, counts_b[t])
              for t in counts_a.keys() & counts_b.keys())
    norm_a = math.sqrt(sum(weight(t, c) ** 2 for t, c in counts_a.items()))
    norm_b = math.sqrt(sum(weight(t, c) ** 2 for t, c in counts_b.items()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def exact_match(a: str, b: str) -> float:
    """1.0 iff non-empty and identical after stripping."""
    a, b = a.strip(), b.strip()
    return 1.0 if a and a == b else 0.0


def numeric_similarity(a: str, b: str) -> float:
    """Relative closeness of the first parseable numbers, 0 if none."""
    num_a = _first_number(a)
    num_b = _first_number(b)
    if num_a is None or num_b is None:
        return 0.0
    if num_a == num_b:
        return 1.0
    denominator = max(abs(num_a), abs(num_b))
    if denominator == 0.0:
        return 1.0
    return max(0.0, 1.0 - abs(num_a - num_b) / denominator)


def monge_elkan(a: str, b: str, inner=jaro_winkler) -> float:
    """Average best inner-similarity of each token of ``a`` against ``b``."""
    tokens_a, tokens_b = a.split(), b.split()
    if not tokens_a or not tokens_b:
        return 0.0
    return sum(max(inner(ta, tb) for tb in tokens_b)
               for ta in tokens_a) / len(tokens_a)


def prefix_similarity(a: str, b: str) -> float:
    """Length of the common prefix over the shorter string length."""
    if not a or not b:
        return 0.0
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        prefix += 1
    return prefix / min(len(a), len(b))


def _first_number(text: str) -> float | None:
    for token in text.replace("$", " ").replace(",", " ").split():
        cleaned = token.strip(".")
        try:
            return float(cleaned)
        except ValueError:
            continue
    return None
