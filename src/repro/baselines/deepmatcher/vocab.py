"""Word-level vocabulary for the DeepMatcher baseline.

DeepMatcher embeds whitespace/punctuation words (via fastText in the
original).  Since the contrast with the paper's transformers is exactly
"no pre-training", embeddings here are random-initialized and learned
from the task data alone.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ...data import EMDataset
from ...tokenizers import basic_pretokenize, normalize_text

__all__ = ["WordVocab"]

_PAD, _UNK = "<pad>", "<unk>"


class WordVocab:
    """Frequency-cut word vocabulary with pad/unk."""

    def __init__(self, words: list[str]):
        self._token_to_id = {_PAD: 0, _UNK: 1}
        for word in words:
            if word not in self._token_to_id:
                self._token_to_id[word] = len(self._token_to_id)
        self._id_to_token = [None] * len(self._token_to_id)
        for token, idx in self._token_to_id.items():
            self._id_to_token[idx] = token

    def __len__(self) -> int:
        return len(self._token_to_id)

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    @staticmethod
    def tokenize(text: str) -> list[str]:
        return basic_pretokenize(normalize_text(text))

    @staticmethod
    def build(dataset: EMDataset, min_frequency: int = 1,
              max_size: int = 5000) -> "WordVocab":
        counts: Counter[str] = Counter()
        attributes = dataset.serialization_attributes()
        for pair in dataset.pairs:
            for record in (pair.record_a, pair.record_b):
                counts.update(WordVocab.tokenize(
                    record.text_blob(attributes)))
        words = [word for word, freq in counts.most_common(max_size)
                 if freq >= min_frequency]
        return WordVocab(words)

    def encode(self, text: str, max_length: int) -> np.ndarray:
        ids = [self._token_to_id.get(word, self.unk_id)
               for word in self.tokenize(text)][:max_length]
        ids += [self.pad_id] * (max_length - len(ids))
        return np.asarray(ids, dtype=np.int64)
