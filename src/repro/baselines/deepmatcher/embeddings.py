"""Skip-gram word embeddings (word2vec SGNS) for DeepMatcher.

The original DeepMatcher initializes with pre-trained fastText vectors —
*static* word embeddings, the pre-transformer generation of transfer
learning.  We reproduce that with skip-gram + negative sampling trained on
the same synthetic corpus the transformers pre-train on.  Synonyms share
contexts there, so their vectors converge, giving DeepMatcher some
synonym-bridging power — enough to beat Magellan on hard data but well
short of contextual transformers, exactly the gap the paper measures.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ...nn import DTYPE
from ...tokenizers import basic_pretokenize, normalize_text
from ...utils import child_rng
from ..deepmatcher.vocab import WordVocab

__all__ = ["train_sgns", "WordEmbeddings", "get_word_embeddings"]


class WordEmbeddings:
    """Word -> vector lookup with OOV fallback."""

    def __init__(self, vectors: dict[str, np.ndarray], dim: int):
        self.vectors = vectors
        self.dim = dim

    def __contains__(self, word: str) -> bool:
        return word in self.vectors

    def get(self, word: str,
            rng: np.random.Generator | None = None) -> np.ndarray:
        vector = self.vectors.get(word)
        if vector is not None:
            return vector
        if rng is None:
            return np.zeros(self.dim, dtype=DTYPE)
        return rng.normal(0, 0.1, self.dim).astype(DTYPE)

    def build_matrix(self, vocab: WordVocab,
                     rng: np.random.Generator) -> np.ndarray:
        """Embedding matrix aligned to a :class:`WordVocab`."""
        matrix = rng.normal(0, 0.1, (len(vocab), self.dim)).astype(
            DTYPE)
        for word, idx in vocab._token_to_id.items():
            if word in self.vectors:
                matrix[idx] = self.vectors[word]
        matrix[vocab.pad_id] = 0.0
        return matrix


def train_sgns(corpus: list[str], dim: int = 48, window: int = 2,
               negatives: int = 5, epochs: int = 3,
               learning_rate: float = 0.05, min_count: int = 3,
               seed: int = 0) -> WordEmbeddings:
    """Train skip-gram with negative sampling, fully vectorized.

    Small-corpus word2vec: builds (center, context) pairs within
    ``window``, samples ``negatives`` noise words per pair from the
    unigram^0.75 distribution, and optimizes the SGNS objective with
    minibatch SGD.
    """
    rng = child_rng(seed, "sgns")
    tokenized = [basic_pretokenize(normalize_text(line)) for line in corpus]
    counts: Counter[str] = Counter(w for words in tokenized for w in words)
    vocab = [w for w, c in counts.most_common() if c >= min_count]
    word_to_id = {w: i for i, w in enumerate(vocab)}
    if not vocab:
        raise ValueError("corpus too small for the given min_count")

    centers, contexts = [], []
    for words in tokenized:
        ids = [word_to_id[w] for w in words if w in word_to_id]
        for i, center in enumerate(ids):
            lo = max(0, i - window)
            hi = min(len(ids), i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(center)
                    contexts.append(ids[j])
    centers = np.asarray(centers)
    contexts = np.asarray(contexts)

    freq = np.array([counts[w] for w in vocab], dtype=float) ** 0.75
    noise = freq / freq.sum()

    n_words = len(vocab)
    w_in = rng.normal(0, 0.5 / dim, (n_words, dim))
    w_out = np.zeros((n_words, dim))
    batch = 512
    n_pairs = len(centers)
    total_batches = max(epochs * ((n_pairs + batch - 1) // batch), 1)
    seen = 0

    def sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -10.0, 10.0)))

    for _ in range(epochs):
        order = rng.permutation(n_pairs)
        for start in range(0, n_pairs, batch):
            lr = learning_rate * max(1.0 - seen / total_batches, 0.05)
            seen += 1
            idx = order[start:start + batch]
            c = centers[idx]
            o = contexts[idx]
            neg = rng.choice(n_words, size=(len(idx), negatives), p=noise)
            v_c = w_in[c]                              # (B, D)
            v_o = w_out[o]                             # (B, D)
            v_n = w_out[neg]                           # (B, K, D)
            pos_score = sigmoid((v_c * v_o).sum(axis=1))
            neg_score = sigmoid(np.einsum("bd,bkd->bk", v_c, v_n))
            g_pos = (pos_score - 1.0)[:, None]         # dL/d(v_c·v_o)
            g_neg = neg_score[:, :, None]
            grad_c = g_pos * v_o + (g_neg * v_n).sum(axis=1)
            np.add.at(w_in, c, -lr * grad_c)
            np.add.at(w_out, o, -lr * (g_pos * v_c))
            np.add.at(w_out, neg.reshape(-1),
                      -lr * (g_neg * v_c[:, None, :]).reshape(-1, dim))
    vectors = {w: w_in[i].astype(DTYPE) for w, i in word_to_id.items()}
    return WordEmbeddings(vectors, dim)


def get_word_embeddings(seed: int = 0, dim: int = 48,
                        num_sentences: int = 3000,
                        zoo_dir=None) -> WordEmbeddings:
    """Train-once-and-cache corpus word embeddings (fastText stand-in)."""
    import json
    from pathlib import Path
    from ...pretraining.corpus import generate_corpus
    from ...pretraining.model_zoo import default_zoo_dir

    directory = Path(zoo_dir) if zoo_dir else default_zoo_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"sgns-{seed}-{dim}-{num_sentences}.npz"
    if path.exists():
        with np.load(path, allow_pickle=False) as archive:
            words = json.loads(bytes(archive["words"]).decode("utf-8"))
            matrix = archive["matrix"]
        return WordEmbeddings(
            {w: matrix[i] for i, w in enumerate(words)}, dim)
    corpus = generate_corpus(child_rng(seed, "sgns-corpus"), num_sentences)
    embeddings = train_sgns(corpus, dim=dim, seed=seed)
    words = sorted(embeddings.vectors)
    matrix = np.stack([embeddings.vectors[w] for w in words])
    import io

    from ...utils import atomic_write_bytes
    buffer = io.BytesIO()
    np.savez(buffer,
             words=np.frombuffer(json.dumps(words).encode(), np.uint8),
             matrix=matrix)
    atomic_write_bytes(path, buffer.getvalue())
    return embeddings
