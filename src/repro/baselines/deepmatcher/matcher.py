"""Training/evaluation driver for the DeepMatcher baseline.

Mirrors the original protocol: train each variant from scratch on the
dataset, select the best on validation F1, report test F1 (the EDBT paper
also reports "the best performing of the four DeepMatcher DL models").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...data import EMDataset
from ...matching.metrics import MatchingMetrics, evaluate_predictions
from ...nn import Adam, clip_grad_norm, cross_entropy, no_grad
from ...obs import CallbackList, trace
from ..magellan.matcher import _best_threshold
from ...utils import child_rng
from .model import DeepMatcherModel, VARIANTS
from .vocab import WordVocab

__all__ = ["DeepMatcherConfig", "DeepMatcherResult", "DeepMatcher"]


@dataclass
class DeepMatcherConfig:
    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 1e-3
    embed_dim: int = 48
    hidden: int = 32
    max_length: int = 32
    grad_clip: float = 2.0
    variants: tuple[str, ...] = VARIANTS
    # DeepMatcher ships with pre-trained fastText vectors; our stand-in is
    # skip-gram trained on the synthetic corpus (see embeddings.py).
    use_pretrained_embeddings: bool = True


@dataclass
class DeepMatcherResult:
    chosen_variant: str
    validation_f1: float
    test_metrics: MatchingMetrics
    epoch_seconds: dict[str, float] = field(default_factory=dict)


class _Encoded:
    def __init__(self, dataset: EMDataset, vocab: WordVocab,
                 max_length: int):
        attributes = dataset.serialization_attributes()
        ids_a, ids_b = [], []
        for pair in dataset.pairs:
            ids_a.append(vocab.encode(
                pair.record_a.text_blob(attributes), max_length))
            ids_b.append(vocab.encode(
                pair.record_b.text_blob(attributes), max_length))
        self.ids_a = np.stack(ids_a)
        self.ids_b = np.stack(ids_b)
        self.pad_a = self.ids_a == vocab.pad_id
        self.pad_b = self.ids_b == vocab.pad_id
        self.labels = np.asarray(dataset.labels())

    def __len__(self) -> int:
        return len(self.labels)


class DeepMatcher:
    """Best-of-four-variants DeepMatcher baseline."""

    def __init__(self, config: DeepMatcherConfig | None = None,
                 seed: int = 0, callbacks=None):
        self.config = config or DeepMatcherConfig()
        self.seed = seed
        self._callbacks = CallbackList.resolve(callbacks)
        self._vocab: WordVocab | None = None
        self._model: DeepMatcherModel | None = None
        self._threshold: float = 0.5
        self.chosen_variant: str | None = None
        self.epoch_seconds: dict[str, float] = {}

    def _train_variant(self, variant: str, train: _Encoded,
                       rng: np.random.Generator) -> DeepMatcherModel:
        model = DeepMatcherModel(len(self._vocab), variant, rng,
                                 embed_dim=self.config.embed_dim,
                                 hidden=self.config.hidden,
                                 embedding_matrix=self._embedding_matrix)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        positives = max(train.labels.sum(), 1)
        negatives = max(len(train) - positives, 1)
        class_weights = np.array([1.0, negatives / positives])
        n = len(train)
        batch = self.config.batch_size
        cb = self._callbacks
        seconds = []
        global_step = 0
        for epoch in range(1, self.config.epochs + 1):
            order = rng.permutation(n)
            losses = []
            with trace("deepmatcher-epoch", variant=variant,
                       epoch=epoch) as span:
                starts = list(range(0, n - batch + 1, batch)) or [0]
                for start in starts:
                    step_t0 = time.perf_counter() if cb else 0.0
                    idx = order[start:start + batch]
                    optimizer.zero_grad()
                    logits = model(train.ids_a[idx], train.ids_b[idx],
                                   train.pad_a[idx], train.pad_b[idx])
                    loss = cross_entropy(logits, train.labels[idx],
                                         class_weights=class_weights)
                    loss.backward()
                    grad_norm = clip_grad_norm(model.parameters(),
                                               self.config.grad_clip)
                    optimizer.step()
                    losses.append(float(loss.data))
                    if cb:
                        elapsed = time.perf_counter() - step_t0
                        cb.on_step({
                            "phase": "deepmatcher", "variant": variant,
                            "step": global_step, "epoch": epoch,
                            "loss": losses[-1], "lr": optimizer.lr,
                            "grad_norm": grad_norm, "seconds": elapsed,
                            "examples_per_sec":
                                len(idx) / max(elapsed, 1e-9)})
                    global_step += 1
            seconds.append(span.wall)
            if cb:
                cb.on_epoch_end({
                    "phase": "deepmatcher", "variant": variant,
                    "epoch": epoch, "train_loss": float(np.mean(losses)),
                    "seconds": span.wall})
        self.epoch_seconds[variant] = float(np.mean(seconds))
        return model

    def _proba_encoded(self, model: DeepMatcherModel,
                       data: _Encoded) -> np.ndarray:
        model.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(data), 64):
                idx = np.arange(start, min(start + 64, len(data)))
                logits = model(data.ids_a[idx], data.ids_b[idx],
                               data.pad_a[idx], data.pad_b[idx])
                outputs.append(logits.softmax(axis=-1).numpy()[:, 1])
        model.train()
        return np.concatenate(outputs) if outputs else np.array([])

    def fit(self, train: EMDataset,
            validation: EMDataset | None = None) -> "DeepMatcher":
        self._vocab = WordVocab.build(train)
        self._embedding_matrix = None
        if self.config.use_pretrained_embeddings:
            from .embeddings import get_word_embeddings
            embeddings = get_word_embeddings(seed=0,
                                             dim=self.config.embed_dim)
            self._embedding_matrix = embeddings.build_matrix(
                self._vocab, child_rng(self.seed, "dm-embed"))
        encoded_train = _Encoded(train, self._vocab,
                                 self.config.max_length)
        encoded_val = (_Encoded(validation, self._vocab,
                                self.config.max_length)
                       if validation is not None and len(validation)
                       else encoded_train)
        cb = self._callbacks
        if cb:
            cb.on_train_begin({
                "phase": "deepmatcher", "epochs": self.config.epochs,
                "batch_size": self.config.batch_size,
                "variants": list(self.config.variants),
                "train_size": len(encoded_train)})
        best = (-1.0, None, None, 0.5)
        for variant in self.config.variants:
            rng = child_rng(self.seed, "deepmatcher", variant)
            model = self._train_variant(variant, encoded_train, rng)
            with trace("deepmatcher-eval", variant=variant):
                probabilities = self._proba_encoded(model, encoded_val)
                threshold, f1 = _best_threshold(encoded_val.labels,
                                                probabilities)
            if cb:
                cb.on_eval({"phase": "deepmatcher", "variant": variant,
                            "epoch": self.config.epochs, "f1": f1})
            if f1 > best[0]:
                best = (f1, variant, model, threshold)
        self._validation_f1, self.chosen_variant = best[0], best[1]
        self._model, self._threshold = best[2], best[3]
        if cb:
            cb.on_train_end({"phase": "deepmatcher",
                             "chosen_variant": self.chosen_variant,
                             "validation_f1": self._validation_f1})
        return self

    def predict_proba(self, dataset: EMDataset) -> np.ndarray:
        """Per-pair match probability, shape ``(len(dataset),)``.

        The raw scores behind :meth:`predict`; exposed so the serving
        layer (:class:`repro.serve.DeepMatcherBackend`) can run the
        baseline as a cheap request-scoring backend.
        """
        if self._model is None:
            raise RuntimeError("fit() before predict")
        encoded = _Encoded(dataset, self._vocab, self.config.max_length)
        return self._proba_encoded(self._model, encoded)

    @property
    def threshold(self) -> float:
        """The validation-F1-optimal decision threshold chosen by fit()."""
        return self._threshold

    def predict(self, dataset: EMDataset) -> np.ndarray:
        probabilities = self.predict_proba(dataset)
        return (probabilities >= self._threshold).astype(int)

    def evaluate(self, dataset: EMDataset) -> MatchingMetrics:
        predictions = self.predict(dataset)
        return evaluate_predictions(np.asarray(dataset.labels()),
                                    predictions)

    def run(self, train: EMDataset, validation: EMDataset,
            test: EMDataset) -> DeepMatcherResult:
        self.fit(train, validation)
        return DeepMatcherResult(
            chosen_variant=self.chosen_variant,
            validation_f1=self._validation_f1,
            test_metrics=self.evaluate(test),
            epoch_seconds=dict(self.epoch_seconds),
        )
