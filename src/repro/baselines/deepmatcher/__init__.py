"""DeepMatcher-style deep learning EM baseline (Mudgal et al., 2018)."""

from .embeddings import WordEmbeddings, get_word_embeddings, train_sgns
from .matcher import DeepMatcher, DeepMatcherConfig, DeepMatcherResult
from .model import DeepMatcherModel, VARIANTS
from .vocab import WordVocab

__all__ = ["DeepMatcher", "DeepMatcherConfig", "DeepMatcherResult",
           "DeepMatcherModel", "VARIANTS", "WordVocab",
           "WordEmbeddings", "get_word_embeddings", "train_sgns"]
