"""DeepMatcher architectures (Mudgal et al., SIGMOD 2018).

The design space of the original paper, reduced to its four published
points.  Each model embeds the two entities' word sequences separately,
builds a fixed-size *summary* per entity, compares the summaries and
classifies:

* **sif** — smooth-inverse-frequency-style weighted average of word
  embeddings (the "aggregate function" point in the design space);
* **rnn** — bidirectional GRU, mean-pooled over time;
* **attention** — decomposable attention (Parikh et al. 2016): each word
  is compared against its soft alignment in the *other* entity;
* **hybrid** — attention over BiGRU states, the paper's strongest model.

All are trained from scratch per dataset — no pre-training — which is the
property the EDBT paper's transformers beat.
"""

from __future__ import annotations

import numpy as np

from ...nn import (BiRNN, Dropout, Embedding, Linear, Module, Tensor)

__all__ = ["DeepMatcherModel", "VARIANTS"]

VARIANTS = ("sif", "rnn", "attention", "hybrid")


def _masked_mean(states: Tensor, pad_mask: np.ndarray) -> Tensor:
    """Mean over time of (B, T, D), ignoring padded positions."""
    keep = (~np.asarray(pad_mask, bool)).astype(states.data.dtype)
    counts = np.maximum(keep.sum(axis=1, keepdims=True), 1.0)
    weights = Tensor(keep / counts)                  # (B, T)
    weighted = states * weights.reshape(*keep.shape, 1)
    return weighted.sum(axis=1)


class _SoftAlign(Module):
    """Decomposable-attention alignment of sequence A against B."""

    def forward(self, a: Tensor, b: Tensor,
                b_pad: np.ndarray) -> Tensor:
        scores = a @ b.swapaxes(-1, -2)              # (B, Ta, Tb)
        mask = np.asarray(b_pad, bool)[:, None, :]
        scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
        return weights @ b                           # (B, Ta, D)


class DeepMatcherModel(Module):
    """One of the four DeepMatcher variants as a single module."""

    def __init__(self, vocab_size: int, variant: str,
                 rng: np.random.Generator, embed_dim: int = 48,
                 hidden: int = 32, dropout: float = 0.1,
                 embedding_matrix: np.ndarray | None = None):
        super().__init__()
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; "
                             f"expected one of {VARIANTS}")
        self.variant = variant
        self.embedding = Embedding(vocab_size, embed_dim, rng, std=0.1)
        if embedding_matrix is not None:
            if embedding_matrix.shape != (vocab_size, embed_dim):
                raise ValueError(
                    f"embedding matrix shape {embedding_matrix.shape} != "
                    f"({vocab_size}, {embed_dim})")
            self.embedding.weight.data = embedding_matrix.astype(
                self.embedding.weight.data.dtype).copy()
        self.dropout = Dropout(dropout, rng)

        if variant in ("rnn", "hybrid"):
            self.rnn = BiRNN(embed_dim, hidden, rng, cell="gru")
            state_dim = 2 * hidden
        else:
            self.rnn = None
            state_dim = embed_dim

        if variant in ("attention", "hybrid"):
            self.align = _SoftAlign()
            self.compare = Linear(2 * state_dim, state_dim, rng, std=0.1)
        else:
            self.align = None
            self.compare = None

        summary_dim = state_dim
        self.classifier_hidden = Linear(2 * summary_dim, hidden, rng,
                                        std=0.1)
        self.classifier_out = Linear(hidden, 2, rng, std=0.1)

    def _states(self, ids: np.ndarray, pad: np.ndarray) -> Tensor:
        embedded = self.dropout(self.embedding(ids))
        if self.rnn is not None:
            return self.rnn(embedded)
        return embedded

    def _summarize(self, own: Tensor, other: Tensor,
                   own_pad: np.ndarray, other_pad: np.ndarray) -> Tensor:
        if self.align is not None:
            aligned = self.align(own, other, other_pad)
            combined = Tensor.concat([own, aligned], axis=-1)
            compared = self.compare(combined).relu()
            return _masked_mean(compared, own_pad)
        return _masked_mean(own, own_pad)

    def forward(self, ids_a: np.ndarray, ids_b: np.ndarray,
                pad_a: np.ndarray, pad_b: np.ndarray) -> Tensor:
        states_a = self._states(ids_a, pad_a)
        states_b = self._states(ids_b, pad_b)
        summary_a = self._summarize(states_a, states_b, pad_a, pad_b)
        summary_b = self._summarize(states_b, states_a, pad_b, pad_a)
        # Comparison features: element-wise |diff| and product, the
        # similarity representation DeepMatcher feeds its classifier.
        diff = summary_a - summary_b
        abs_diff = (diff * diff + 1e-12).sqrt()
        product = summary_a * summary_b
        features = Tensor.concat([abs_diff, product], axis=-1)
        hidden = self.classifier_hidden(self.dropout(features)).relu()
        return self.classifier_out(hidden)
