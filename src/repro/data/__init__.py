"""Entity-matching data substrate: records, benchmarks, splits, dirty
transform and CSV persistence."""

from .blocking import (Blocker, BlockingQuality, CandidatePair,
                       MinHashLSHBlocker, SortedNeighborhoodBlocker,
                       TfIdfBlocker, TokenBlocker, evaluate_blocking)
from .catalog import (BENCHMARKS, PAPER_VARIANTS, benchmark_names,
                      load_benchmark, table3_spec)
from .dirty import dirty_record, make_dirty
from .io import load_dataset, save_dataset
from .records import DatasetStats, EMDataset, EntityPair, Record
from .splits import DatasetSplits, split_dataset

__all__ = [
    "Record", "EntityPair", "EMDataset", "DatasetStats",
    "DatasetSplits", "split_dataset",
    "make_dirty", "dirty_record",
    "save_dataset", "load_dataset",
    "load_benchmark", "benchmark_names", "table3_spec",
    "BENCHMARKS", "PAPER_VARIANTS",
    "Blocker", "TokenBlocker", "SortedNeighborhoodBlocker",
    "TfIdfBlocker", "MinHashLSHBlocker", "CandidatePair",
    "BlockingQuality", "evaluate_blocking",
]
